//! Independence without complements, and refuting query independence.
//!
//! The end of Section 4 observes that a warehouse of *selection views*
//! `W = σ_γ(R)` is update-independent with **no** complement: insertions
//! and deletions translate directly (`w' = w ∪ σ_γ(Δr)` resp.
//! `w ∖ σ_γ(Δr)`), yet such a warehouse is not query-independent for
//! non-trivial `γ`. [`SigmaWarehouse`] implements exactly this
//! translation, and [`refute_query_independence`] exhibits the formal
//! witness for the negative half: two database states with identical
//! warehouse images but different query answers — no translated query
//! `Q̄` can exist for such a `Q` (Definition 3.1), whatever it computes.

use crate::error::{Result, WarehouseError};
use crate::spec::WarehouseSpec;
use dwc_core::NamedView;
use dwc_relalg::{DbState, Predicate, RaExpr, Update};

/// A warehouse of full-width selection views, maintained without any
/// auxiliary data.
#[derive(Clone, Debug)]
pub struct SigmaWarehouse {
    spec: WarehouseSpec,
}

impl SigmaWarehouse {
    /// Validates that every view is a single-relation, projection-free
    /// selection `σ_γ(R)`.
    pub fn new(spec: WarehouseSpec) -> Result<SigmaWarehouse> {
        for v in spec.views() {
            if !is_sigma_view(spec.catalog(), v) {
                return Err(WarehouseError::Core(dwc_core::CoreError::NotPsj {
                    detail: format!("view {} is not a full-width selection view", v.name()),
                }));
            }
        }
        Ok(SigmaWarehouse { spec })
    }

    /// The underlying specification.
    pub fn spec(&self) -> &WarehouseSpec {
        &self.spec
    }

    /// Materializes the warehouse.
    pub fn materialize(&self, db: &DbState) -> Result<DbState> {
        self.spec.materialize(db)
    }

    /// Translates a (normalized) source update directly onto the
    /// warehouse: `σ_γ(r ∪ Δ⁺ ∖ Δ⁻) = σ_γ(r) ∪ σ_γ(Δ⁺) ∖ σ_γ(Δ⁻)`.
    /// No complement, no inverse, no source query.
    pub fn maintain(&self, warehouse: &DbState, update: &Update) -> Result<DbState> {
        let mut next = warehouse.clone();
        for v in self.spec.views() {
            let base = v.view().relations()[0];
            let Some(delta) = update.delta(base) else {
                continue;
            };
            let pred = v.view().selection().compile(delta.inserted().attrs())?;
            let plus = delta.inserted().filter(|t| pred.eval(t));
            let minus = delta.deleted().filter(|t| pred.eval(t));
            let old = warehouse.relation(v.name())?;
            next.insert_relation(v.name(), old.apply_delta(&plus, &minus)?);
        }
        Ok(next)
    }
}

fn is_sigma_view(catalog: &dwc_relalg::Catalog, v: &NamedView) -> bool {
    let view = v.view();
    view.relations().len() == 1
        && catalog
            .schema(view.relations()[0])
            .map(|s| s.attrs() == view.projection())
            .unwrap_or(false)
}

/// Is the selection trivially total (`true`)? A σ-warehouse with only
/// trivial selections copies its base relations and *is*
/// query-independent; the interesting (negative) case is non-trivial γ.
pub fn has_trivial_selection(v: &NamedView) -> bool {
    matches!(v.view().selection(), Predicate::True)
}

/// The update classes the self-maintainability analysis distinguishes
/// (the paper's footnote 1 excludes modifications; a modification is a
/// deletion plus an insertion, i.e. `Mixed`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateClass {
    /// Only insertions into the touched relations.
    InsertOnly,
    /// Only deletions from the touched relations.
    DeleteOnly,
    /// Arbitrary insert/delete combinations.
    Mixed,
}

/// Statically decides whether the *unaugmented* warehouse is
/// self-maintainable for updates of the given class touching exactly
/// `touched` — i.e. whether the derived maintenance expressions can be
/// evaluated from the reported deltas alone, without any base-relation
/// (or inverse) reference surviving.
///
/// This is the question the paper's related work ([3, 10, 18]) answers
/// with syntactic criteria; here it falls out of the delta-rule engine:
/// derive, specialize to the class (empty `@ins` or `@del`), simplify,
/// and inspect the surviving references. σ-views come out
/// self-maintainable for every class (the end of Section 4); join views
/// do not (they need partners); projection views are insert/delete
/// sensitive under set semantics (a deletion needs survivor
/// information). A `false` answer is the cue to store a complement.
pub fn self_maintainable_without_complement(
    spec: &WarehouseSpec,
    touched: &std::collections::BTreeSet<dwc_relalg::RelName>,
    class: UpdateClass,
) -> Result<bool> {
    use crate::delta::{self, DeltaResolver};
    use dwc_relalg::RaExpr;
    use std::collections::BTreeMap;

    let catalog = spec.catalog();
    let resolver = DeltaResolver::new(catalog);
    // Specialize: for InsertOnly every `@del` is empty, for DeleteOnly
    // every `@ins` is.
    let mut specialize: BTreeMap<dwc_relalg::RelName, RaExpr> = BTreeMap::new();
    for &r in touched {
        let header = catalog.schema(r).map_err(WarehouseError::from)?.attrs().clone();
        match class {
            UpdateClass::InsertOnly => {
                specialize.insert(delta::del_name(r), RaExpr::Empty(header));
            }
            UpdateClass::DeleteOnly => {
                specialize.insert(delta::ins_name(r), RaExpr::Empty(header));
            }
            UpdateClass::Mixed => {}
        }
    }
    // Three refinements make the check match the classical criteria:
    //
    // * a view's maintenance expressions may read any stored view's *old*
    //   state, including the view's own — maintenance evaluates against
    //   the pre-update warehouse (this is what makes projection views
    //   self-maintainable w.r.t. insertions: `π(Δ⁺) ∖ π(R_old)` becomes
    //   `π(Δ⁺) ∖ V_old`);
    // * the multi-view effect ([14], cf. Example 2.1): one view's
    //   definition occurring inside another's maintenance expression
    //   folds into a read of that view;
    // * stratification: views proven self-maintainable can be maintained
    //   *first*, so later views may also use their NEW states (the same
    //   `@next` ordering the compiled plans exploit).
    //
    // The whole warehouse is self-maintainable iff the fixpoint covers
    // every view.
    let mut named_defs: Vec<(dwc_relalg::RelName, RaExpr)> = spec
        .views()
        .iter()
        .map(|v| Ok((v.name(), v.to_expr().simplified(catalog)?)))
        .collect::<Result<_>>()?;
    for u in spec.union_facts() {
        named_defs.push((u.name(), u.to_expr().simplified(catalog)?));
    }
    let new_map: BTreeMap<dwc_relalg::RelName, RaExpr> = touched
        .iter()
        .map(|&r| (r, RaExpr::Base(delta::new_name(r))))
        .collect();

    let mut proven: std::collections::BTreeSet<dwc_relalg::RelName> =
        std::collections::BTreeSet::new();
    loop {
        let mut progress = false;
        // Old states of every view are always readable; new states only
        // of already-proven (maintain-first) views.
        let mut patterns: Vec<(RaExpr, dwc_relalg::RelName)> = named_defs
            .iter()
            .map(|(name, def)| (def.clone(), *name))
            .collect();
        for (name, def) in &named_defs {
            if proven.contains(name) {
                patterns.push((def.substitute(&new_map), *name));
            }
        }
        'views: for (name, def) in &named_defs {
            if proven.contains(name) {
                continue;
            }
            let d = delta::derive(def, touched, &resolver)?;
            for e in [d.plus, d.minus] {
                let e = e.substitute(&specialize).simplified(&resolver)?;
                let e = crate::incremental::fold_stored_public(&e, &patterns);
                for r in e.base_relations() {
                    let n = r.as_str();
                    let is_delta = n.ends_with("@ins") || n.ends_with("@del");
                    let is_view = named_defs.iter().any(|(vn, _)| *vn == r);
                    if !is_delta && !is_view {
                        continue 'views;
                    }
                }
            }
            proven.insert(*name);
            progress = true;
        }
        if !progress {
            break;
        }
    }
    Ok(proven.len() == named_defs.len())
}

/// Searches the given states for a witness pair against query
/// independence of the (unaugmented!) warehouse: indices `(i, j)` with
/// `W(dᵢ) = W(dⱼ)` but `Q(dᵢ) ≠ Q(dⱼ)`. Such a pair proves that *no*
/// warehouse query `Q̄` satisfies `Q = Q̄ ∘ W` (Definition 3.1).
pub fn refute_query_independence(
    spec: &WarehouseSpec,
    q: &RaExpr,
    states: &[DbState],
) -> Result<Option<(usize, usize)>> {
    let images: Vec<DbState> = states
        .iter()
        .map(|d| spec.materialize(d))
        .collect::<Result<_>>()?;
    let answers: Vec<dwc_relalg::Relation> = states
        .iter()
        .map(|d| q.eval(d).map_err(WarehouseError::from))
        .collect::<Result<_>>()?;
    for i in 0..states.len() {
        for j in (i + 1)..states.len() {
            if images[i] == images[j] && answers[i] != answers[j] {
                return Ok(Some((i, j)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1_catalog, fig1_state};
    use dwc_relalg::{rel, Catalog, RelName};

    fn sigma_spec() -> WarehouseSpec {
        let mut c = Catalog::new();
        c.add_schema("R", &["x", "y"]).unwrap();
        WarehouseSpec::parse(c, &[("W", "sigma[x >= 10](R)")]).unwrap()
    }

    #[test]
    fn sigma_warehouse_validation() {
        SigmaWarehouse::new(sigma_spec()).unwrap();
        // A join view is rejected.
        let bad = WarehouseSpec::parse(fig1_catalog(), &[("Sold", "Sale join Emp")]).unwrap();
        assert!(SigmaWarehouse::new(bad).is_err());
        // A projection view is rejected.
        let mut c = Catalog::new();
        c.add_schema("R", &["x", "y"]).unwrap();
        let bad = WarehouseSpec::parse(c, &[("P", "pi[x](R)")]).unwrap();
        assert!(SigmaWarehouse::new(bad).is_err());
    }

    #[test]
    fn update_independent_without_complement() {
        // Section 4's closing argument, executed: maintain σ-views from
        // deltas alone and compare against recomputation.
        let sw = SigmaWarehouse::new(sigma_spec()).unwrap();
        let mut db = DbState::new();
        db.insert_relation("R", rel! { ["x", "y"] => (5, 1), (10, 2), (20, 3) });
        let mut w = sw.materialize(&db).unwrap();
        assert_eq!(w.relation(RelName::new("W")).unwrap().len(), 2);

        let updates = [
            Update::inserting("R", rel! { ["x", "y"] => (30, 4), (1, 5) }),
            Update::deleting("R", rel! { ["x", "y"] => (10, 2), (5, 1) }),
            Update::inserting("R", rel! { ["x", "y"] => (10, 9) }),
        ];
        for u in updates {
            let u = u.normalize(&db).unwrap();
            w = sw.maintain(&w, &u).unwrap();
            db = u.apply(&db).unwrap();
            assert_eq!(w, sw.materialize(&db).unwrap());
        }
    }

    #[test]
    fn sigma_warehouse_is_not_query_independent() {
        // Two states that differ only below the selection have equal
        // warehouse images; a query about the hidden part distinguishes
        // them — the formal witness of Section 4.
        let sw = SigmaWarehouse::new(sigma_spec()).unwrap();
        let mut d1 = DbState::new();
        d1.insert_relation("R", rel! { ["x", "y"] => (5, 1), (10, 2) });
        let mut d2 = DbState::new();
        d2.insert_relation("R", rel! { ["x", "y"] => (10, 2) });
        let q = RaExpr::parse("pi[y](R)").unwrap();
        let witness =
            refute_query_independence(sw.spec(), &q, &[d1, d2]).unwrap();
        assert_eq!(witness, Some((0, 1)));
    }

    #[test]
    fn example_12_sold_alone_is_not_query_independent() {
        // Example 1.2: Q = π_clerk(Sale) ∪ π_clerk(Emp) cannot be answered
        // from Sold alone. Witness: add Paula to Emp — Sold is unchanged
        // (she sells nothing) but Q's answer grows.
        let spec =
            WarehouseSpec::parse(fig1_catalog(), &[("Sold", "Sale join Emp")]).unwrap();
        let d1 = fig1_state();
        let mut d2 = fig1_state();
        d2.insert_relation(
            "Emp",
            rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25) },
        );
        let q = RaExpr::parse("pi[clerk](Sale) union pi[clerk](Emp)").unwrap();
        let witness = refute_query_independence(&spec, &q, &[d1, d2]).unwrap();
        assert_eq!(witness, Some((0, 1)));
    }

    #[test]
    fn no_witness_for_answerable_queries() {
        // A query over the selected part IS answerable; no witness exists
        // among these states.
        let sw = SigmaWarehouse::new(sigma_spec()).unwrap();
        let mut d1 = DbState::new();
        d1.insert_relation("R", rel! { ["x", "y"] => (5, 1), (10, 2) });
        let mut d2 = DbState::new();
        d2.insert_relation("R", rel! { ["x", "y"] => (10, 2) });
        let q = RaExpr::parse("sigma[x >= 10](R)").unwrap();
        assert_eq!(
            refute_query_independence(sw.spec(), &q, &[d1, d2]).unwrap(),
            None
        );
    }

    #[test]
    fn self_maintainability_analysis_matches_theory() {
        use super::UpdateClass::*;
        let touched_r: std::collections::BTreeSet<RelName> = [RelName::new("R")].into();

        // σ-views: self-maintainable for every update class (Section 4).
        let sigma = sigma_spec();
        for class in [InsertOnly, DeleteOnly, Mixed] {
            assert!(
                self_maintainable_without_complement(&sigma, &touched_r, class).unwrap(),
                "sigma view should be self-maintainable for {class:?}"
            );
        }

        // Join views: never (join partners needed) — the Figure 1 point.
        let join = WarehouseSpec::parse(fig1_catalog(), &[("Sold", "Sale join Emp")]).unwrap();
        let touched_sale: std::collections::BTreeSet<RelName> = [RelName::new("Sale")].into();
        for class in [InsertOnly, DeleteOnly, Mixed] {
            assert!(
                !self_maintainable_without_complement(&join, &touched_sale, class).unwrap(),
                "Sold should NOT be self-maintainable for {class:?}"
            );
        }

        // Projection views under set semantics: self-maintainable for
        // insertions (π(Δ⁺) ∖ V_old — the view reads its own old state,
        // the classical [10] result) but not for deletions (survivor
        // information needed).
        let mut c = Catalog::new();
        c.add_schema("R", &["x", "y"]).unwrap();
        let proj = WarehouseSpec::parse(c, &[("P", "pi[x](R)")]).unwrap();
        assert!(
            self_maintainable_without_complement(&proj, &touched_r, InsertOnly).unwrap(),
            "projection views ARE self-maintainable w.r.t. insertions"
        );
        for class in [DeleteOnly, Mixed] {
            assert!(
                !self_maintainable_without_complement(&proj, &touched_r, class).unwrap(),
                "projection view should NOT be self-maintainable for {class:?}"
            );
        }

        // The multi-view effect ([14]): a projection view plus a full
        // copy of its base is jointly self-maintainable for every class —
        // the copy supplies the survivor information.
        let mut c = Catalog::new();
        c.add_schema("R", &["x", "y"]).unwrap();
        let pair = WarehouseSpec::parse(
            c,
            &[("P", "pi[x](R)"), ("CopyR", "sigma[true](R)")],
        )
        .unwrap();
        for class in [InsertOnly, DeleteOnly, Mixed] {
            assert!(
                self_maintainable_without_complement(&pair, &touched_r, class).unwrap(),
                "projection + copy should be jointly self-maintainable for {class:?}"
            );
        }

        // A full copy view: trivially self-maintainable.
        let mut c = Catalog::new();
        c.add_schema("R", &["x", "y"]).unwrap();
        let copy = WarehouseSpec::parse(c, &[("Copy", "sigma[true](R)")]).unwrap();
        assert!(self_maintainable_without_complement(&copy, &touched_r, Mixed).unwrap());

        // Updates touching an unrelated relation never require anything.
        let mut c = fig1_catalog();
        c.add_schema("Other", &["z"]).unwrap();
        let spec = WarehouseSpec::parse(c, &[("Sold", "Sale join Emp")]).unwrap();
        let touched_other: std::collections::BTreeSet<RelName> =
            [RelName::new("Other")].into();
        assert!(
            self_maintainable_without_complement(&spec, &touched_other, Mixed).unwrap()
        );
    }

    #[test]
    fn trivial_selection_detection() {
        let spec = sigma_spec();
        assert!(!has_trivial_selection(&spec.views()[0]));
        let mut c = Catalog::new();
        c.add_schema("R", &["x"]).unwrap();
        let spec = WarehouseSpec::parse(c, &[("Copy", "sigma[true](R)")]).unwrap();
        assert!(has_trivial_selection(&spec.views()[0]));
    }
}
