//! Warehouse specifications and augmentation.
//!
//! A [`WarehouseSpec`] is the paper's pair (D, V): base relation schemata
//! with constraints, plus the PSJ view definitions evaluated and stored
//! at the warehouse. [`WarehouseSpec::augment`] performs Step 1 of the
//! paper's algorithm (Section 5): compute a complement `C` of `V` and
//! form the augmented warehouse `W = V ∪ C`, which Proposition 2.1 makes
//! a one-to-one image of the database state.

use crate::error::{Result, WarehouseError};
use dwc_core::complement::ComplementResolver;
use dwc_core::constrained::ComplementOptions;
use dwc_core::psj::definitions;
use dwc_core::unionfact::{complement_for, UnionFactView};
use dwc_core::{Complement, NamedView, PsjView};
use dwc_relalg::eval::{eval_cached, EvalCache};
use dwc_relalg::expr::HeaderResolver;
use dwc_relalg::{exec, AttrSet, Catalog, DbState, RaExpr, RelName};
use std::collections::BTreeMap;

/// The pair (D, V): sources and view definitions (plain PSJ views plus
/// optional union-integrated fact tables, cf. Section 5).
#[derive(Clone, Debug)]
pub struct WarehouseSpec {
    catalog: Catalog,
    views: Vec<NamedView>,
    union_facts: Vec<UnionFactView>,
}

impl WarehouseSpec {
    /// Builds a specification; view names must be distinct from each
    /// other and from base relation names.
    pub fn new(catalog: Catalog, views: Vec<NamedView>) -> Result<WarehouseSpec> {
        let mut seen: std::collections::BTreeSet<RelName> =
            catalog.relation_names().collect();
        for v in &views {
            if !seen.insert(v.name()) {
                return Err(WarehouseError::Core(dwc_core::CoreError::NameCollision(
                    v.name(),
                )));
            }
        }
        Ok(WarehouseSpec {
            catalog,
            views,
            union_facts: Vec::new(),
        })
    }

    /// Adds a union-integrated fact table (Section 5). Its name must not
    /// collide with base relations, views, or other fact tables.
    pub fn with_union_fact(mut self, uf: UnionFactView) -> Result<WarehouseSpec> {
        let clash = self.catalog.contains(uf.name())
            || self.views.iter().any(|v| v.name() == uf.name())
            || self.union_facts.iter().any(|u| u.name() == uf.name());
        if clash {
            return Err(WarehouseError::Core(dwc_core::CoreError::NameCollision(
                uf.name(),
            )));
        }
        self.union_facts.push(uf);
        Ok(self)
    }

    /// Convenience: parses each `(name, expression)` pair as a PSJ view.
    pub fn parse(catalog: Catalog, views: &[(&str, &str)]) -> Result<WarehouseSpec> {
        let parsed = views
            .iter()
            .map(|(name, text)| {
                let expr = RaExpr::parse(text).map_err(WarehouseError::from)?;
                let psj = PsjView::from_expr(&catalog, &expr).map_err(WarehouseError::from)?;
                Ok(NamedView::new(*name, psj))
            })
            .collect::<Result<Vec<_>>>()?;
        WarehouseSpec::new(catalog, parsed)
    }

    /// The source catalog `D`.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The view definitions `V`.
    pub fn views(&self) -> &[NamedView] {
        &self.views
    }

    /// The union-integrated fact tables.
    pub fn union_facts(&self) -> &[UnionFactView] {
        &self.union_facts
    }

    /// Materializes the *unaugmented* warehouse state `⟨V1(d), …, Vk(d)⟩`.
    /// The views are independent queries over `db`, so they evaluate in
    /// parallel.
    pub fn materialize(&self, db: &DbState) -> Result<DbState> {
        let exprs: Vec<(RelName, RaExpr)> = self
            .views
            .iter()
            .map(|v| (v.name(), v.to_expr()))
            .chain(self.union_facts.iter().map(|u| (u.name(), u.to_expr())))
            .collect();
        let evaluated = exec::try_par_map(&exprs, |(_, e)| e.eval(db))?;
        let mut w = DbState::new();
        for ((name, _), rel) in exprs.iter().zip(evaluated) {
            w.insert_relation(*name, rel);
        }
        Ok(w)
    }

    /// Runs the static analyzer over this specification under the
    /// ingestion ([`dwc_analyze::Gate::Accept`]) gate, without evaluating
    /// any relation. Returns the full report (warnings and all) when the
    /// spec is acceptable, and `Err(WarehouseError::SpecRejected)` with
    /// the rendered error diagnostics when it is not.
    ///
    /// Lossy-spec findings (`C201`, `L301`, `L302`) pass this gate as
    /// warnings: Proposition 2.2 keeps such warehouses correct via
    /// full-copy complements. Only defects the complement machinery
    /// cannot compensate for — type errors, name collisions, cyclic or
    /// ill-formed dependency sets — reject the spec.
    pub fn verify_static(&self) -> Result<dwc_analyze::Report> {
        let report = dwc_analyze::analyze(
            &self.catalog,
            &self.views,
            &self.union_facts,
            &dwc_analyze::AnalyzeOptions::accept(),
        );
        if report.has_errors() {
            return Err(WarehouseError::SpecRejected {
                diagnostics: report.errors().map(|d| d.to_string()).collect(),
            });
        }
        Ok(report)
    }

    /// Step 1 of the paper's algorithm: computes a complement under the
    /// default options and augments the warehouse with it.
    pub fn augment(self) -> Result<AugmentedWarehouse> {
        self.augment_with(&ComplementOptions::default())
    }

    /// Augmentation with explicit complement options (used by the
    /// constraint-ablation experiments). Statically verifies the spec
    /// ([`WarehouseSpec::verify_static`]) before computing anything.
    pub fn augment_with(self, opts: &ComplementOptions) -> Result<AugmentedWarehouse> {
        self.verify_static()?;
        let complement =
            complement_for(&self.catalog, &self.views, &self.union_facts, opts)?;
        Ok(AugmentedWarehouse {
            spec: self,
            complement,
        })
    }
}

/// The augmented warehouse `W = V ∪ C` with its inverse mapping `W⁻¹`.
#[derive(Clone, Debug)]
pub struct AugmentedWarehouse {
    spec: WarehouseSpec,
    complement: Complement,
}

impl AugmentedWarehouse {
    /// The underlying specification.
    pub fn spec(&self) -> &WarehouseSpec {
        &self.spec
    }

    /// The source catalog `D`.
    pub fn catalog(&self) -> &Catalog {
        self.spec.catalog()
    }

    /// The view definitions `V`.
    pub fn views(&self) -> &[NamedView] {
        self.spec.views()
    }

    /// The complement `C`.
    pub fn complement(&self) -> &Complement {
        &self.complement
    }

    /// The inverse mapping `W⁻¹`: base relation → expression over
    /// warehouse names (Equation (4)).
    pub fn inverse(&self) -> &BTreeMap<RelName, RaExpr> {
        self.complement.inverse()
    }

    /// Materializes the full warehouse state `W(d) = (V(d), C(d))`
    /// (including union fact tables).
    pub fn materialize(&self, db: &DbState) -> Result<DbState> {
        // One evaluation cache spans views, complements, and fact tables:
        // the complement definitions embed the view expressions, so the
        // shared subtrees evaluate once.
        let cache = EvalCache::new();
        let mut w = self
            .complement
            .warehouse_state_cached(self.views(), db, &cache)?;
        let evaluated = exec::try_par_map(self.spec.union_facts(), |u| {
            eval_cached(&u.to_expr(), db, &cache)
        })?;
        for (u, rel) in self.spec.union_facts().iter().zip(evaluated) {
            w.insert_shared(u.name(), rel);
        }
        Ok(w)
    }

    /// Names of all stored relations (views, union fact tables, and
    /// complement views; the order — views first, complements last — is
    /// the maintenance-plan step order).
    pub fn stored_relations(&self) -> Vec<RelName> {
        let mut out: Vec<RelName> = self.views().iter().map(|v| v.name()).collect();
        out.extend(self.spec.union_facts().iter().map(|u| u.name()));
        out.extend(self.complement.entries().iter().map(|e| e.name));
        out
    }

    /// The definition over `D` of a stored relation (view, union fact
    /// table, or complement).
    pub fn definition_of(&self, name: RelName) -> Option<RaExpr> {
        if let Some(v) = self.views().iter().find(|v| v.name() == name) {
            return Some(v.to_expr());
        }
        if let Some(u) = self.spec.union_facts().iter().find(|u| u.name() == name) {
            return Some(u.to_expr());
        }
        self.complement
            .entries()
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.definition.clone())
    }

    /// All stored-relation definitions over `D`.
    pub fn all_definitions(&self) -> BTreeMap<RelName, RaExpr> {
        let mut defs = definitions(self.views());
        for u in self.spec.union_facts() {
            defs.insert(u.name(), u.to_expr());
        }
        for e in self.complement.entries() {
            defs.insert(e.name, e.definition.clone());
        }
        defs
    }

    /// A header resolver covering base relations, views, union fact
    /// tables and complements.
    pub fn resolver(&self) -> WarehouseResolver<'_> {
        WarehouseResolver {
            inner: self.complement.resolver(self.catalog(), self.views()),
            union_facts: self.spec.union_facts(),
        }
    }

    /// Reconstructs the full database state from a warehouse state via
    /// `W⁻¹` (the paper's Step 1.2 artifact put to work). One independent
    /// inverse expression per base relation — they evaluate in parallel.
    pub fn reconstruct_sources(&self, warehouse: &DbState) -> Result<DbState> {
        let inverses: Vec<(&RelName, &RaExpr)> = self.inverse().iter().collect();
        let evaluated = exec::try_par_map(&inverses, |(_, inv)| inv.eval(warehouse))?;
        let mut db = DbState::new();
        for ((base, _), rel) in inverses.iter().zip(evaluated) {
            db.insert_relation(**base, rel);
        }
        Ok(db)
    }
}

/// See [`AugmentedWarehouse::resolver`].
pub struct WarehouseResolver<'a> {
    inner: ComplementResolver<'a>,
    union_facts: &'a [UnionFactView],
}

impl HeaderResolver for WarehouseResolver<'_> {
    fn header_of(&self, name: RelName) -> dwc_relalg::Result<AttrSet> {
        if let Some(u) = self.union_facts.iter().find(|u| u.name() == name) {
            return Ok(u.header().clone());
        }
        self.inner.header_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1_catalog, fig1_spec, fig1_state};
    use dwc_relalg::rel;

    #[test]
    fn parse_builds_psj_views() {
        let spec = fig1_spec();
        assert_eq!(spec.views().len(), 1);
        assert_eq!(spec.views()[0].name(), RelName::new("Sold"));
        assert!(spec.views()[0].view().is_sj(spec.catalog()));
    }

    #[test]
    fn parse_rejects_non_psj() {
        let err = WarehouseSpec::parse(
            fig1_catalog(),
            &[("Bad", "pi[clerk](Sale) union pi[clerk](Emp)")],
        )
        .unwrap_err();
        assert!(matches!(err, WarehouseError::Core(_)));
    }

    #[test]
    fn name_collisions_rejected() {
        let c = fig1_catalog();
        // view named like a base relation
        assert!(WarehouseSpec::parse(c.clone(), &[("Emp", "Sale join Emp")]).is_err());
        // duplicate view names
        assert!(WarehouseSpec::parse(
            c,
            &[("V", "Sale join Emp"), ("V", "pi[clerk, age](Emp)")]
        )
        .is_err());
    }

    #[test]
    fn materialize_unaugmented() {
        let spec = fig1_spec();
        let w = spec.materialize(&fig1_state()).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.relation(RelName::new("Sold")).unwrap().len(), 3);
    }

    #[test]
    fn augment_produces_working_inverse() {
        let aug = fig1_spec().augment().unwrap();
        let db = fig1_state();
        let w = aug.materialize(&db).unwrap();
        assert_eq!(w.len(), 3); // Sold, C_Sale, C_Emp
        let reconstructed = aug.reconstruct_sources(&w).unwrap();
        assert_eq!(reconstructed, db);
    }

    #[test]
    fn stored_relations_and_definitions() {
        let aug = fig1_spec().augment().unwrap();
        let stored = aug.stored_relations();
        assert_eq!(stored.len(), 3);
        for name in stored {
            let def = aug.definition_of(name).unwrap();
            // definitions are over D only
            for base in def.base_relations() {
                assert!(aug.catalog().contains(base), "{base} not a base relation");
            }
        }
        assert!(aug.definition_of(RelName::new("Nope")).is_none());
        assert_eq!(aug.all_definitions().len(), 3);
    }

    fn union_fact_spec() -> WarehouseSpec {
        use dwc_core::unionfact::UnionFactView;
        use dwc_relalg::Value;
        let mut c = Catalog::new();
        c.add_schema_with_key("OrdParis", &["okey", "site", "amount"], &["okey"]).unwrap();
        c.add_schema_with_key("OrdLyon", &["okey", "site", "amount"], &["okey"]).unwrap();
        let uf = UnionFactView::new(
            &c,
            "AllOrders",
            "site",
            vec![
                (
                    Value::str("paris"),
                    dwc_core::PsjView::of_base(&c, "OrdParis").unwrap(),
                ),
                (
                    Value::str("lyon"),
                    dwc_core::PsjView::of_base(&c, "OrdLyon").unwrap(),
                ),
            ],
        )
        .unwrap();
        WarehouseSpec::new(c, vec![]).unwrap().with_union_fact(uf).unwrap()
    }

    fn union_fact_state() -> DbState {
        let mut d = DbState::new();
        d.insert_relation(
            "OrdParis",
            rel! { ["okey", "site", "amount"] => (1, "paris", 10), (2, "paris", 20) },
        );
        d.insert_relation(
            "OrdLyon",
            rel! { ["okey", "site", "amount"] => (7, "lyon", 70), (8, "lyon", 80) },
        );
        d
    }

    #[test]
    fn union_fact_roundtrip_and_maintenance() {
        use dwc_relalg::{Delta, Update};
        let aug = union_fact_spec().augment().unwrap();
        let db = union_fact_state();
        let w = aug.materialize(&db).unwrap();
        assert!(w.contains(RelName::new("AllOrders")));
        assert_eq!(w.relation(RelName::new("AllOrders")).unwrap().len(), 4);
        // reconstruction works through sigma-on-union inverses
        assert_eq!(aug.reconstruct_sources(&w).unwrap(), db);
        // query translation over the multi-site sources
        let q = RaExpr::parse("sigma[amount >= 50](OrdLyon) union sigma[amount >= 50](OrdParis)")
            .unwrap();
        let (src, wh) = aug.query_commutes(&q, &db).unwrap();
        assert_eq!(src, wh);
        // incremental maintenance of the union fact table
        let u = Update::new()
            .with(
                "OrdParis",
                Delta::insert_only(rel! { ["okey", "site", "amount"] => (3, "paris", 30) }),
            )
            .with(
                "OrdLyon",
                Delta::delete_only(rel! { ["okey", "site", "amount"] => (8, "lyon", 80) }),
            )
            .normalize(&db)
            .unwrap();
        let w_next = aug.maintain_checked(&db, &w, &u).unwrap();
        assert_eq!(w_next.relation(RelName::new("AllOrders")).unwrap().len(), 4);
    }

    #[test]
    fn union_fact_name_collisions_rejected() {
        use dwc_core::unionfact::UnionFactView;
        use dwc_relalg::Value;
        let spec = union_fact_spec();
        let c = spec.catalog().clone();
        let dup = UnionFactView::new(
            &c,
            "AllOrders",
            "site",
            vec![(Value::str("x"), dwc_core::PsjView::of_base(&c, "OrdParis").unwrap())],
        )
        .unwrap();
        assert!(spec.with_union_fact(dup).is_err());
    }

    #[test]
    fn augment_with_unconstrained_options() {
        let aug = fig1_spec()
            .augment_with(&ComplementOptions::unconstrained())
            .unwrap();
        let db = fig1_state();
        let w = aug.materialize(&db).unwrap();
        let reconstructed = aug.reconstruct_sources(&w).unwrap();
        assert_eq!(reconstructed, db);
    }
}
