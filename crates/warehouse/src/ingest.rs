//! Fault-tolerant ingestion: the receiving end of an unreliable channel.
//!
//! The plain [`Integrator`] assumes every report arrives exactly once,
//! in order, well-formed. [`IngestingIntegrator`] drops that assumption
//! and restores it *behind* the integrator:
//!
//! * **Idempotence** — replayed envelopes (sequence already applied, or
//!   already parked) are skipped, so at-least-once delivery is safe.
//! * **Reordering** — early envelopes wait in a bounded per-source
//!   reorder window and apply the moment the gap before them fills.
//! * **Quarantine** — malformed reports (unknown relations, header
//!   mismatches, normalization violations, stale epochs) are rejected
//!   with typed [`WarehouseError`]s into an inspectable quarantine log.
//!   Nothing panics; nothing applies partially.
//! * **Recovery** — when a gap cannot fill from the stream (the window
//!   overflows, or the stream ends short), [`IngestingIntegrator::recover_from_log`]
//!   replays the missing reports from the source's outbox, composes them
//!   with everything parked behind them, and rebuilds the affected views
//!   **source-free** through the `W ∘ u ∘ W⁻¹` pipeline
//!   ([`Integrator::recover_by_reconstruction`]). With
//!   [`IngestConfig::verify_invariants`] on, every applied report is
//!   additionally checked against the Theorem 4.1 criterion
//!   `w' = W(u(W⁻¹(w)))`, and a failed check heals the same way.
//!
//! Every decision is counted in [`IngestStats`], the channel-side
//! sibling of [`crate::integrator::SourceStats`].

use crate::channel::{Envelope, SourceId};
use crate::error::{Result, WarehouseError};
use crate::incremental::StoredDelta;
use crate::integrator::{Integrator, IntegratorStats};
use crate::planner::AdaptivePolicy;
use dwc_relalg::{DbState, RaExpr, Relation, Update};
use std::collections::BTreeMap;

/// How [`IngestingIntegrator::apply_one`] executes maintenance — the
/// hook the sharded durability layer uses to capture (and later replay)
/// per-operation effects without changing any live semantics.
#[derive(Clone, Debug, Default)]
enum ApplyMode {
    /// Normal operation: maintenance runs and nothing extra is recorded.
    #[default]
    Live,
    /// Maintenance runs exactly as live, and the traced stored-relation
    /// deltas (or a reset marker for non-incremental paths) accumulate
    /// for the caller.
    Traced(TraceBuf),
    /// Scripted replay: maintenance does **not** run — the next `ok`
    /// applies succeed as bookkeeping no-ops, then one fails with the
    /// recorded error verbatim. Data effects come from the shard
    /// lineages; this mode reproduces sequencing, quarantine, and
    /// cursor effects only.
    Scripted {
        /// Successful applies remaining.
        ok: u32,
        /// The rendered error of the failing apply, if one follows.
        error: Option<String>,
    },
}

/// What one traced operation did to the stored relations.
#[derive(Clone, Debug, Default)]
pub(crate) struct TraceBuf {
    /// Per-relation deltas, in application order, when every apply took
    /// an incremental path.
    pub deltas: Vec<StoredDelta>,
    /// True when any apply took a non-incremental path (reconstruction,
    /// paranoid heal, gap repair): the deltas are not exhaustive and the
    /// caller must capture full state instead.
    pub reset: bool,
    /// Successful applies.
    pub ok: u32,
    /// The rendered error of the failing apply, if one occurred.
    pub error: Option<String>,
}

/// Tuning of the ingestion layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestConfig {
    /// Maximum number of out-of-order reports parked per source while a
    /// sequence gap waits to fill; one more forces recovery.
    pub reorder_window: usize,
    /// Check the Theorem 4.1 correctness criterion after every applied
    /// report by also evaluating the (source-free) reconstruction
    /// pipeline, and adopt the reconstructed state when the incremental
    /// result diverges. Expensive — a full re-materialization per report
    /// — but turns silent corruption into a counted, healed event.
    pub verify_invariants: bool,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig { reorder_window: 32, verify_invariants: false }
    }
}

impl IngestConfig {
    /// The trust-nothing configuration: small window, every report
    /// cross-checked against `W(u(W⁻¹(w)))`.
    pub fn paranoid() -> IngestConfig {
        IngestConfig { reorder_window: 8, verify_invariants: true }
    }
}

/// Cumulative ingestion statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Envelopes offered to the ingestor.
    pub delivered: usize,
    /// Reports applied to the warehouse, in sequence (including reports
    /// consumed by gap recovery).
    pub applied: usize,
    /// Envelopes skipped idempotently (replays of applied or parked
    /// sequences).
    pub duplicates: usize,
    /// Envelopes parked out of order in the reorder window.
    pub buffered: usize,
    /// Envelopes rejected into quarantine.
    pub quarantined: usize,
    /// Sequence gaps observed (transitions from in-order to waiting).
    pub gaps_detected: usize,
    /// Recoveries through the `W ∘ u ∘ W⁻¹` reconstruction fallback
    /// (gap repairs and adopted invariant-check results).
    pub recoveries: usize,
    /// Theorem 4.1 invariant checks that failed and were healed.
    pub invariant_failures: usize,
}

/// What [`IngestingIntegrator::offer`] did with one envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Applied in sequence; the count includes parked successors drained
    /// by this envelope.
    Applied(usize),
    /// Already seen — skipped idempotently.
    Duplicate,
    /// Out of order — parked in the reorder window.
    Buffered,
    /// Rejected into quarantine with a typed error. The sequence number
    /// is *not* consumed: a pristine retransmission (or gap recovery)
    /// can still fill it.
    Quarantined(WarehouseError),
    /// The reorder window is full (or the epoch stream is wedged): the
    /// gap cannot fill from the stream alone. The caller should invoke
    /// [`IngestingIntegrator::recover_from_log`].
    NeedsRecovery(WarehouseError),
}

/// Per-source ingestion cursor.
#[derive(Clone, Debug, Default)]
pub(crate) struct Cursor {
    pub(crate) epoch: u64,
    pub(crate) next_seq: u64,
    /// Out-of-order reports parked by sequence number.
    pub(crate) pending: BTreeMap<u64, Update>,
}

/// One rejected envelope with the typed error that rejected it.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantineEntry {
    /// The envelope as it arrived from the channel.
    pub envelope: Envelope,
    /// Why it was rejected. After a snapshot round trip this is the
    /// rendered-form [`WarehouseError::Restored`] variant.
    pub error: WarehouseError,
}

/// A quarantined envelope an operator discarded, with the stated reason.
#[derive(Clone, Debug, PartialEq)]
pub struct DiscardedEntry {
    /// The discarded quarantine entry.
    pub entry: QuarantineEntry,
    /// The operator-supplied reason for discarding it.
    pub reason: String,
}

/// A read-only view of one source's sequencing cursor — what a durable
/// snapshot persists and what an operator inspects after recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequencingStatus {
    /// The source the cursor tracks.
    pub source: SourceId,
    /// The epoch the cursor is at.
    pub epoch: u64,
    /// The next in-order sequence number the cursor waits for.
    pub next_seq: u64,
    /// Sequence numbers parked out of order in the reorder window.
    pub parked: Vec<u64>,
}

/// An [`Integrator`] hardened against channel faults; see the module
/// docs for the fault model.
#[derive(Clone, Debug)]
pub struct IngestingIntegrator {
    integ: Integrator,
    cursors: BTreeMap<SourceId, Cursor>,
    quarantine: Vec<QuarantineEntry>,
    discarded: Vec<DiscardedEntry>,
    config: IngestConfig,
    stats: IngestStats,
    policy: AdaptivePolicy,
    mode: ApplyMode,
}

impl IngestingIntegrator {
    /// Wraps a loaded integrator. Re-runs the static analyzer over the
    /// integrator's specification ([`crate::spec::WarehouseSpec::verify_static`])
    /// before accepting the configuration: an ingestor is a long-lived
    /// service, and a spec that was mutated or deserialized since
    /// augmentation must not start consuming reports.
    pub fn new(integ: Integrator, config: IngestConfig) -> Result<IngestingIntegrator> {
        integ.warehouse().spec().verify_static()?;
        Ok(IngestingIntegrator {
            integ,
            cursors: BTreeMap::new(),
            quarantine: Vec::new(),
            discarded: Vec::new(),
            config,
            stats: IngestStats::default(),
            policy: AdaptivePolicy::off(),
            mode: ApplyMode::Live,
        })
    }

    /// Rebuilds an ingestor from snapshot state (see [`crate::storage`]):
    /// every field is restored verbatim so a WAL replay continues exactly
    /// where the snapshotted process stopped.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore(
        integ: Integrator,
        cursors: BTreeMap<SourceId, Cursor>,
        quarantine: Vec<QuarantineEntry>,
        discarded: Vec<DiscardedEntry>,
        config: IngestConfig,
        stats: IngestStats,
    ) -> IngestingIntegrator {
        // The policy's decision cache is pure derived state and Theorem
        // 4.1 makes WAL replay strategy-independent, so a restored
        // ingestor starts inert; the storage layer re-arms the mode
        // persisted in the manifest once replay finishes.
        IngestingIntegrator {
            integ,
            cursors,
            quarantine,
            discarded,
            config,
            stats,
            policy: AdaptivePolicy::off(),
            mode: ApplyMode::Live,
        }
    }

    /// Installs a maintenance policy (see [`crate::planner`]); reports
    /// applied from here on are routed through it.
    pub fn set_policy(&mut self, policy: AdaptivePolicy) {
        self.policy = policy;
    }

    /// The active maintenance policy.
    pub fn policy(&self) -> &AdaptivePolicy {
        &self.policy
    }

    /// Mutable access to the policy — for draining its diagnostics.
    pub fn policy_mut(&mut self) -> &mut AdaptivePolicy {
        &mut self.policy
    }

    /// The raw per-source cursors — read by the snapshot writer.
    pub(crate) fn cursors(&self) -> &BTreeMap<SourceId, Cursor> {
        &self.cursors
    }

    /// Offers one envelope from the channel. Infallible at the call
    /// site: every failure mode is a typed [`IngestOutcome`], recorded
    /// in the stats and (for rejects) the quarantine log.
    pub fn offer(&mut self, envelope: &Envelope) -> IngestOutcome {
        self.stats.delivered += 1;
        let mut cursor = self.cursors.remove(&envelope.source).unwrap_or_default();
        let outcome = self.offer_at(&mut cursor, envelope);
        self.cursors.insert(envelope.source.clone(), cursor);
        outcome
    }

    /// Runs `f` in `mode`, restoring live mode afterwards and returning
    /// whatever trace the run accumulated.
    fn with_mode<T>(
        &mut self,
        mode: ApplyMode,
        f: impl FnOnce(&mut IngestingIntegrator) -> T,
    ) -> (T, TraceBuf) {
        self.mode = mode;
        let out = f(self);
        let buf = match std::mem::take(&mut self.mode) {
            ApplyMode::Traced(buf) => buf,
            _ => TraceBuf::default(),
        };
        (out, buf)
    }

    /// [`IngestingIntegrator::offer`] with delta tracing: behaves
    /// identically, and additionally returns what the operation did to
    /// the stored relations (the sharded WAL routes that shard-wise).
    pub(crate) fn offer_traced(&mut self, envelope: &Envelope) -> (IngestOutcome, TraceBuf) {
        self.with_mode(ApplyMode::Traced(TraceBuf::default()), |ing| ing.offer(envelope))
    }

    /// [`IngestingIntegrator::offer`] in scripted-replay mode: the
    /// sequencing, quarantine, and cursor effects replay exactly, while
    /// maintenance is skipped (`ok` applies succeed, then one fails with
    /// `error` verbatim). Data effects come from the shard lineages.
    pub(crate) fn offer_scripted(
        &mut self,
        envelope: &Envelope,
        ok: u32,
        error: Option<String>,
    ) -> IngestOutcome {
        self.with_mode(ApplyMode::Scripted { ok, error }, |ing| ing.offer(envelope)).0
    }

    /// [`IngestingIntegrator::recover_from_log`] with delta tracing (a
    /// successful repair always records a reset — reconstruction
    /// rewrites the stored relations wholesale).
    pub(crate) fn recover_from_log_traced(
        &mut self,
        source: &SourceId,
        log: &[Envelope],
    ) -> (Result<usize>, TraceBuf) {
        self.with_mode(ApplyMode::Traced(TraceBuf::default()), |ing| {
            ing.recover_from_log(source, log)
        })
    }

    /// [`IngestingIntegrator::recover_from_log`] in scripted-replay
    /// mode: cursor and counter effects only.
    pub(crate) fn recover_from_log_scripted(
        &mut self,
        source: &SourceId,
        log: &[Envelope],
    ) -> Result<usize> {
        self.with_mode(ApplyMode::Scripted { ok: 0, error: None }, |ing| {
            ing.recover_from_log(source, log)
        })
        .0
    }

    /// [`IngestingIntegrator::requeue_quarantined`] with delta tracing.
    pub(crate) fn requeue_quarantined_traced(
        &mut self,
        index: usize,
    ) -> (Option<IngestOutcome>, TraceBuf) {
        self.with_mode(ApplyMode::Traced(TraceBuf::default()), |ing| {
            ing.requeue_quarantined(index)
        })
    }

    /// [`IngestingIntegrator::requeue_quarantined`] in scripted-replay
    /// mode.
    pub(crate) fn requeue_quarantined_scripted(
        &mut self,
        index: usize,
        ok: u32,
        error: Option<String>,
    ) -> Option<IngestOutcome> {
        self.with_mode(ApplyMode::Scripted { ok, error }, |ing| ing.requeue_quarantined(index)).0
    }

    /// Overwrites both counter sets with absolute values — scripted
    /// replay forces the recorded post-operation counters instead of
    /// recomputing maintenance work it deliberately skipped.
    pub(crate) fn force_stats(&mut self, istats: IntegratorStats, ingstats: IngestStats) {
        self.integ.restore_stats(istats);
        self.stats = ingstats;
    }

    fn offer_at(&mut self, cursor: &mut Cursor, envelope: &Envelope) -> IngestOutcome {
        // An older epoch is a stale replay from before the source's
        // sequencer restarted.
        if envelope.epoch < cursor.epoch {
            return self.reject(
                envelope,
                WarehouseError::StaleEpoch {
                    source: envelope.source.to_string(),
                    current: cursor.epoch,
                    got: envelope.epoch,
                },
            );
        }
        // Idempotent dedup within the current epoch: applied or parked.
        if envelope.epoch == cursor.epoch
            && (envelope.seq < cursor.next_seq || cursor.pending.contains_key(&envelope.seq))
        {
            self.stats.duplicates += 1;
            return IngestOutcome::Duplicate;
        }
        // Malformed reports never touch warehouse state or sequencing —
        // including the epoch cursor. Validation must precede the epoch
        // transition below: a *corrupt* envelope claiming a future epoch
        // would otherwise wedge the cursor past the genuine stream, and
        // every pristine retransmission or quarantine requeue would then
        // bounce as stale.
        if let Err(e) = self.validate(&envelope.report) {
            return self.reject(envelope, e);
        }
        // A (valid) newer epoch supersedes the cursor: the source's
        // sequencer restarted.
        if envelope.epoch > cursor.epoch {
            *cursor = Cursor { epoch: envelope.epoch, next_seq: 0, pending: BTreeMap::new() };
        }
        if envelope.seq > cursor.next_seq {
            // A gap: park the early report, bounded by the window.
            if cursor.pending.len() >= self.config.reorder_window {
                return IngestOutcome::NeedsRecovery(WarehouseError::ReorderWindowOverflow {
                    source: envelope.source.to_string(),
                    waiting_for: cursor.next_seq,
                });
            }
            if cursor.pending.is_empty() {
                self.stats.gaps_detected += 1;
            }
            cursor.pending.insert(envelope.seq, envelope.report.clone());
            self.stats.buffered += 1;
            return IngestOutcome::Buffered;
        }
        // In sequence: apply, then drain every parked successor that
        // became contiguous.
        let mut applied = 0;
        let mut report = envelope.report.clone();
        loop {
            if let Err(e) = self.apply_one(&report) {
                // The report is well-formed but failed evaluation; park
                // it in quarantine without consuming its sequence so
                // recovery (or an operator) can deal with it.
                return self.reject(
                    &Envelope {
                        source: envelope.source.clone(),
                        epoch: cursor.epoch,
                        seq: cursor.next_seq,
                        report,
                    },
                    e,
                );
            }
            applied += 1;
            self.stats.applied += 1;
            cursor.next_seq += 1;
            match cursor.pending.remove(&cursor.next_seq) {
                Some(next) => report = next,
                None => break,
            }
        }
        IngestOutcome::Applied(applied)
    }

    /// Applies one in-sequence report, optionally cross-checked against
    /// the Theorem 4.1 criterion `w' = W(u(W⁻¹(w)))`. In scripted mode
    /// nothing is computed: the recorded outcome is reproduced verbatim
    /// (data effects replay from the shard lineages instead).
    fn apply_one(&mut self, report: &Update) -> Result<()> {
        if let ApplyMode::Scripted { ok, error } = &mut self.mode {
            if *ok > 0 {
                *ok -= 1;
                return Ok(());
            }
            // [`WarehouseError::Restored`] renders its message verbatim,
            // so the scripted quarantine entry is bit-identical to the
            // live one after the snapshot round trip.
            let message = error.take().unwrap_or_default();
            return Err(WarehouseError::Restored { message });
        }
        let result = self.apply_one_live(report);
        if let ApplyMode::Traced(buf) = &mut self.mode {
            match &result {
                Ok(()) => buf.ok += 1,
                Err(e) => buf.error = Some(e.to_string()),
            }
        }
        result
    }

    fn apply_one_live(&mut self, report: &Update) -> Result<()> {
        if !self.config.verify_invariants {
            let traced = crate::planner::maintain_with_policy_traced(
                &mut self.policy,
                &mut self.integ,
                report,
            )?;
            if let ApplyMode::Traced(buf) = &mut self.mode {
                match traced {
                    Some(deltas) => buf.deltas.extend(deltas),
                    // A reconstruction strategy rewrote the stored
                    // relations wholesale.
                    None => buf.reset = true,
                }
            }
            return Ok(());
        }
        let expected = self
            .integ
            .warehouse()
            .maintain_by_reconstruction(self.integ.state(), report)?; // lint:allow strategy_dispatch -- verification cross-check oracle
        self.integ.on_report(report)?;
        if self.integ.state() != &expected {
            // The incremental result diverged from the source-free
            // oracle: heal by adopting the reconstruction.
            self.stats.invariant_failures += 1;
            self.stats.recoveries += 1;
            self.integ.force_state(expected)?;
        }
        if let ApplyMode::Traced(buf) = &mut self.mode {
            // Paranoid mode may adopt a reconstructed state at any
            // apply; tracing deltas through the heal is not worth the
            // complexity, so the whole operation records as a reset.
            buf.reset = true;
        }
        Ok(())
    }

    /// Structural validation of a report against the warehouse catalog:
    /// known relations, schema headers, normalization shape. State-free
    /// and cheap; runs before any sequencing decision.
    fn validate(&self, report: &Update) -> Result<()> {
        let catalog = self.integ.warehouse().catalog();
        for (name, delta) in report.iter() {
            if !catalog.contains(name) {
                return Err(WarehouseError::UpdateOutsideSources(name));
            }
            let schema = catalog.schema(name)?;
            if delta.inserted().attrs() != schema.attrs() {
                return Err(WarehouseError::ReportHeaderMismatch {
                    relation: name,
                    expected: schema.attrs().clone(),
                    got: delta.inserted().attrs().clone(),
                });
            }
            let overlap = delta.inserted().intersect(delta.deleted())?;
            if !overlap.is_empty() {
                return Err(WarehouseError::MalformedReport {
                    relation: name,
                    detail: format!(
                        "{} tuple(s) both inserted and deleted — not a normalized report",
                        overlap.len()
                    ),
                });
            }
        }
        Ok(())
    }

    fn reject(&mut self, envelope: &Envelope, error: WarehouseError) -> IngestOutcome {
        self.stats.quarantined += 1;
        self.quarantine
            .push(QuarantineEntry { envelope: envelope.clone(), error: error.clone() });
        IngestOutcome::Quarantined(error)
    }

    /// The sequence numbers (current epoch) the cursor still waits for:
    /// every hole at or above `next_seq`, up to the highest parked
    /// report. Empty means the source is fully drained *as far as the
    /// ingestor can know* — trailing channel drops are only visible to
    /// [`IngestingIntegrator::recover_from_log`], which also consults
    /// the log's horizon.
    pub fn missing_seqs(&self, source: &SourceId) -> Vec<u64> {
        let Some(cursor) = self.cursors.get(source) else {
            return Vec::new();
        };
        match cursor.pending.keys().next_back() {
            None => Vec::new(),
            Some(&hi) => {
                (cursor.next_seq..=hi).filter(|s| !cursor.pending.contains_key(s)).collect()
            }
        }
    }

    /// Repairs sequence gaps from the source's outbox log: every report
    /// from the cursor position to the log's horizon is taken from the
    /// reorder buffer or the log, validated, composed into one update,
    /// and applied through the source-free reconstruction fallback.
    /// Returns the number of reports recovered (0 if nothing is
    /// missing). On any error — a sequence absent from the log
    /// ([`WarehouseError::UnfillableGap`]), a log entry that fails
    /// validation — the warehouse state and the cursor are untouched.
    pub fn recover_from_log(&mut self, source: &SourceId, log: &[Envelope]) -> Result<usize> {
        let mut cursor = self.cursors.remove(source).unwrap_or_default();
        let result = self.recover_at(source, &mut cursor, log);
        self.cursors.insert(source.clone(), cursor);
        result
    }

    fn recover_at(
        &mut self,
        source: &SourceId,
        cursor: &mut Cursor,
        log: &[Envelope],
    ) -> Result<usize> {
        let in_epoch =
            |e: &&Envelope| e.source == *source && e.epoch == cursor.epoch;
        let log_hi = log.iter().filter(in_epoch).map(|e| e.seq).max();
        let pending_hi = cursor.pending.keys().next_back().copied();
        let hi = match (pending_hi, log_hi) {
            (Some(p), Some(l)) => p.max(l),
            (Some(p), None) => p,
            (None, Some(l)) => l,
            (None, None) => return Ok(0),
        };
        if hi < cursor.next_seq {
            return Ok(0);
        }
        // Gather read-only first: failure must not consume anything.
        let mut reports: Vec<&Update> = Vec::with_capacity((hi - cursor.next_seq + 1) as usize);
        for seq in cursor.next_seq..=hi {
            let report = cursor.pending.get(&seq).or_else(|| {
                log.iter().find(|e| in_epoch(e) && e.seq == seq).map(|e| &e.report)
            });
            match report {
                Some(r) => reports.push(r),
                None => {
                    return Err(WarehouseError::UnfillableGap {
                        source: source.to_string(),
                        missing: seq,
                    })
                }
            }
        }
        for r in &reports {
            self.validate(r)?;
        }
        // Sequential composition of the whole backlog into one update —
        // exact because `Update::with` composes per-relation deltas in
        // application order.
        let mut composed = Update::new();
        for r in &reports {
            for (name, delta) in r.iter() {
                composed = composed.with(name, delta.clone());
            }
        }
        let count = reports.len();
        // The composed update is generally *not* normalized with respect
        // to the current state, which is exactly what the reconstruction
        // pipeline tolerates and the incremental plans do not. Scripted
        // replay skips the rebuild (shard lineages carry the data
        // effect) but keeps every cursor and counter effect below.
        match &mut self.mode {
            ApplyMode::Scripted { .. } => {}
            ApplyMode::Traced(buf) => {
                buf.reset = true;
                self.integ.recover_by_reconstruction(&composed)?;
            }
            ApplyMode::Live => self.integ.recover_by_reconstruction(&composed)?,
        }
        cursor.pending.clear();
        cursor.next_seq = hi + 1;
        self.stats.applied += count;
        self.stats.recoveries += 1;
        Ok(count)
    }

    /// The current materialized warehouse state.
    pub fn state(&self) -> &DbState {
        self.integ.state()
    }

    /// Answers a source query at the warehouse (query independence).
    pub fn answer(&mut self, q: &RaExpr) -> Result<Relation> {
        self.integ.answer(q)
    }

    /// The wrapped integrator.
    pub fn integrator(&self) -> &Integrator {
        &self.integ
    }

    /// Mutable access to the wrapped integrator — for corruption
    /// injection in chaos tests and operator interventions.
    pub fn integrator_mut(&mut self) -> &mut Integrator {
        &mut self.integ
    }

    /// The ingestion counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// The wrapped integrator's counters.
    pub fn integrator_stats(&self) -> IntegratorStats {
        self.integ.stats()
    }

    /// The quarantine log: every rejected envelope with its typed error,
    /// oldest first.
    pub fn quarantine(&self) -> &[QuarantineEntry] {
        &self.quarantine
    }

    /// Re-offers the quarantined envelope at `index` through the normal
    /// ingestion path and removes it from quarantine — the operator move
    /// after fixing whatever rejected it (e.g. a source that re-keyed a
    /// relation, or a gap recovery that advanced the cursor past a
    /// transiently-failing report). Returns `None` when the index is out
    /// of range. Note a re-offer can land straight back in quarantine
    /// (as a *new* entry) if the report is still bad.
    pub fn requeue_quarantined(&mut self, index: usize) -> Option<IngestOutcome> {
        if index >= self.quarantine.len() {
            return None;
        }
        let entry = self.quarantine.remove(index);
        // The original rejection already counted this envelope; the
        // requeue is a fresh channel offer and counts again.
        Some(self.offer(&entry.envelope))
    }

    /// Drains the whole quarantine in **sequence order** — sorted by
    /// `(source, epoch, seq)` — re-offering every entry through the
    /// normal ingestion path, and returns each envelope with its fresh
    /// outcome, in the order offered. Arrival order is the wrong
    /// requeue order: entries are logged in rejection order, and
    /// re-offering a later sequence of a source before an earlier one
    /// parks it again (or, past the reorder window, demands recovery);
    /// sorted re-entry lets contiguous sequences apply directly. Each
    /// drained entry is offered exactly once — still-bad envelopes land
    /// back in quarantine as new entries, with no fixpoint loop.
    pub fn requeue_all_quarantined(&mut self) -> Vec<(Envelope, IngestOutcome)> {
        let mut entries = std::mem::take(&mut self.quarantine);
        entries.sort_by(|a, b| {
            (&a.envelope.source, a.envelope.epoch, a.envelope.seq)
                .cmp(&(&b.envelope.source, b.envelope.epoch, b.envelope.seq))
        });
        entries
            .into_iter()
            .map(|e| {
                let outcome = self.offer(&e.envelope);
                (e.envelope, outcome)
            })
            .collect()
    }

    /// Permanently discards the quarantined envelope at `index`,
    /// recording the operator's reason in the discard log. Returns the
    /// discarded entry, or `None` when the index is out of range.
    pub fn discard_quarantined(
        &mut self,
        index: usize,
        reason: impl Into<String>,
    ) -> Option<&DiscardedEntry> {
        if index >= self.quarantine.len() {
            return None;
        }
        let entry = self.quarantine.remove(index);
        self.discarded.push(DiscardedEntry { entry, reason: reason.into() });
        self.discarded.last()
    }

    /// The discard log: every quarantined envelope an operator dropped,
    /// with the stated reason, oldest first.
    pub fn discarded(&self) -> &[DiscardedEntry] {
        &self.discarded
    }

    /// Read-only sequencing status of every source the ingestor has
    /// heard from — the dedup/reorder windows a durable snapshot must
    /// capture for recovery to stay idempotent.
    pub fn sequencing(&self) -> Vec<SequencingStatus> {
        self.cursors
            .iter()
            .map(|(source, c)| SequencingStatus {
                source: source.clone(),
                epoch: c.epoch,
                next_seq: c.next_seq,
                parked: c.pending.keys().copied().collect(),
            })
            .collect()
    }

    /// The configuration in effect.
    pub fn config(&self) -> IngestConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::SequencedSource;
    use crate::integrator::SourceSite;
    use crate::testutil::{fig1_spec, fig1_state};
    use dwc_relalg::rel;

    fn setup(config: IngestConfig) -> (SequencedSource, IngestingIntegrator) {
        let spec = fig1_spec();
        let catalog = spec.catalog().clone();
        let aug = spec.augment().unwrap();
        let site = SourceSite::new(catalog, fig1_state()).unwrap();
        let integ = Integrator::initial_load(aug, &site).unwrap();
        (SequencedSource::new("fig1", site), IngestingIntegrator::new(integ, config).unwrap())
    }

    fn sale_insert(src: &mut SequencedSource, item: &str, clerk: &str) -> Envelope {
        src.apply_update(&Update::inserting(
            "Sale",
            rel! { ["item", "clerk"] => (item, clerk) },
        ))
        .unwrap()
    }

    fn oracle(src: &SequencedSource, ing: &IngestingIntegrator) -> DbState {
        ing.integrator().warehouse().materialize(src.oracle_state()).unwrap()
    }

    #[test]
    fn in_order_stream_applies_exactly() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        for i in 0..5 {
            let env = sale_insert(&mut src, &format!("item{i}"), "Mary");
            assert_eq!(ing.offer(&env), IngestOutcome::Applied(1));
        }
        assert_eq!(ing.state(), &oracle(&src, &ing));
        assert_eq!(ing.stats().applied, 5);
        assert_eq!(ing.stats().recoveries, 0);
    }

    #[test]
    fn duplicates_are_idempotent_and_reorders_park() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        let envs: Vec<Envelope> =
            (0..4).map(|i| sale_insert(&mut src, &format!("item{i}"), "John")).collect();
        assert_eq!(ing.offer(&envs[0]), IngestOutcome::Applied(1));
        assert_eq!(ing.offer(&envs[2]), IngestOutcome::Buffered);
        assert_eq!(ing.offer(&envs[2]), IngestOutcome::Duplicate); // parked replay
        assert_eq!(ing.offer(&envs[0]), IngestOutcome::Duplicate); // applied replay
        assert_eq!(ing.offer(&envs[1]), IngestOutcome::Applied(2)); // fills the gap
        assert_eq!(ing.offer(&envs[3]), IngestOutcome::Applied(1));
        assert_eq!(ing.state(), &oracle(&src, &ing));
        let s = ing.stats();
        assert_eq!((s.applied, s.duplicates, s.buffered, s.gaps_detected), (4, 2, 1, 1));
        assert!(ing.missing_seqs(src.id()).is_empty());
    }

    #[test]
    fn window_overflow_demands_recovery_and_log_replay_heals() {
        let (mut src, mut ing) =
            setup(IngestConfig { reorder_window: 2, verify_invariants: false });
        let envs: Vec<Envelope> =
            (0..5).map(|i| sale_insert(&mut src, &format!("item{i}"), "Mary")).collect();
        assert_eq!(ing.offer(&envs[0]), IngestOutcome::Applied(1));
        // Drop seq 1; 2 and 3 park, 4 overflows the window.
        assert_eq!(ing.offer(&envs[2]), IngestOutcome::Buffered);
        assert_eq!(ing.offer(&envs[3]), IngestOutcome::Buffered);
        let outcome = ing.offer(&envs[4]);
        assert!(
            matches!(
                outcome,
                IngestOutcome::NeedsRecovery(WarehouseError::ReorderWindowOverflow { .. })
            ),
            "got {outcome:?}"
        );
        assert_eq!(ing.missing_seqs(src.id()), vec![1]);
        let recovered = ing.recover_from_log(src.id(), src.outbox()).unwrap();
        assert_eq!(recovered, 4); // seqs 1..=4
        assert_eq!(ing.state(), &oracle(&src, &ing));
        assert_eq!(ing.stats().recoveries, 1);
        assert!(ing.missing_seqs(src.id()).is_empty());
        // And the stream continues normally afterwards.
        let env = sale_insert(&mut src, "item5", "Mary");
        assert_eq!(ing.offer(&env), IngestOutcome::Applied(1));
        assert_eq!(ing.state(), &oracle(&src, &ing));
    }

    #[test]
    fn trailing_drops_recovered_from_log_horizon() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        let envs: Vec<Envelope> =
            (0..3).map(|i| sale_insert(&mut src, &format!("item{i}"), "John")).collect();
        ing.offer(&envs[0]);
        // seqs 1 and 2 are lost in flight; nothing is parked, so only
        // the log knows they exist.
        assert!(ing.missing_seqs(src.id()).is_empty());
        let recovered = ing.recover_from_log(src.id(), src.outbox()).unwrap();
        assert_eq!(recovered, 2);
        assert_eq!(ing.state(), &oracle(&src, &ing));
    }

    #[test]
    fn recovery_with_incomplete_log_is_a_typed_error() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        let envs: Vec<Envelope> =
            (0..3).map(|i| sale_insert(&mut src, &format!("item{i}"), "Mary")).collect();
        ing.offer(&envs[0]);
        ing.offer(&envs[2]);
        let before = ing.state().clone();
        // A log that lost seq 1 for good.
        let holey: Vec<Envelope> = vec![envs[0].clone(), envs[2].clone()];
        let err = ing.recover_from_log(src.id(), &holey).unwrap_err();
        assert!(matches!(err, WarehouseError::UnfillableGap { missing: 1, .. }));
        assert_eq!(ing.state(), &before, "failed recovery must not touch state");
        // The full log still heals.
        ing.recover_from_log(src.id(), src.outbox()).unwrap();
        assert_eq!(ing.state(), &oracle(&src, &ing));
    }

    #[test]
    fn malformed_reports_quarantine_without_consuming_sequence() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        let good = sale_insert(&mut src, "Mac", "Paula");
        // A corrupted copy of the same envelope: retargeted at a ghost
        // relation.
        let mut corrupt = good.clone();
        corrupt.report = Update::inserting("Ghost", rel! { ["x"] => (1,) });
        let outcome = ing.offer(&corrupt);
        assert!(matches!(
            outcome,
            IngestOutcome::Quarantined(WarehouseError::UpdateOutsideSources(_))
        ));
        assert_eq!(ing.quarantine().len(), 1);
        // The pristine retransmission still fills seq 0.
        assert_eq!(ing.offer(&good), IngestOutcome::Applied(1));
        assert_eq!(ing.state(), &oracle(&src, &ing));
    }

    #[test]
    fn quarantine_drain_requeue_and_discard() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        let good0 = sale_insert(&mut src, "Mac", "Paula");
        let good1 = sale_insert(&mut src, "Modem", "John");
        // Two corrupt copies: a ghost relation and a header mismatch.
        let mut ghost = good0.clone();
        ghost.report = Update::inserting("Ghost", rel! { ["x"] => (1,) });
        let mut narrow = good1.clone();
        narrow.report = Update::inserting("Sale", rel! { ["item"] => ("Mac",) });
        assert!(matches!(ing.offer(&ghost), IngestOutcome::Quarantined(_)));
        assert!(matches!(ing.offer(&narrow), IngestOutcome::Quarantined(_)));
        assert_eq!(ing.quarantine().len(), 2);
        assert_eq!(ing.quarantine()[0].envelope, ghost);
        assert!(matches!(
            ing.quarantine()[0].error,
            WarehouseError::UpdateOutsideSources(_)
        ));

        // Out-of-range indices are None, not panics.
        assert_eq!(ing.requeue_quarantined(5), None);
        assert!(ing.discard_quarantined(5, "nope").is_none());

        // Discard the ghost with a reason; it moves to the discard log.
        let d = ing.discard_quarantined(0, "relation does not exist").unwrap();
        assert_eq!(d.reason, "relation does not exist");
        assert_eq!(ing.quarantine().len(), 1);
        assert_eq!(ing.discarded().len(), 1);
        assert_eq!(ing.discarded()[0].entry.envelope, ghost);

        // Requeueing the still-bad envelope re-quarantines it as a new
        // entry (the quarantine length is unchanged: one out, one in).
        let outcome = ing.requeue_quarantined(0).unwrap();
        assert!(matches!(outcome, IngestOutcome::Quarantined(_)));
        assert_eq!(ing.quarantine().len(), 1);

        // The pristine retransmissions still apply: no sequence was
        // consumed by any of the above.
        assert_eq!(ing.offer(&good0), IngestOutcome::Applied(1));
        assert_eq!(ing.offer(&good1), IngestOutcome::Applied(1));
        assert_eq!(ing.state(), &oracle(&src, &ing));

        // Requeueing a now-valid duplicate drains it from quarantine.
        let outcome = ing.requeue_quarantined(0).unwrap();
        assert!(matches!(
            outcome,
            IngestOutcome::Duplicate | IngestOutcome::Quarantined(_)
        ));
        // Sequencing inspection sees the drained cursor.
        let seq = ing.sequencing();
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].source, *src.id());
        assert_eq!(seq[0].next_seq, 2);
        assert!(seq[0].parked.is_empty());
    }

    #[test]
    fn corrupt_future_epoch_never_wedges_the_cursor() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        let good0 = sale_insert(&mut src, "Mac", "Paula");
        let good1 = sale_insert(&mut src, "Modem", "John");
        assert_eq!(ing.offer(&good0), IngestOutcome::Applied(1));
        // A corrupted copy of good1 that *also* claims a future epoch.
        // Validation must reject it before the epoch transition: were
        // the cursor bumped first, every genuine epoch-0 envelope —
        // including the pristine retransmission below — would bounce
        // as stale and the source would be wedged for good.
        let mut corrupt = good1.clone();
        corrupt.epoch = 5;
        corrupt.report = Update::inserting("Ghost", rel! { ["x"] => (1,) });
        assert!(matches!(ing.offer(&corrupt), IngestOutcome::Quarantined(_)));
        assert_eq!(ing.sequencing()[0].epoch, 0, "cursor epoch must not move");
        // The pristine retransmission still applies in its epoch.
        assert_eq!(ing.offer(&good1), IngestOutcome::Applied(1));
        assert_eq!(ing.state(), &oracle(&src, &ing));
        // And a *valid* future-epoch envelope still supersedes normally.
        src.begin_epoch();
        let next = sale_insert(&mut src, "Printer", "Mary");
        assert_eq!((next.epoch, next.seq), (1, 0));
        assert_eq!(ing.offer(&next), IngestOutcome::Applied(1));
        assert_eq!(ing.sequencing()[0].epoch, 1);
    }

    #[test]
    fn requeue_all_reenters_in_sequence_order() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        let goods: Vec<Envelope> =
            (0..3).map(|i| sale_insert(&mut src, &format!("item{i}"), "Mary")).collect();
        // Corrupt copies arrive in scrambled order 2, 0, 1 and all
        // quarantine (validation precedes any sequencing decision).
        for i in [2usize, 0, 1] {
            let mut corrupt = goods[i].clone();
            corrupt.report = Update::inserting("Ghost", rel! { ["x"] => (i as i64,) });
            assert!(matches!(ing.offer(&corrupt), IngestOutcome::Quarantined(_)));
        }
        let arrival: Vec<u64> = ing.quarantine().iter().map(|q| q.envelope.seq).collect();
        assert_eq!(arrival, vec![2, 0, 1]);
        // The bulk requeue drains in (source, epoch, seq) order, so the
        // re-offers — and the re-quarantined entries they produce — come
        // back sequence-sorted, not arrival-sorted.
        let outcomes = ing.requeue_all_quarantined();
        let offered: Vec<u64> = outcomes.iter().map(|(e, _)| e.seq).collect();
        assert_eq!(offered, vec![0, 1, 2]);
        assert!(outcomes.iter().all(|(_, o)| matches!(o, IngestOutcome::Quarantined(_))));
        let requeued: Vec<u64> = ing.quarantine().iter().map(|q| q.envelope.seq).collect();
        assert_eq!(requeued, vec![0, 1, 2]);
        // Pristine retransmissions are unaffected throughout.
        for g in &goods {
            assert_eq!(ing.offer(g), IngestOutcome::Applied(1));
        }
        assert_eq!(ing.state(), &oracle(&src, &ing));
    }

    #[test]
    fn stale_epochs_are_quarantined() {
        let (mut src, mut ing) = setup(IngestConfig::default());
        let old = sale_insert(&mut src, "Mac", "Paula");
        src.begin_epoch();
        let new = sale_insert(&mut src, "Modem", "John");
        assert_eq!((new.epoch, new.seq), (1, 0));
        // The new epoch supersedes the cursor...
        assert_eq!(ing.offer(&new), IngestOutcome::Applied(1));
        // ...and the pre-restart envelope is rejected as stale.
        let outcome = ing.offer(&old);
        assert!(matches!(
            outcome,
            IngestOutcome::Quarantined(WarehouseError::StaleEpoch { current: 1, got: 0, .. })
        ));
    }

    #[test]
    fn paranoid_mode_heals_tampered_state_by_reconstruction() {
        let (mut src, mut ing) = setup(IngestConfig::paranoid());
        // Tamper: smuggle a joinable tuple into the C_Sale complement,
        // pushing the warehouse state outside the image of W — exactly
        // what the Theorem 4.1 check exists to catch.
        let mut tampered = ing.state().clone();
        let c_sale = tampered.relation(dwc_relalg::RelName::new("C_Sale")).unwrap();
        let extra = c_sale
            .union(&rel! { ["item", "clerk"] => ("Widget", "Mary") })
            .unwrap();
        tampered.insert_relation("C_Sale", extra);
        ing.integrator_mut().force_state(tampered).unwrap();

        let env = sale_insert(&mut src, "Mac", "John");
        assert_eq!(ing.offer(&env), IngestOutcome::Applied(1));
        assert_eq!(ing.stats().invariant_failures, 1);
        assert_eq!(ing.stats().recoveries, 1);
        // The healed state is self-consistent: it round-trips through
        // W⁻¹ and W.
        let aug = ing.integrator().warehouse().clone();
        let roundtrip =
            aug.materialize(&aug.reconstruct_sources(ing.state()).unwrap()).unwrap();
        assert_eq!(ing.state(), &roundtrip);
    }

    #[test]
    fn paranoid_mode_is_silent_on_healthy_streams() {
        let (mut src, mut ing) = setup(IngestConfig::paranoid());
        for i in 0..4 {
            let env = sale_insert(&mut src, &format!("item{i}"), "Paula");
            assert_eq!(ing.offer(&env), IngestOutcome::Applied(1));
        }
        assert_eq!(ing.stats().invariant_failures, 0);
        assert_eq!(ing.stats().recoveries, 0);
        assert_eq!(ing.state(), &oracle(&src, &ing));
    }
}
