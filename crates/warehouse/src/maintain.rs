//! Update translation and the Theorem 4.1 correctness criterion.
//!
//! `w' = W(u(W⁻¹(w)))` — the new warehouse state computed from the old
//! one and the reported update only (Figure 3's commuting diagram). The
//! incremental implementation is [`crate::incremental`]; this module
//! provides the one-call convenience API and the checked variant used in
//! tests and experiments, plus the *semantic* (non-incremental but still
//! source-free) fallback that literally evaluates `W ∘ u ∘ W⁻¹`.

use crate::error::{Result, WarehouseError};
use crate::spec::AugmentedWarehouse;
use dwc_relalg::{DbState, RelName, Update};
use std::collections::BTreeSet;

impl AugmentedWarehouse {
    /// Maintains the warehouse incrementally: compiles (or reuses) the
    /// plan for the update's touched set and applies it. `update` must be
    /// normalized by the reporting source.
    pub fn maintain(&self, warehouse: &DbState, update: &Update) -> Result<DbState> {
        let touched: BTreeSet<RelName> = update.touched().collect();
        let plan = self.compile_plan(&touched)?;
        plan.apply(warehouse, update)
    }

    /// The literal `W(u(W⁻¹(w)))` pipeline: reconstruct the sources from
    /// the warehouse, apply the update, re-materialize. Source-free like
    /// the incremental path but recomputes every view; used as the
    /// correctness oracle, as a baseline in the experiments, and as the
    /// degraded-mode recovery path of the ingestion layer
    /// ([`crate::ingest::IngestingIntegrator`] repairs sequence gaps and
    /// failed invariant checks through it — unlike the incremental
    /// plans, it tolerates an `update` that is not normalized with
    /// respect to the current state, such as a composition of several
    /// backed-up reports).
    pub fn maintain_by_reconstruction(
        &self,
        warehouse: &DbState,
        update: &Update,
    ) -> Result<DbState> {
        let sources = self.reconstruct_sources(warehouse)?;
        let next_sources = update.apply(&sources)?;
        self.materialize(&next_sources)
    }

    /// Incremental maintenance with the Theorem 4.1 correctness criterion
    /// checked against ground truth: the caller provides the *actual*
    /// pre-update source state `db` (as a test oracle only — the
    /// maintenance itself never touches it).
    pub fn maintain_checked(
        &self,
        db: &DbState,
        warehouse: &DbState,
        update: &Update,
    ) -> Result<DbState> {
        let next = self.maintain(warehouse, update)?;
        let expected = self.materialize(&update.apply(db)?)?;
        if next != expected {
            let bad = next
                .iter()
                .find(|(n, r)| expected.relation(*n).map(|e| &e != r).unwrap_or(true))
                .map(|(n, _)| n)
                .unwrap_or_else(|| RelName::new("<missing>"));
            return Err(WarehouseError::CorrectnessViolation(bad));
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1_catalog, fig1_spec, fig1_state};
    use dwc_core::constrained::ComplementOptions;
    use dwc_relalg::{gen, rel, Delta, RaExpr};

    #[test]
    fn incremental_equals_reconstruction_equals_recompute() {
        let aug = fig1_spec().augment().unwrap();
        let db = fig1_state();
        let w = aug.materialize(&db).unwrap();
        let update = Update::new()
            .with(
                "Sale",
                Delta::insert_only(rel! { ["item", "clerk"] => ("Computer", "Paula") }),
            )
            .with(
                "Emp",
                Delta::delete_only(rel! { ["clerk", "age"] => ("John", 25) }),
            )
            .normalize(&db)
            .unwrap();
        let incremental = aug.maintain(&w, &update).unwrap();
        let reconstructed = aug.maintain_by_reconstruction(&w, &update).unwrap();
        let recomputed = aug.materialize(&update.apply(&db).unwrap()).unwrap();
        assert_eq!(incremental, recomputed);
        assert_eq!(reconstructed, recomputed);
    }

    #[test]
    fn checked_maintenance_passes_on_fig1() {
        let aug = fig1_spec().augment().unwrap();
        let db = fig1_state();
        let w = aug.materialize(&db).unwrap();
        let u = Update::deleting("Sale", rel! { ["item", "clerk"] => ("VCR", "Mary") })
            .normalize(&db)
            .unwrap();
        aug.maintain_checked(&db, &w, &u).unwrap();
    }

    #[test]
    fn update_stream_stays_consistent() {
        // Figure 3 commuting diagram over a stream of random updates:
        // maintain incrementally and compare against ground truth at each
        // step, under all three complement-option regimes.
        for opts in [
            ComplementOptions::default(),
            ComplementOptions::keys_only(),
            ComplementOptions::unconstrained(),
        ] {
            let aug = fig1_spec().augment_with(&opts).unwrap();
            let cfg = gen::StateGenConfig::new(12, 5);
            let mut db = gen::random_state(aug.catalog(), &cfg, 99);
            let mut w = aug.materialize(&db).unwrap();
            for seed in 0..12u64 {
                let other = gen::random_state(aug.catalog(), &cfg, 1000 + seed);
                // Build an update moving db toward `other` on one relation.
                let name = if seed % 2 == 0 { "Sale" } else { "Emp" };
                let r = RelName::new(name);
                let current = db.relation(r).unwrap().clone();
                let target = other.relation(r).unwrap().clone();
                let update = Update::new()
                    .with(
                        name,
                        Delta::new(
                            target.difference(&current).unwrap(),
                            current.difference(&target).unwrap(),
                        )
                        .unwrap(),
                    )
                    .normalize(&db)
                    .unwrap();
                if update.is_empty() {
                    continue;
                }
                w = aug.maintain_checked(&db, &w, &update).unwrap();
                db = update.apply(&db).unwrap();
            }
        }
    }

    #[test]
    fn queries_after_maintenance_remain_correct() {
        // Query independence survives maintenance: answers at the
        // maintained warehouse match answers at the updated source.
        let aug = fig1_spec().augment().unwrap();
        let db = fig1_state();
        let mut w = aug.materialize(&db).unwrap();
        let u = Update::inserting("Sale", rel! { ["item", "clerk"] => ("Computer", "Paula") })
            .normalize(&db)
            .unwrap();
        w = aug.maintain(&w, &u).unwrap();
        let db_next = u.apply(&db).unwrap();
        let q = RaExpr::parse("pi[clerk](Sale) union pi[clerk](Emp)").unwrap();
        let at_source = q.eval(&db_next).unwrap();
        let at_warehouse = aug.answer_at_warehouse(&q, &w).unwrap();
        assert_eq!(at_source, at_warehouse);
    }

    #[test]
    fn correctness_violation_is_detected() {
        // Feed maintain_checked a stale warehouse state: it must object.
        let aug = fig1_spec().augment().unwrap();
        let db = fig1_state();
        let mut wrong_db = db.clone();
        wrong_db.insert_relation("Emp", rel! { ["clerk", "age"] => ("Mary", 23) });
        let w_wrong = aug.materialize(&wrong_db).unwrap();
        let u = Update::inserting("Sale", rel! { ["item", "clerk"] => ("X", "Mary") })
            .normalize(&db)
            .unwrap();
        let err = aug.maintain_checked(&db, &w_wrong, &u).unwrap_err();
        assert!(matches!(err, WarehouseError::CorrectnessViolation(_)));
    }

    #[test]
    fn constrained_catalog_stream_with_fk() {
        // With the FK of Example 2.4, C_Sale ≡ ∅; updates must respect the
        // FK and maintenance must stay exact.
        let mut c = fig1_catalog();
        c.add_foreign_key("Sale", "Emp", &["clerk"]).unwrap();
        let spec =
            crate::spec::WarehouseSpec::parse(c, &[("Sold", "Sale join Emp")]).unwrap();
        let aug = spec.augment().unwrap();
        let cfg = gen::StateGenConfig::new(14, 5);
        let mut db = gen::random_state(aug.catalog(), &cfg, 7);
        let mut w = aug.materialize(&db).unwrap();
        for seed in 0..10u64 {
            let next = gen::random_state(aug.catalog(), &cfg, 2000 + seed);
            // Replace the entire database state in one multi-relation
            // update (FK-safe because both states are valid and the update
            // is applied atomically).
            let mut update = Update::new();
            for (name, target) in next.iter() {
                let current = db.relation(name).unwrap();
                update = update.with(
                    name.as_str(),
                    Delta::new(
                        target.difference(current).unwrap(),
                        current.difference(target).unwrap(),
                    )
                    .unwrap(),
                );
            }
            let update = update.normalize(&db).unwrap();
            if update.is_empty() {
                continue;
            }
            w = aug.maintain_checked(&db, &w, &update).unwrap();
            db = update.apply(&db).unwrap();
            db.check_constraints(aug.catalog()).unwrap();
        }
    }
}
