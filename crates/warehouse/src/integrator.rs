//! The warehousing architecture of Figure 1.
//!
//! A [`SourceSite`] plays an operational database: it owns the authoritative
//! state, applies updates, and *reports* the normalized deltas. Crucially
//! it counts every query evaluated against it ([`SourceSite::answer`]),
//! so "the warehouse never queries the sources" is a measured property,
//! not an assumption.
//!
//! The [`Integrator`] owns the materialized warehouse state `W(d)` and
//! maintains it from reported deltas alone, caching one maintenance plan
//! per touched-relation set. It also answers source queries at the
//! warehouse (query independence, Section 3).

use crate::error::{Result, WarehouseError};
use crate::incremental::{MaintenancePlan, StoredDelta};
use crate::spec::AugmentedWarehouse;
use dwc_relalg::{Catalog, DbState, RaExpr, RelName, Relation, Update};
use std::cell::Cell;
use std::collections::BTreeMap;

/// Cumulative access statistics of a source site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Number of queries evaluated against the site.
    pub queries: usize,
    /// Total tuples read by those queries (sum of the sizes of every base
    /// relation each query touches — a bandwidth proxy).
    pub tuples_read: usize,
    /// Number of updates applied.
    pub updates: usize,
}

/// A decoupled operational source database.
#[derive(Clone, Debug)]
pub struct SourceSite {
    catalog: Catalog,
    db: DbState,
    queries: Cell<usize>,
    tuples_read: Cell<usize>,
    updates: Cell<usize>,
}

impl SourceSite {
    /// Wraps a state; `db` must cover the catalog.
    pub fn new(catalog: Catalog, db: DbState) -> Result<SourceSite> {
        db.check_headers(&catalog)?;
        Ok(SourceSite {
            catalog,
            db,
            queries: Cell::new(0),
            tuples_read: Cell::new(0),
            updates: Cell::new(0),
        })
    }

    /// The site's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Read-only access to the authoritative state — for test oracles.
    /// Does *not* count as a source query.
    pub fn oracle_state(&self) -> &DbState {
        &self.db
    }

    /// Applies an update and returns the normalized delta report the
    /// site sends to the integrator (solid arrow in Figure 1).
    ///
    /// Rejections are typed, never panics: an update touching a relation
    /// outside the catalog raises [`WarehouseError::UpdateOutsideSources`],
    /// a delta whose header disagrees with the relation's schema raises
    /// [`WarehouseError::ReportHeaderMismatch`]. Application is staged:
    /// on any error the authoritative state is untouched.
    pub fn apply_update(&mut self, update: &Update) -> Result<Update> {
        for (r, delta) in update.iter() {
            if !self.catalog.contains(r) {
                return Err(WarehouseError::UpdateOutsideSources(r));
            }
            let schema = self.catalog.schema(r)?;
            if delta.inserted().attrs() != schema.attrs() {
                return Err(WarehouseError::ReportHeaderMismatch {
                    relation: r,
                    expected: schema.attrs().clone(),
                    got: delta.inserted().attrs().clone(),
                });
            }
        }
        let normalized = update.normalize(&self.db)?;
        // Stage-then-swap: a failure below must not leave the
        // authoritative state with only some relations updated.
        let next = normalized.apply(&self.db)?;
        self.db = next;
        self.updates.set(self.updates.get() + 1);
        Ok(normalized)
    }

    /// Evaluates a query against the source, *counting the access*
    /// (dashed arrow in Figure 1 — the thing independence avoids).
    pub fn answer(&self, q: &RaExpr) -> Result<Relation> {
        self.count_query(q);
        Ok(q.eval(&self.db)?)
    }

    /// Bumps the access counters for `q`: one query, plus the sizes of
    /// every base relation it touches as a bandwidth proxy.
    pub(crate) fn count_query(&self, q: &RaExpr) {
        self.queries.set(self.queries.get() + 1);
        let mut read = 0;
        for base in q.base_relations() {
            read += self.db.relation(base).map(Relation::len).unwrap_or(0);
        }
        self.tuples_read.set(self.tuples_read.get() + read);
    }

    /// The access counters.
    pub fn stats(&self) -> SourceStats {
        SourceStats {
            queries: self.queries.get(),
            tuples_read: self.tuples_read.get(),
            updates: self.updates.get(),
        }
    }

    /// Resets the access counters.
    pub fn reset_stats(&self) {
        self.queries.set(0);
        self.tuples_read.set(0);
        self.updates.set(0);
    }
}

/// Cumulative integrator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegratorStats {
    /// Delta reports processed.
    pub updates_processed: usize,
    /// Tuples contained in those reports.
    pub delta_tuples: usize,
    /// Maintenance plans compiled (cache misses).
    pub plans_compiled: usize,
    /// Queries answered at the warehouse.
    pub queries_answered: usize,
}

/// Integrator tuning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntegratorConfig {
    /// Keep materialized mirrors of the reconstructed base relations and
    /// maintain them delta-wise, instead of re-deriving `R@inv` from the
    /// warehouse on every update. Removes the per-update reconstruction
    /// scans at the cost of storing a full source copy — exactly the
    /// trade the paper's Section 6 remark describes (keep the expression,
    /// or keep the materialization). Still zero source queries.
    pub cache_inverses: bool,
}

/// The integrator of Figure 1: maintains `W(d)` from delta reports alone.
#[derive(Clone, Debug)]
pub struct Integrator {
    aug: AugmentedWarehouse,
    warehouse: DbState,
    plans: BTreeMap<Vec<RelName>, MaintenancePlan>,
    stats: IntegratorStats,
    /// Materialized source reconstructions, maintained delta-wise
    /// (present iff `IntegratorConfig::cache_inverses`).
    mirrors: Option<DbState>,
}

impl Integrator {
    /// Initial load: materializes `W(d)` from the source state. This is
    /// the only moment the integrator sees base data (and it is counted
    /// at the site as a query per stored relation).
    pub fn initial_load(aug: AugmentedWarehouse, site: &SourceSite) -> Result<Integrator> {
        Integrator::initial_load_with(aug, site, IntegratorConfig::default())
    }

    /// Initial load with explicit tuning.
    pub fn initial_load_with(
        aug: AugmentedWarehouse,
        site: &SourceSite,
        config: IntegratorConfig,
    ) -> Result<Integrator> {
        let mut warehouse = DbState::new();
        for name in aug.stored_relations() {
            let def = aug
                .definition_of(name)
                .ok_or(WarehouseError::MissingDefinition(name))?;
            warehouse.insert_relation(name, site.answer(&def)?);
        }
        // Mirrors are derived from the warehouse itself (the inverse
        // expressions), not from the sources: no extra source access.
        let mirrors = if config.cache_inverses {
            let mut m = DbState::new();
            for (base, inv) in aug.inverse() {
                m.insert_relation(*base, inv.eval(&warehouse)?);
            }
            Some(m)
        } else {
            None
        };
        Ok(Integrator {
            aug,
            warehouse,
            plans: BTreeMap::new(),
            stats: IntegratorStats::default(),
            mirrors,
        })
    }

    /// Rebuilds an integrator around an already-materialized warehouse
    /// state — the restore half of [`crate::storage`]'s snapshot cycle.
    /// No source is consulted: inverse mirrors (when configured) are
    /// re-derived from the state itself, exactly as
    /// [`Integrator::force_state`] does. The state is *trusted* here;
    /// recovery cross-checks it separately before serving.
    pub fn from_state(
        aug: AugmentedWarehouse,
        state: DbState,
        config: IntegratorConfig,
    ) -> Result<Integrator> {
        let mirrors = if config.cache_inverses {
            let mut m = DbState::new();
            for (base, inv) in aug.inverse() {
                m.insert_relation(*base, inv.eval(&state)?);
            }
            Some(m)
        } else {
            None
        };
        Ok(Integrator {
            aug,
            warehouse: state,
            plans: BTreeMap::new(),
            stats: IntegratorStats::default(),
            mirrors,
        })
    }

    /// Overwrites the counters — used by snapshot restore so a replayed
    /// prefix reproduces the full run's statistics exactly.
    pub(crate) fn restore_stats(&mut self, stats: IntegratorStats) {
        self.stats = stats;
    }

    /// The effective tuning (reconstructed from structure: mirrors are
    /// present iff inverse caching is on).
    pub fn config(&self) -> IntegratorConfig {
        IntegratorConfig { cache_inverses: self.mirrors.is_some() }
    }

    /// The warehouse definition.
    pub fn warehouse(&self) -> &AugmentedWarehouse {
        &self.aug
    }

    /// The current materialized warehouse state.
    pub fn state(&self) -> &DbState {
        &self.warehouse
    }

    /// Processes a delta report (already normalized by the source). No
    /// source access happens here — by construction the maintenance plan
    /// references warehouse relations and the report only.
    pub fn on_report(&mut self, report: &Update) -> Result<()> {
        self.on_report_detailed(report).map(drop)
    }

    /// Like [`Integrator::on_report`], additionally returning the net
    /// per-stored-relation deltas, for cascading layers (summary tables).
    ///
    /// Application is transactional: the next warehouse state *and* the
    /// next mirror state are both staged in full before either is
    /// committed, so an evaluation error on any path leaves the
    /// integrator exactly as it was.
    pub fn on_report_detailed(&mut self, report: &Update) -> Result<Vec<StoredDelta>> {
        self.on_report_detailed_with(report, true)
    }

    /// Like [`Integrator::on_report_detailed`], but with the mirror
    /// *plan path* under caller control: `use_mirrors: false` evaluates
    /// the inverse expressions afresh (the plain incremental strategy)
    /// even when mirrors are cached — the mirrors themselves are still
    /// delta-maintained so later reports can use them. The adaptive
    /// maintenance policy ([`crate::planner`]) dispatches through this.
    pub fn on_report_detailed_with(
        &mut self,
        report: &Update,
        use_mirrors: bool,
    ) -> Result<Vec<StoredDelta>> {
        if report.is_empty() {
            return Ok(Vec::new());
        }
        let touched: Vec<RelName> = report.touched().collect();
        if !self.plans.contains_key(&touched) {
            let set = touched.iter().copied().collect();
            let plan = self.aug.compile_plan(&set)?;
            self.plans.insert(touched.clone(), plan);
            self.stats.plans_compiled += 1;
        }
        let plan = &self.plans[&touched];
        let (next, deltas) = match &self.mirrors {
            Some(m) if use_mirrors => {
                plan.apply_with_mirrors_detailed(&self.warehouse, report, m)?
            }
            _ => plan.apply_detailed(&self.warehouse, report)?,
        };
        // Mirrors are themselves maintained delta-wise: the mirror IS the
        // base relation (Proposition 2.1), so the reported delta applies
        // directly. Staged before the swap below — no partial commits.
        let next_mirrors = match &self.mirrors {
            Some(m) => {
                let mut staged = m.clone();
                for (base, delta) in report.iter() {
                    let next = delta.apply(staged.relation(base)?)?;
                    staged.insert_relation(base, next);
                }
                Some(staged)
            }
            None => None,
        };
        self.warehouse = next;
        self.mirrors = next_mirrors;
        self.stats.updates_processed += 1;
        self.stats.delta_tuples += report.len();
        Ok(deltas)
    }

    /// Replaces the warehouse state wholesale and rebuilds any inverse
    /// mirrors from it. This is the commit half of the recovery paths in
    /// [`crate::ingest`] (and the corruption-injection hook of the chaos
    /// suites); normal maintenance goes through [`Integrator::on_report`].
    pub fn force_state(&mut self, state: DbState) -> Result<()> {
        let mirrors = match &self.mirrors {
            Some(_) => {
                let mut m = DbState::new();
                for (base, inv) in self.aug.inverse() {
                    m.insert_relation(*base, inv.eval(&state)?);
                }
                Some(m)
            }
            None => None,
        };
        self.warehouse = state;
        self.mirrors = mirrors;
        Ok(())
    }

    /// The source-free fallback: rebuilds every stored relation through
    /// the literal `W ∘ u ∘ W⁻¹` pipeline
    /// ([`AugmentedWarehouse::maintain_by_reconstruction`]) instead of
    /// the incremental plans. Used by the ingestion layer to repair
    /// sequence gaps (where `update` is a composition of several backed-up
    /// reports, possibly unnormalized with respect to the current state)
    /// and failed invariant checks. Still zero source queries.
    pub fn recover_by_reconstruction(&mut self, update: &Update) -> Result<()> {
        let next = self.aug.maintain_by_reconstruction(&self.warehouse, update)?; // lint:allow strategy_dispatch -- the recovery path IS the reconstruction strategy
        self.stats.updates_processed += 1;
        self.stats.delta_tuples += update.len();
        self.force_state(next)
    }

    /// Tuples held by the inverse mirrors (0 when caching is off) — the
    /// storage price of `cache_inverses`.
    pub fn mirror_storage(&self) -> usize {
        self.mirrors.as_ref().map_or(0, DbState::total_tuples)
    }

    /// The cached inverse mirrors, when inverse caching is on. The
    /// maintenance planner measures distinct counts on them (and only
    /// on cache-miss re-plans, so the amortized cost stays O(plan)).
    pub(crate) fn mirrors_state(&self) -> Option<&DbState> {
        self.mirrors.as_ref()
    }

    /// Answers a source query at the warehouse (query independence).
    pub fn answer(&mut self, q: &RaExpr) -> Result<Relation> {
        self.stats.queries_answered += 1;
        self.aug.answer_at_warehouse(q, &self.warehouse)
    }

    /// The integrator's counters.
    pub fn stats(&self) -> IntegratorStats {
        self.stats
    }

    /// Auxiliary storage currently used by complement views, in tuples.
    pub fn complement_storage(&self) -> usize {
        self.aug
            .complement()
            .entries()
            .iter()
            .filter_map(|e| self.warehouse.relation(e.name).ok())
            .map(Relation::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fig1_spec, fig1_state};
    use dwc_relalg::{gen, rel};

    fn setup() -> (SourceSite, Integrator) {
        let spec = fig1_spec();
        let catalog = spec.catalog().clone();
        let aug = spec.augment().unwrap();
        let site = SourceSite::new(catalog, fig1_state()).unwrap();
        let integ = Integrator::initial_load(aug, &site).unwrap();
        (site, integ)
    }

    #[test]
    fn initial_load_counts_source_access() {
        let (site, integ) = setup();
        assert_eq!(site.stats().queries, 3); // Sold, C_Sale, C_Emp
        assert!(site.stats().tuples_read > 0);
        assert_eq!(integ.state().len(), 3);
    }

    #[test]
    fn maintenance_without_any_source_access() {
        let (mut site, mut integ) = setup();
        site.reset_stats();
        let report = site
            .apply_update(&Update::inserting(
                "Sale",
                rel! { ["item", "clerk"] => ("Computer", "Paula") },
            ))
            .unwrap();
        integ.on_report(&report).unwrap();
        // Zero queries: this is what update independence *means*.
        assert_eq!(site.stats().queries, 0);
        assert_eq!(site.stats().updates, 1);
        // And the warehouse is exactly W(u(d)).
        let expected = integ.warehouse().materialize(site.oracle_state()).unwrap();
        assert_eq!(integ.state(), &expected);
        assert_eq!(integ.stats().updates_processed, 1);
    }

    #[test]
    fn plan_cache_hits_on_repeated_shapes() {
        let (mut site, mut integ) = setup();
        for i in 0..5 {
            let report = site
                .apply_update(&Update::inserting(
                    "Sale",
                    rel! { ["item", "clerk"] => (format!("item{i}").as_str(), "Mary") },
                ))
                .unwrap();
            integ.on_report(&report).unwrap();
        }
        assert_eq!(integ.stats().updates_processed, 5);
        assert_eq!(integ.stats().plans_compiled, 1);
    }

    #[test]
    fn queries_answered_at_warehouse_match_source() {
        let (mut site, mut integ) = setup();
        let report = site
            .apply_update(&Update::deleting(
                "Emp",
                rel! { ["clerk", "age"] => ("John", 25) },
            ))
            .unwrap();
        integ.on_report(&report).unwrap();
        site.reset_stats();
        let q = RaExpr::parse("pi[clerk](Sale) union pi[clerk](Emp)").unwrap();
        let at_wh = integ.answer(&q).unwrap();
        let at_src = site.answer(&q).unwrap(); // oracle comparison
        assert_eq!(at_wh, at_src);
        assert_eq!(site.stats().queries, 1); // only the oracle access
        assert_eq!(integ.stats().queries_answered, 1);
    }

    #[test]
    fn long_random_stream_stays_exact() {
        let (mut site, mut integ) = setup();
        let cfg = gen::StateGenConfig::new(10, 5);
        for seed in 0..15u64 {
            let target = gen::random_state(site.catalog(), &cfg, 3000 + seed);
            let mut u = Update::new();
            for (name, t) in target.iter() {
                let cur = site.oracle_state().relation(name).unwrap();
                u = u.with(
                    name.as_str(),
                    dwc_relalg::Delta::new(
                        t.difference(cur).unwrap(),
                        cur.difference(t).unwrap(),
                    )
                    .unwrap(),
                );
            }
            let report = site.apply_update(&u).unwrap();
            integ.on_report(&report).unwrap();
            let expected = integ.warehouse().materialize(site.oracle_state()).unwrap();
            assert_eq!(integ.state(), &expected, "diverged at seed {seed}");
        }
        assert_eq!(site.stats().queries, 3); // just the initial load
    }

    #[test]
    fn empty_reports_are_ignored() {
        let (mut site, mut integ) = setup();
        let report = site
            .apply_update(&Update::inserting(
                "Sale",
                rel! { ["item", "clerk"] => ("TV set", "Mary") }, // already present
            ))
            .unwrap();
        assert!(report.is_empty());
        integ.on_report(&report).unwrap();
        assert_eq!(integ.stats().updates_processed, 0);
    }

    #[test]
    fn update_outside_catalog_rejected_at_site() {
        let (mut site, _) = setup();
        let err = site
            .apply_update(&Update::inserting("Ghost", rel! { ["x"] => (1,) }))
            .unwrap_err();
        assert!(matches!(err, WarehouseError::UpdateOutsideSources(_)));
    }

    #[test]
    fn mirrored_integrator_matches_plain_and_pays_storage() {
        let spec = fig1_spec();
        let catalog = spec.catalog().clone();
        let aug = spec.augment().unwrap();
        let site0 = SourceSite::new(catalog.clone(), fig1_state()).unwrap();
        let mut plain = Integrator::initial_load(aug.clone(), &site0).unwrap();
        let mut mirrored = Integrator::initial_load_with(
            aug,
            &site0,
            IntegratorConfig { cache_inverses: true },
        )
        .unwrap();
        assert_eq!(plain.mirror_storage(), 0);
        assert_eq!(mirrored.mirror_storage(), 6); // full source copy

        let mut site = SourceSite::new(catalog, fig1_state()).unwrap();
        site.reset_stats();
        let cfg = gen::StateGenConfig::new(10, 5);
        for seed in 0..8u64 {
            let target = gen::random_state(site.catalog(), &cfg, 4000 + seed);
            let mut u = Update::new();
            for (name, t) in target.iter() {
                let cur = site.oracle_state().relation(name).unwrap();
                u = u.with(
                    name.as_str(),
                    dwc_relalg::Delta::new(
                        t.difference(cur).unwrap(),
                        cur.difference(t).unwrap(),
                    )
                    .unwrap(),
                );
            }
            let report = site.apply_update(&u).unwrap();
            plain.on_report(&report).unwrap();
            mirrored.on_report(&report).unwrap();
            assert_eq!(plain.state(), mirrored.state(), "strategies diverged at {seed}");
            // mirrors track the true sources exactly
            assert_eq!(
                mirrored.mirror_storage(),
                site.oracle_state().total_tuples()
            );
        }
        // both stayed source-free
        assert_eq!(site.stats().queries, 0);
        let expected = plain.warehouse().materialize(site.oracle_state()).unwrap();
        assert_eq!(plain.state(), &expected);
    }

    #[test]
    fn complement_storage_metric() {
        let (_, integ) = setup();
        // C_Emp = {(Paula, 32)}, C_Sale = ∅ on the Figure 1 state.
        assert_eq!(integ.complement_storage(), 1);
    }
}
