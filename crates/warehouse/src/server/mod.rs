//! The warehouse server core: concurrent source sessions, epoch
//! snapshot reads, and group-committed durable ingestion.
//!
//! This module promotes [`DurableWarehouse`] from a library type into a
//! long-running multi-client service — as a **pure state machine**. All
//! concurrency policy lives here (sessions, batching deadlines, commit
//! ordering, ack minting); all actual threads, sockets and timers live
//! in the binary's runtime layer, which merely forwards events into
//! [`ServerCore`]. The payoff is testability: the deterministic
//! scheduler harness in `dwc-testkit::sched` drives the same core over
//! a simulated filesystem, so "reader observes a torn epoch", "ack sent
//! before fsync" and "lost wakeup in the batcher" are reproducible
//! single-seed failures instead of flaky thread races.
//!
//! ## Shape
//!
//! ```text
//!  sessions (many)          ServerCore (single writer)        readers (many)
//!  ───────────────          ─────────────────────────         ──────────────
//!  connect ───────────────▶ SessionManager ─ grant(resume)
//!  deliver(env) ──────────▶ Batcher ──full──▶ CommitPipeline
//!  tick(now) ─────────────▶ Batcher ──wait──▶   │ offer_batch (N frames, 1 fsync)
//!                                               │ publish epoch ───▶ EpochReader.load()
//!  acks ◀── per-session ◀───────────────────────┘ mint acks
//! ```
//!
//! * **Writes** enter via [`ServerCore::deliver`] and are grouped by
//!   the [`Batcher`] under a [`BatchPolicy`] (size cap + max wait). A
//!   released batch goes through [`CommitPipeline::commit`]: N WAL
//!   frames, **one** fsync, then epoch publication, then acks. A
//!   session is never acked before its envelope's fsync returned.
//! * **Reads** never enter the core at all: a [`QueryClient`] holds an
//!   [`EpochReader`] and answers against an immutable [`StateEpoch`]
//!   snapshot, so queries neither block nor observe half-applied
//!   batches.
//! * **Recovery**: after a restart, `Recovery::open` rebuilds the
//!   warehouse (including group-committed WAL frames) and
//!   [`ServerCore::connect`] hands every returning source its durable
//!   resume point, so sources replay exactly the unacked suffix.
//!
//! [`StateEpoch`]: dwc_relalg::StateEpoch

pub mod batch;
pub mod commit;
pub mod session;

pub use batch::{BatchItem, BatchPolicy, Batcher};
pub use commit::{
    Ack, AckOutcome, CommitPipeline, CommitReceipt, Health, RetryPolicy, Store, Submitted,
};
pub use session::{SessionGrant, SessionId, SessionManager};

use crate::channel::{Envelope, SourceId};
use crate::error::WarehouseError;
use crate::spec::AugmentedWarehouse;
use crate::storage::{DurableWarehouse, StorageError, StorageMedium};
use dwc_relalg::{EpochReader, RaExpr, Relation, StateEpoch};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced to a server client (distinct from storage poisoning,
/// which fails every later commit).
#[derive(Clone, Debug, PartialEq)]
pub enum ServerError {
    /// The session handle was never granted by this server.
    UnknownSession(SessionId),
    /// The envelope names a different source than the session owns.
    SourceMismatch {
        /// The session that delivered the envelope.
        session: SessionId,
        /// The source the session was granted for.
        expected: SourceId,
        /// The source the envelope claimed.
        got: SourceId,
    },
    /// The commit path failed durably; the warehouse is poisoned.
    Storage(StorageError),
    /// The server is in read-only degradation: reads keep serving, but
    /// writes are refused until the medium heals or the process
    /// restarts into recovery. The typed nack of the fault model.
    ReadOnly {
        /// The storage failure that forced read-only mode, rendered.
        detail: String,
    },
    /// Admission control: too many envelopes are already pending
    /// (batched + parked). Back off and retry — nothing was accepted.
    Busy {
        /// A hint for when capacity may free up, in virtual
        /// microseconds from the rejected delivery.
        retry_after_micros: u64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownSession(s) => write!(f, "unknown session {s}"),
            ServerError::SourceMismatch { session, expected, got } => write!(
                f,
                "session {session} owns source {expected:?} but delivered for {got:?}"
            ),
            ServerError::Storage(e) => write!(f, "storage failure: {e}"),
            ServerError::ReadOnly { detail } => {
                write!(f, "server is read-only: {detail}")
            }
            ServerError::Busy { retry_after_micros } => {
                write!(f, "server busy; retry after {retry_after_micros}us")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<StorageError> for ServerError {
    fn from(e: StorageError) -> ServerError {
        ServerError::Storage(e)
    }
}

/// Server-side counters, for the `stats` protocol verb and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Envelopes accepted into the batcher.
    pub delivered: u64,
    /// Batches durably committed (== group fsyncs from this path).
    pub batches_committed: u64,
    /// Acks minted across all commits and recoveries.
    pub acks_minted: u64,
}

/// The single-writer server state machine: session table + batcher +
/// commit pipeline (with its health state machine). The runtime owns
/// exactly one and feeds it events; everything here is deterministic
/// given the event sequence and the virtual clock values passed in.
#[derive(Debug)]
pub struct ServerCore<M: StorageMedium> {
    sessions: SessionManager,
    batcher: Batcher,
    pipeline: CommitPipeline<M>,
    stats: ServerStats,
    /// Admission bound: batched + parked envelopes beyond this nack
    /// [`ServerError::Busy`].
    max_pending: usize,
    /// Idle sessions silent longer than this are reaped; `None`
    /// disables reaping (library embeddings, tests that drive time
    /// sparsely).
    idle_timeout: Option<u64>,
    /// The latest virtual time any event carried — the clock substitute
    /// for the clock-free entry points (`connect`, `flush`).
    last_now: u64,
    reaped: Vec<(SessionId, SourceId)>,
}

impl<M: StorageMedium> ServerCore<M> {
    /// A server over `warehouse` (fresh or recovered) batching under
    /// `policy`.
    pub fn new(warehouse: DurableWarehouse<M>, policy: BatchPolicy) -> ServerCore<M> {
        Self::over(CommitPipeline::new(warehouse), policy)
    }

    /// A server over a key-range sharded warehouse: same pipeline, plus
    /// per-shard fault containment — a fatal single-shard fault rejects
    /// its batch ([`AckOutcome::Rejected`]) while every other key range
    /// keeps committing and every reader keeps serving.
    pub fn new_sharded(
        warehouse: crate::shard::ShardedDurableWarehouse<M>,
        policy: BatchPolicy,
    ) -> ServerCore<M> {
        Self::over(CommitPipeline::new_sharded(warehouse), policy)
    }

    fn over(pipeline: CommitPipeline<M>, policy: BatchPolicy) -> ServerCore<M> {
        ServerCore {
            sessions: SessionManager::new(),
            batcher: Batcher::new(policy),
            pipeline,
            stats: ServerStats::default(),
            max_pending: 4096,
            idle_timeout: None,
            last_now: 0,
            reaped: Vec::new(),
        }
    }

    /// Bounds the pending (batched + parked) envelopes admitted before
    /// deliveries nack [`ServerError::Busy`]. Values below 1 are
    /// treated as 1.
    pub fn set_max_pending(&mut self, max_pending: usize) {
        self.max_pending = max_pending.max(1);
    }

    /// Enables (or with `None` disables) idle-session reaping: sessions
    /// silent for longer than `timeout` virtual microseconds are
    /// evicted on the next tick. Reaping loses nothing — durable
    /// cursors make the reconnect grant resume exactly.
    pub fn set_idle_timeout(&mut self, timeout: Option<u64>) {
        self.idle_timeout = timeout;
    }

    /// Replaces the commit pipeline's retry/backoff tuning.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.pipeline.set_retry_policy(retry);
    }

    /// Connects (or reconnects) a source, returning its session and the
    /// durable resume point — the cursor the warehouse recovered or
    /// last acked. The session's liveness is stamped at the time of the
    /// last observed event; runtimes with a real clock should prefer
    /// [`ServerCore::connect_at`] so a connect on a long-quiet server
    /// is not instantly idle.
    pub fn connect(&mut self, source: SourceId) -> SessionGrant {
        let sequencing = self.pipeline.warehouse().ingestor().sequencing();
        self.sessions.connect_at(source, &sequencing, self.last_now)
    }

    /// [`ServerCore::connect`] at virtual time `now`: advances the
    /// core's event clock first, so the new session's idle window
    /// starts at the connect, not at the previous event.
    pub fn connect_at(&mut self, source: SourceId, now: u64) -> SessionGrant {
        self.last_now = self.last_now.max(now);
        self.connect(source)
    }

    /// Accepts one envelope from `session` at virtual time `now`.
    /// Returns the acks released by this event: empty while the
    /// envelope waits in the batcher (or parks under degradation), or
    /// one ack per batched envelope (across **all** sessions in the
    /// batch — route by [`Ack::session`]) when this push filled the
    /// batch and forced a group commit.
    ///
    /// Fault-model nacks, checked in order: unknown session / source
    /// mismatch (protocol errors), [`ServerError::ReadOnly`] when the
    /// pipeline has degraded past retrying, [`ServerError::Busy`] when
    /// pending admission is exhausted. A nacked envelope was **not**
    /// accepted; the source retransmits it later (sequencing makes the
    /// retry idempotent).
    pub fn deliver(
        &mut self,
        session: SessionId,
        envelope: Envelope,
        now: u64,
    ) -> Result<Vec<Ack>, ServerError> {
        let owner = self
            .sessions
            .source_of(session)
            .ok_or(ServerError::UnknownSession(session))?;
        if owner != &envelope.source {
            return Err(ServerError::SourceMismatch {
                session,
                expected: owner.clone(),
                got: envelope.source.clone(),
            });
        }
        self.last_now = self.last_now.max(now);
        self.sessions.touch(session, now);
        if let Health::ReadOnly { .. } = self.pipeline.health() {
            return Err(ServerError::ReadOnly { detail: self.read_only_detail() });
        }
        if self.batcher.len() + self.pipeline.parked_len() >= self.max_pending {
            return Err(ServerError::Busy { retry_after_micros: self.retry_after(now) });
        }
        self.stats.delivered += 1;
        match self.batcher.push(session, envelope, now) {
            Some(batch) => self.commit(batch, now),
            None => Ok(Vec::new()),
        }
    }

    /// Records a heartbeat from `session` at virtual time `now`,
    /// deferring its idle-timeout eviction. The `ping` protocol verb.
    pub fn ping(&mut self, session: SessionId, now: u64) -> Result<(), ServerError> {
        self.sessions
            .source_of(session)
            .ok_or(ServerError::UnknownSession(session))?;
        self.last_now = self.last_now.max(now);
        self.sessions.touch(session, now);
        Ok(())
    }

    /// Timer tick at virtual time `now`: commits the pending batch if
    /// its max-wait deadline has passed, runs the due degraded-mode
    /// retry or read-only heal probe (draining parked batches on
    /// success), and reaps idle sessions. The runtime must call this by
    /// [`ServerCore::next_deadline`] — sleeping past it with envelopes
    /// pending *or a retry scheduled* is the lost-wakeup bug the
    /// scheduler tests hunt.
    pub fn tick(&mut self, now: u64) -> Result<Vec<Ack>, ServerError> {
        self.last_now = self.last_now.max(now);
        let mut acks = match self.batcher.poll(now) {
            Some(batch) => self.commit(batch, now)?,
            None => Vec::new(),
        };
        // One epoch is published per drained batch, so the epoch delta
        // is the batch count this retry tick committed.
        let epoch_before = self.pipeline.epoch();
        let retried = self.pipeline.tick_retry(now);
        self.stats.batches_committed += self.pipeline.epoch() - epoch_before;
        self.stats.acks_minted += retried.len() as u64;
        acks.extend(retried);
        if let Some(timeout) = self.idle_timeout {
            let reaped = self.sessions.reap_idle(now, timeout);
            self.reaped.extend(reaped);
        }
        Ok(acks)
    }

    /// Commits whatever is pending regardless of deadlines (shutdown
    /// barrier). Under degradation the batch parks instead — shutting
    /// down then loses only unacked envelopes, which is the crash
    /// contract.
    pub fn flush(&mut self) -> Result<Vec<Ack>, ServerError> {
        match self.batcher.flush() {
            Some(batch) => {
                let now = self.last_now;
                self.commit(batch, now)
            }
            None => Ok(Vec::new()),
        }
    }

    /// When [`ServerCore::tick`] must next run: the earliest of the
    /// batcher's max-wait deadline, the pipeline's retry/probe deadline
    /// (so a failed commit re-arms the schedule instead of waiting for
    /// traffic), and the next idle-session expiry.
    pub fn next_deadline(&self) -> Option<u64> {
        let idle = match self.idle_timeout {
            Some(timeout) => self
                .sessions
                .oldest_last_seen()
                .map(|seen| seen.saturating_add(timeout).saturating_add(1)),
            None => None,
        };
        [self.batcher.next_deadline(), self.pipeline.retry_deadline(), idle]
            .into_iter()
            .flatten()
            .min()
    }

    /// Durable gap recovery for a session: replays its outbox slice
    /// through the warehouse and returns the single `Recovered` ack.
    /// Flushes any pending batch first so recovery observes every
    /// delivered envelope. Refused while unhealthy — recovery must not
    /// jump the queue of parked batches ([`ServerError::Busy`] while
    /// degraded, [`ServerError::ReadOnly`] past that).
    pub fn recover_source(
        &mut self,
        session: SessionId,
        log: &[Envelope],
    ) -> Result<Vec<Ack>, ServerError> {
        let source = self
            .sessions
            .source_of(session)
            .ok_or(ServerError::UnknownSession(session))?
            .clone();
        match self.pipeline.health() {
            Health::Healthy => {}
            Health::Degraded { .. } => {
                return Err(ServerError::Busy {
                    retry_after_micros: self.retry_after(self.last_now),
                });
            }
            Health::ReadOnly { .. } => {
                return Err(ServerError::ReadOnly { detail: self.read_only_detail() });
            }
        }
        self.sessions.touch(session, self.last_now);
        let mut acks = self.flush()?;
        let receipt = self.pipeline.recover_source(session, &source, log)?;
        self.stats.acks_minted += receipt.acks.len() as u64;
        acks.extend(receipt.acks);
        Ok(acks)
    }

    /// Sessions evicted by idle-timeout reaping since the last call
    /// (the runtime closes their connections; the sources reconnect
    /// into fresh grants).
    pub fn take_reaped(&mut self) -> Vec<(SessionId, SourceId)> {
        std::mem::take(&mut self.reaped)
    }

    /// The commit pipeline's health state.
    pub fn health(&self) -> Health {
        self.pipeline.health()
    }

    /// Envelopes applied but parked awaiting a retried commit.
    pub fn parked_len(&self) -> usize {
        self.pipeline.parked_len()
    }

    fn read_only_detail(&self) -> String {
        self.pipeline
            .last_error()
            .unwrap_or("storage degraded to read-only")
            .to_owned()
    }

    fn retry_after(&self, now: u64) -> u64 {
        match self.pipeline.retry_deadline() {
            Some(deadline) => deadline.saturating_sub(now).max(1),
            None => 1_000,
        }
    }

    /// A query handle decoupled from the commit loop: answers against
    /// published snapshot epochs only.
    pub fn query_client(&self) -> QueryClient {
        QueryClient {
            warehouse: self.pipeline.warehouse().ingestor().integrator().warehouse().clone(),
            reader: self.pipeline.reader(),
        }
    }

    /// A raw reader handle onto the published epochs.
    pub fn reader(&self) -> EpochReader {
        self.pipeline.reader()
    }

    /// The snapshot epoch readers currently observe.
    pub fn commit_epoch(&self) -> u64 {
        self.pipeline.epoch()
    }

    /// The server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The underlying durable store (read-only).
    pub fn warehouse(&self) -> &Store<M> {
        self.pipeline.warehouse()
    }

    /// Per-shard health (`None` when the store is unsharded) — the
    /// `stats` protocol verb's shard section.
    pub fn shard_health(&self) -> Option<Vec<crate::shard::ShardHealth>> {
        self.pipeline.warehouse().shard_health()
    }

    /// The number of durability shards (1 when unsharded).
    pub fn shards(&self) -> usize {
        self.pipeline.warehouse().shards()
    }

    /// The commit pipeline, for operator paths (quarantine triage,
    /// manual snapshots) that must republish after mutating.
    pub fn pipeline_mut(&mut self) -> &mut CommitPipeline<M> {
        &mut self.pipeline
    }

    fn commit(&mut self, batch: Vec<BatchItem>, now: u64) -> Result<Vec<Ack>, ServerError> {
        match self.pipeline.submit(batch, now)? {
            Submitted::Committed(receipt) => {
                self.stats.batches_committed += 1;
                self.stats.acks_minted += receipt.acks.len() as u64;
                Ok(receipt.acks)
            }
            // Parked: acks arrive from a later tick's retry drain.
            Submitted::Parked { .. } => Ok(Vec::new()),
            // Rejected whole (parked shard): nacked now, nothing durable.
            Submitted::Rejected(acks) => {
                self.stats.acks_minted += acks.len() as u64;
                Ok(acks)
            }
        }
    }
}

/// A read-side client: answers source queries against the latest
/// *published* snapshot epoch via the Theorem 3.1 query translation.
/// Cloneable and independent of the commit loop — a slow query holds an
/// `Arc` to an old epoch, never a lock the writer needs.
#[derive(Clone, Debug)]
pub struct QueryClient {
    warehouse: AugmentedWarehouse,
    reader: EpochReader,
}

impl QueryClient {
    /// Answers `q` against the current snapshot, returning the epoch it
    /// was evaluated at alongside the result.
    pub fn answer(&self, q: &RaExpr) -> Result<(u64, Relation), WarehouseError> {
        let snap = self.reader.load();
        let rel = self.warehouse.answer_at_warehouse(q, &snap.state)?;
        Ok((snap.epoch, rel))
    }

    /// The snapshot epoch a query issued now would observe.
    pub fn epoch(&self) -> u64 {
        self.reader.epoch()
    }

    /// The full current snapshot (epoch + immutable state).
    pub fn snapshot(&self) -> Arc<StateEpoch> {
        self.reader.load()
    }
}
