//! The warehouse server core: concurrent source sessions, epoch
//! snapshot reads, and group-committed durable ingestion.
//!
//! This module promotes [`DurableWarehouse`] from a library type into a
//! long-running multi-client service — as a **pure state machine**. All
//! concurrency policy lives here (sessions, batching deadlines, commit
//! ordering, ack minting); all actual threads, sockets and timers live
//! in the binary's runtime layer, which merely forwards events into
//! [`ServerCore`]. The payoff is testability: the deterministic
//! scheduler harness in `dwc-testkit::sched` drives the same core over
//! a simulated filesystem, so "reader observes a torn epoch", "ack sent
//! before fsync" and "lost wakeup in the batcher" are reproducible
//! single-seed failures instead of flaky thread races.
//!
//! ## Shape
//!
//! ```text
//!  sessions (many)          ServerCore (single writer)        readers (many)
//!  ───────────────          ─────────────────────────         ──────────────
//!  connect ───────────────▶ SessionManager ─ grant(resume)
//!  deliver(env) ──────────▶ Batcher ──full──▶ CommitPipeline
//!  tick(now) ─────────────▶ Batcher ──wait──▶   │ offer_batch (N frames, 1 fsync)
//!                                               │ publish epoch ───▶ EpochReader.load()
//!  acks ◀── per-session ◀───────────────────────┘ mint acks
//! ```
//!
//! * **Writes** enter via [`ServerCore::deliver`] and are grouped by
//!   the [`Batcher`] under a [`BatchPolicy`] (size cap + max wait). A
//!   released batch goes through [`CommitPipeline::commit`]: N WAL
//!   frames, **one** fsync, then epoch publication, then acks. A
//!   session is never acked before its envelope's fsync returned.
//! * **Reads** never enter the core at all: a [`QueryClient`] holds an
//!   [`EpochReader`] and answers against an immutable [`StateEpoch`]
//!   snapshot, so queries neither block nor observe half-applied
//!   batches.
//! * **Recovery**: after a restart, `Recovery::open` rebuilds the
//!   warehouse (including group-committed WAL frames) and
//!   [`ServerCore::connect`] hands every returning source its durable
//!   resume point, so sources replay exactly the unacked suffix.
//!
//! [`StateEpoch`]: dwc_relalg::StateEpoch

pub mod batch;
pub mod commit;
pub mod session;

pub use batch::{BatchItem, BatchPolicy, Batcher};
pub use commit::{Ack, AckOutcome, CommitPipeline, CommitReceipt};
pub use session::{SessionGrant, SessionId, SessionManager};

use crate::channel::{Envelope, SourceId};
use crate::error::WarehouseError;
use crate::spec::AugmentedWarehouse;
use crate::storage::{DurableWarehouse, StorageError, StorageMedium};
use dwc_relalg::{EpochReader, RaExpr, Relation, StateEpoch};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced to a server client (distinct from storage poisoning,
/// which fails every later commit).
#[derive(Clone, Debug, PartialEq)]
pub enum ServerError {
    /// The session handle was never granted by this server.
    UnknownSession(SessionId),
    /// The envelope names a different source than the session owns.
    SourceMismatch {
        /// The session that delivered the envelope.
        session: SessionId,
        /// The source the session was granted for.
        expected: SourceId,
        /// The source the envelope claimed.
        got: SourceId,
    },
    /// The commit path failed durably; the warehouse is poisoned.
    Storage(StorageError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownSession(s) => write!(f, "unknown session {s}"),
            ServerError::SourceMismatch { session, expected, got } => write!(
                f,
                "session {session} owns source {expected:?} but delivered for {got:?}"
            ),
            ServerError::Storage(e) => write!(f, "storage failure: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<StorageError> for ServerError {
    fn from(e: StorageError) -> ServerError {
        ServerError::Storage(e)
    }
}

/// Server-side counters, for the `stats` protocol verb and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Envelopes accepted into the batcher.
    pub delivered: u64,
    /// Batches durably committed (== group fsyncs from this path).
    pub batches_committed: u64,
    /// Acks minted across all commits and recoveries.
    pub acks_minted: u64,
}

/// The single-writer server state machine: session table + batcher +
/// commit pipeline. The runtime owns exactly one and feeds it events;
/// everything here is deterministic given the event sequence and the
/// virtual clock values passed in.
#[derive(Debug)]
pub struct ServerCore<M: StorageMedium> {
    sessions: SessionManager,
    batcher: Batcher,
    pipeline: CommitPipeline<M>,
    stats: ServerStats,
}

impl<M: StorageMedium> ServerCore<M> {
    /// A server over `warehouse` (fresh or recovered) batching under
    /// `policy`.
    pub fn new(warehouse: DurableWarehouse<M>, policy: BatchPolicy) -> ServerCore<M> {
        ServerCore {
            sessions: SessionManager::new(),
            batcher: Batcher::new(policy),
            pipeline: CommitPipeline::new(warehouse),
            stats: ServerStats::default(),
        }
    }

    /// Connects (or reconnects) a source, returning its session and the
    /// durable resume point — the cursor the warehouse recovered or
    /// last acked.
    pub fn connect(&mut self, source: SourceId) -> SessionGrant {
        let sequencing = self.pipeline.warehouse().ingestor().sequencing();
        self.sessions.connect(source, &sequencing)
    }

    /// Accepts one envelope from `session` at virtual time `now`.
    /// Returns the acks released by this event: empty while the
    /// envelope waits in the batcher, or one ack per batched envelope
    /// (across **all** sessions in the batch — route by
    /// [`Ack::session`]) when this push filled the batch and forced a
    /// group commit.
    pub fn deliver(
        &mut self,
        session: SessionId,
        envelope: Envelope,
        now: u64,
    ) -> Result<Vec<Ack>, ServerError> {
        let owner = self
            .sessions
            .source_of(session)
            .ok_or(ServerError::UnknownSession(session))?;
        if owner != &envelope.source {
            return Err(ServerError::SourceMismatch {
                session,
                expected: owner.clone(),
                got: envelope.source.clone(),
            });
        }
        self.stats.delivered += 1;
        match self.batcher.push(session, envelope, now) {
            Some(batch) => self.commit(batch),
            None => Ok(Vec::new()),
        }
    }

    /// Timer tick at virtual time `now`: commits the pending batch if
    /// its max-wait deadline has passed. The runtime must call this by
    /// [`ServerCore::next_deadline`] — sleeping past it with envelopes
    /// pending is the lost-wakeup bug the scheduler tests hunt.
    pub fn tick(&mut self, now: u64) -> Result<Vec<Ack>, ServerError> {
        match self.batcher.poll(now) {
            Some(batch) => self.commit(batch),
            None => Ok(Vec::new()),
        }
    }

    /// Commits whatever is pending regardless of deadlines (shutdown
    /// barrier).
    pub fn flush(&mut self) -> Result<Vec<Ack>, ServerError> {
        match self.batcher.flush() {
            Some(batch) => self.commit(batch),
            None => Ok(Vec::new()),
        }
    }

    /// When [`ServerCore::tick`] must next run; `Some` exactly when
    /// envelopes are pending.
    pub fn next_deadline(&self) -> Option<u64> {
        self.batcher.next_deadline()
    }

    /// Durable gap recovery for a session: replays its outbox slice
    /// through the warehouse and returns the single `Recovered` ack.
    /// Flushes any pending batch first so recovery observes every
    /// delivered envelope.
    pub fn recover_source(
        &mut self,
        session: SessionId,
        log: &[Envelope],
    ) -> Result<Vec<Ack>, ServerError> {
        let source = self
            .sessions
            .source_of(session)
            .ok_or(ServerError::UnknownSession(session))?
            .clone();
        let mut acks = self.flush()?;
        let receipt = self.pipeline.recover_source(session, &source, log)?;
        self.stats.acks_minted += receipt.acks.len() as u64;
        acks.extend(receipt.acks);
        Ok(acks)
    }

    /// A query handle decoupled from the commit loop: answers against
    /// published snapshot epochs only.
    pub fn query_client(&self) -> QueryClient {
        QueryClient {
            warehouse: self.pipeline.warehouse().ingestor().integrator().warehouse().clone(),
            reader: self.pipeline.reader(),
        }
    }

    /// A raw reader handle onto the published epochs.
    pub fn reader(&self) -> EpochReader {
        self.pipeline.reader()
    }

    /// The snapshot epoch readers currently observe.
    pub fn commit_epoch(&self) -> u64 {
        self.pipeline.epoch()
    }

    /// The server counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The underlying durable warehouse (read-only).
    pub fn warehouse(&self) -> &DurableWarehouse<M> {
        self.pipeline.warehouse()
    }

    /// The commit pipeline, for operator paths (quarantine triage,
    /// manual snapshots) that must republish after mutating.
    pub fn pipeline_mut(&mut self) -> &mut CommitPipeline<M> {
        &mut self.pipeline
    }

    fn commit(&mut self, batch: Vec<BatchItem>) -> Result<Vec<Ack>, ServerError> {
        let receipt = self.pipeline.commit(batch)?;
        self.stats.batches_committed += 1;
        self.stats.acks_minted += receipt.acks.len() as u64;
        Ok(receipt.acks)
    }
}

/// A read-side client: answers source queries against the latest
/// *published* snapshot epoch via the Theorem 3.1 query translation.
/// Cloneable and independent of the commit loop — a slow query holds an
/// `Arc` to an old epoch, never a lock the writer needs.
#[derive(Clone, Debug)]
pub struct QueryClient {
    warehouse: AugmentedWarehouse,
    reader: EpochReader,
}

impl QueryClient {
    /// Answers `q` against the current snapshot, returning the epoch it
    /// was evaluated at alongside the result.
    pub fn answer(&self, q: &RaExpr) -> Result<(u64, Relation), WarehouseError> {
        let snap = self.reader.load();
        let rel = self.warehouse.answer_at_warehouse(q, &snap.state)?;
        Ok((snap.epoch, rel))
    }

    /// The snapshot epoch a query issued now would observe.
    pub fn epoch(&self) -> u64 {
        self.reader.epoch()
    }

    /// The full current snapshot (epoch + immutable state).
    pub fn snapshot(&self) -> Arc<StateEpoch> {
        self.reader.load()
    }
}
