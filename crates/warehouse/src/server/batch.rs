//! Group-commit batching: accumulate envelopes from many sessions and
//! release them as one durable batch.
//!
//! The batcher is a pure state machine over a virtual clock — no
//! threads, no timers. The runtime (or the deterministic test harness)
//! drives it with three calls:
//!
//! * [`Batcher::push`] when an envelope arrives — returns a full batch
//!   the moment the size cap is hit;
//! * [`Batcher::poll`] on a timer tick — returns the pending batch once
//!   the oldest queued envelope has waited past the policy deadline;
//! * [`Batcher::next_deadline`] to learn *when* that tick must happen.
//!
//! The deadline is derived from the arrival time of the **oldest**
//! pending envelope, not the newest: a steady trickle of writes cannot
//! postpone the flush forever. The "lost wakeup" failure class — the
//! runtime sleeps with envelopes pending and no deadline armed — is
//! structurally impossible to miss in tests, because `next_deadline`
//! returns `Some` exactly when `pending` is non-empty, and the
//! scheduler suites assert that invariant under seeded interleavings.
//!
//! A released batch leaves the batcher *before* its commit runs, so a
//! commit failure cannot re-arm a deadline here — the batcher is empty
//! and `next_deadline` is `None`. Deadline continuity across failed
//! commits is the commit pipeline's job: a retryably-failed batch parks
//! there and `CommitPipeline::retry_deadline` feeds the server's
//! `next_deadline`, so the wakeup chain never drops (regression-tested
//! in the fault suite).

use crate::channel::Envelope;
use crate::server::session::SessionId;

/// When the batcher releases a pending group for commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Release as soon as this many envelopes are pending. `1` degrades
    /// group commit to one fsync per envelope.
    pub max_batch: usize,
    /// Release once the oldest pending envelope has waited this many
    /// virtual microseconds, even if the batch is not full.
    pub max_wait_micros: u64,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy { max_batch: 64, max_wait_micros: 2_000 }
    }
}

impl BatchPolicy {
    /// A policy with the given size cap and the default max wait.
    pub fn with_max_batch(max_batch: usize) -> BatchPolicy {
        BatchPolicy { max_batch: max_batch.max(1), ..BatchPolicy::default() }
    }
}

/// One queued write: the envelope plus the session that must be acked
/// after the batch's fsync.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchItem {
    /// The session awaiting the ack.
    pub session: SessionId,
    /// The envelope to offer and log.
    pub envelope: Envelope,
}

/// The group-commit accumulator. See the module docs for the driving
/// protocol.
#[derive(Clone, Debug)]
pub struct Batcher {
    policy: BatchPolicy,
    pending: Vec<BatchItem>,
    oldest_at_micros: u64,
}

impl Batcher {
    /// An empty batcher under `policy` (a zero `max_batch` is clamped
    /// to 1).
    pub fn new(mut policy: BatchPolicy) -> Batcher {
        policy.max_batch = policy.max_batch.max(1);
        Batcher { policy, pending: Vec::new(), oldest_at_micros: 0 }
    }

    /// The policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Number of envelopes waiting for the next commit.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Queues one envelope at virtual time `now`. Returns the full
    /// batch when the size cap is reached; otherwise the envelope waits
    /// for [`poll`](Batcher::poll) or more pushes.
    pub fn push(
        &mut self,
        session: SessionId,
        envelope: Envelope,
        now: u64,
    ) -> Option<Vec<BatchItem>> {
        if self.pending.is_empty() {
            self.oldest_at_micros = now;
        }
        self.pending.push(BatchItem { session, envelope });
        if self.pending.len() >= self.policy.max_batch {
            self.take()
        } else {
            None
        }
    }

    /// Releases the pending batch if the oldest envelope's deadline has
    /// passed at virtual time `now`.
    pub fn poll(&mut self, now: u64) -> Option<Vec<BatchItem>> {
        match self.next_deadline() {
            Some(deadline) if now >= deadline => self.take(),
            _ => None,
        }
    }

    /// Releases whatever is pending regardless of deadlines (shutdown,
    /// test barriers).
    pub fn flush(&mut self) -> Option<Vec<BatchItem>> {
        self.take()
    }

    /// The virtual time by which [`poll`](Batcher::poll) must be called;
    /// `Some` exactly when envelopes are pending. A runtime that sleeps
    /// past this deadline without polling has lost a wakeup.
    pub fn next_deadline(&self) -> Option<u64> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.oldest_at_micros.saturating_add(self.policy.max_wait_micros))
        }
    }

    fn take(&mut self) -> Option<Vec<BatchItem>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.pending))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::SourceId;
    use dwc_relalg::Update;

    fn env(seq: u64) -> Envelope {
        Envelope { source: SourceId::new("s"), epoch: 1, seq, report: Update::new() }
    }

    #[test]
    fn size_cap_releases_exactly_at_max_batch() {
        let mut b = Batcher::new(BatchPolicy { max_batch: 3, max_wait_micros: 1_000 });
        assert!(b.push(SessionId::raw_for_tests(1), env(0), 0).is_none());
        assert!(b.push(SessionId::raw_for_tests(1), env(1), 1).is_none());
        let batch = b.push(SessionId::raw_for_tests(2), env(0), 2).expect("full");
        assert_eq!(batch.len(), 3);
        assert!(b.is_empty());
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn deadline_tracks_the_oldest_envelope() {
        let mut b = Batcher::new(BatchPolicy { max_batch: 100, max_wait_micros: 50 });
        assert_eq!(b.next_deadline(), None);
        b.push(SessionId::raw_for_tests(1), env(0), 10);
        // A later push must NOT extend the deadline.
        b.push(SessionId::raw_for_tests(1), env(1), 40);
        assert_eq!(b.next_deadline(), Some(60));
        assert!(b.poll(59).is_none());
        let batch = b.poll(60).expect("deadline hit");
        assert_eq!(batch.len(), 2);
        assert!(b.poll(1_000).is_none(), "nothing pending, nothing released");
    }

    #[test]
    fn flush_drains_and_zero_max_batch_is_clamped() {
        let mut b = Batcher::new(BatchPolicy { max_batch: 0, max_wait_micros: 10 });
        let batch = b.push(SessionId::raw_for_tests(1), env(0), 0).expect("clamped to 1");
        assert_eq!(batch.len(), 1);
        assert!(b.flush().is_none(), "nothing pending after a self-released batch");

        let mut b = Batcher::new(BatchPolicy { max_batch: 8, max_wait_micros: 10 });
        assert!(b.push(SessionId::raw_for_tests(1), env(1), 0).is_none());
        assert_eq!(b.flush().map(|v| v.len()), Some(1));
        assert!(b.is_empty());
    }
}
