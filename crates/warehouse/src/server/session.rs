//! Session management: one session per connected source, with resume
//! points derived from the ingestion cursors.
//!
//! A session is the server-side identity of one [`SequencedSource`]
//! connection. Connecting (or *re*connecting) a source yields a
//! [`SessionGrant`] telling the client exactly where to resume — the
//! cursor epoch and next expected sequence number the warehouse has
//! durably acknowledged. After a crash the grant is computed from the
//! recovered cursors, so a client that replays its outbox from
//! `resume_seq` onward loses nothing and duplicates nothing (replays
//! below the cursor ack as `Duplicate`).
//!
//! [`SequencedSource`]: crate::channel::SequencedSource

use std::collections::BTreeMap;
use std::fmt;

use crate::channel::SourceId;
use crate::ingest::SequencingStatus;

/// An opaque server-assigned session handle. Stable across reconnects
/// of the same source within one server lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The numeric handle (for protocol rendering and logs).
    pub fn index(&self) -> u64 {
        self.0
    }

    /// Constructs a session id out of thin air — test fixtures only;
    /// real ids are minted by [`SessionManager::connect`].
    pub fn raw_for_tests(id: u64) -> SessionId {
        SessionId(id)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What a connecting source is told: its session handle and the resume
/// point the warehouse expects it to continue from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionGrant {
    /// The session handle to present with every envelope.
    pub session: SessionId,
    /// The source this session speaks for.
    pub source: SourceId,
    /// The cursor epoch the warehouse is at for this source.
    pub epoch: u64,
    /// The next in-order sequence number the warehouse expects.
    pub resume_seq: u64,
}

/// The session table: source ↔ session bijection plus grant minting
/// and idle-session reaping.
///
/// Liveness tracking is heartbeat-based: every deliver or explicit ping
/// [`touch`]es the session's `last_seen`, and [`reap_idle`] evicts
/// sessions silent past a timeout. Reaping is safe *because resume is
/// durable*: the sequencing cursors survive in the warehouse, so a
/// reaped source reconnects into a fresh session whose grant resumes
/// exactly where the old one durably left off — nothing acked is lost,
/// nothing is double-applied.
///
/// [`touch`]: SessionManager::touch
/// [`reap_idle`]: SessionManager::reap_idle
#[derive(Clone, Debug, Default)]
pub struct SessionManager {
    next_id: u64,
    by_source: BTreeMap<SourceId, SessionId>,
    by_session: BTreeMap<SessionId, SourceId>,
    last_seen: BTreeMap<SessionId, u64>,
}

impl SessionManager {
    /// An empty table.
    pub fn new() -> SessionManager {
        SessionManager::default()
    }

    /// Connects (or reconnects) `source`, minting a session on first
    /// contact and reusing it thereafter. The resume point is read from
    /// `sequencing` — the live cursor report of the ingesting
    /// integrator — and defaults to epoch 0 / seq 0 for a source the
    /// warehouse has never heard from.
    pub fn connect(&mut self, source: SourceId, sequencing: &[SequencingStatus]) -> SessionGrant {
        let session = match self.by_source.get(&source) {
            Some(&existing) => existing,
            None => {
                self.next_id += 1;
                let minted = SessionId(self.next_id);
                self.by_source.insert(source.clone(), minted);
                self.by_session.insert(minted, source.clone());
                self.last_seen.insert(minted, 0);
                minted
            }
        };
        let (epoch, resume_seq) = sequencing
            .iter()
            .find(|s| s.source == source)
            .map(|s| (s.epoch, s.next_seq))
            .unwrap_or((0, 0));
        SessionGrant { session, source, epoch, resume_seq }
    }

    /// [`SessionManager::connect`] with a liveness stamp: the grant's
    /// session is touched at `now`, so a just-connected session is
    /// never instantly idle.
    pub fn connect_at(
        &mut self,
        source: SourceId,
        sequencing: &[SequencingStatus],
        now: u64,
    ) -> SessionGrant {
        let grant = self.connect(source, sequencing);
        self.touch(grant.session, now);
        grant
    }

    /// The source bound to `session`, if the session exists.
    pub fn source_of(&self, session: SessionId) -> Option<&SourceId> {
        self.by_session.get(&session)
    }

    /// The session bound to `source`, if it has connected.
    pub fn session_for(&self, source: &SourceId) -> Option<SessionId> {
        self.by_source.get(source).copied()
    }

    /// Number of distinct sources that have connected.
    pub fn len(&self) -> usize {
        self.by_source.len()
    }

    /// Whether no source has connected yet.
    pub fn is_empty(&self) -> bool {
        self.by_source.is_empty()
    }

    /// Records a sign of life from `session` at virtual time `now`
    /// (any deliver, ping, or recover counts).
    pub fn touch(&mut self, session: SessionId, now: u64) {
        if let Some(seen) = self.last_seen.get_mut(&session) {
            *seen = (*seen).max(now);
        }
    }

    /// The earliest `last_seen` across live sessions — the time the
    /// next idle deadline is measured from.
    pub fn oldest_last_seen(&self) -> Option<u64> {
        self.last_seen.values().copied().min()
    }

    /// Evicts every session silent for longer than `timeout` before
    /// `now`, returning the evicted `(session, source)` pairs. A reaped
    /// source reconnects into a *new* session id; the durable cursors
    /// make the new grant resume losslessly.
    pub fn reap_idle(&mut self, now: u64, timeout: u64) -> Vec<(SessionId, SourceId)> {
        let dead: Vec<SessionId> = self
            .last_seen
            .iter()
            .filter(|(_, &seen)| now.saturating_sub(seen) > timeout)
            .map(|(&session, _)| session)
            .collect();
        let mut reaped = Vec::with_capacity(dead.len());
        for session in dead {
            self.last_seen.remove(&session);
            if let Some(source) = self.by_session.remove(&session) {
                self.by_source.remove(&source);
                reaped.push((session, source));
            }
        }
        reaped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(source: &str, epoch: u64, next_seq: u64) -> SequencingStatus {
        SequencingStatus {
            source: SourceId::new(source),
            epoch,
            next_seq,
            parked: Vec::new(),
        }
    }

    #[test]
    fn connect_mints_distinct_sessions_and_reconnect_reuses_them() {
        let mut m = SessionManager::new();
        let a = m.connect(SourceId::new("a"), &[]);
        let b = m.connect(SourceId::new("b"), &[]);
        assert_ne!(a.session, b.session);
        assert_eq!(a.epoch, 0);
        assert_eq!(a.resume_seq, 0);

        let a2 = m.connect(SourceId::new("a"), &[status("a", 3, 17)]);
        assert_eq!(a2.session, a.session, "reconnect keeps the session");
        assert_eq!((a2.epoch, a2.resume_seq), (3, 17), "grant reflects the cursor");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn lookups_are_a_bijection() {
        let mut m = SessionManager::new();
        let g = m.connect(SourceId::new("src"), &[]);
        assert_eq!(m.source_of(g.session), Some(&SourceId::new("src")));
        assert_eq!(m.session_for(&SourceId::new("src")), Some(g.session));
        assert_eq!(m.source_of(SessionId::raw_for_tests(999)), None);
        assert_eq!(m.session_for(&SourceId::new("ghost")), None);
    }
}
