//! Session management: one session per connected source, with resume
//! points derived from the ingestion cursors.
//!
//! A session is the server-side identity of one [`SequencedSource`]
//! connection. Connecting (or *re*connecting) a source yields a
//! [`SessionGrant`] telling the client exactly where to resume — the
//! cursor epoch and next expected sequence number the warehouse has
//! durably acknowledged. After a crash the grant is computed from the
//! recovered cursors, so a client that replays its outbox from
//! `resume_seq` onward loses nothing and duplicates nothing (replays
//! below the cursor ack as `Duplicate`).
//!
//! [`SequencedSource`]: crate::channel::SequencedSource

use std::collections::BTreeMap;
use std::fmt;

use crate::channel::SourceId;
use crate::ingest::SequencingStatus;

/// An opaque server-assigned session handle. Stable across reconnects
/// of the same source within one server lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The numeric handle (for protocol rendering and logs).
    pub fn index(&self) -> u64 {
        self.0
    }

    /// Constructs a session id out of thin air — test fixtures only;
    /// real ids are minted by [`SessionManager::connect`].
    pub fn raw_for_tests(id: u64) -> SessionId {
        SessionId(id)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What a connecting source is told: its session handle and the resume
/// point the warehouse expects it to continue from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionGrant {
    /// The session handle to present with every envelope.
    pub session: SessionId,
    /// The source this session speaks for.
    pub source: SourceId,
    /// The cursor epoch the warehouse is at for this source.
    pub epoch: u64,
    /// The next in-order sequence number the warehouse expects.
    pub resume_seq: u64,
}

/// The session table: source ↔ session bijection plus grant minting.
#[derive(Clone, Debug, Default)]
pub struct SessionManager {
    next_id: u64,
    by_source: BTreeMap<SourceId, SessionId>,
    by_session: BTreeMap<SessionId, SourceId>,
}

impl SessionManager {
    /// An empty table.
    pub fn new() -> SessionManager {
        SessionManager::default()
    }

    /// Connects (or reconnects) `source`, minting a session on first
    /// contact and reusing it thereafter. The resume point is read from
    /// `sequencing` — the live cursor report of the ingesting
    /// integrator — and defaults to epoch 0 / seq 0 for a source the
    /// warehouse has never heard from.
    pub fn connect(&mut self, source: SourceId, sequencing: &[SequencingStatus]) -> SessionGrant {
        let session = match self.by_source.get(&source) {
            Some(&existing) => existing,
            None => {
                self.next_id += 1;
                let minted = SessionId(self.next_id);
                self.by_source.insert(source.clone(), minted);
                self.by_session.insert(minted, source.clone());
                minted
            }
        };
        let (epoch, resume_seq) = sequencing
            .iter()
            .find(|s| s.source == source)
            .map(|s| (s.epoch, s.next_seq))
            .unwrap_or((0, 0));
        SessionGrant { session, source, epoch, resume_seq }
    }

    /// The source bound to `session`, if the session exists.
    pub fn source_of(&self, session: SessionId) -> Option<&SourceId> {
        self.by_session.get(&session)
    }

    /// The session bound to `source`, if it has connected.
    pub fn session_for(&self, source: &SourceId) -> Option<SessionId> {
        self.by_source.get(source).copied()
    }

    /// Number of distinct sources that have connected.
    pub fn len(&self) -> usize {
        self.by_source.len()
    }

    /// Whether no source has connected yet.
    pub fn is_empty(&self) -> bool {
        self.by_source.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(source: &str, epoch: u64, next_seq: u64) -> SequencingStatus {
        SequencingStatus {
            source: SourceId::new(source),
            epoch,
            next_seq,
            parked: Vec::new(),
        }
    }

    #[test]
    fn connect_mints_distinct_sessions_and_reconnect_reuses_them() {
        let mut m = SessionManager::new();
        let a = m.connect(SourceId::new("a"), &[]);
        let b = m.connect(SourceId::new("b"), &[]);
        assert_ne!(a.session, b.session);
        assert_eq!(a.epoch, 0);
        assert_eq!(a.resume_seq, 0);

        let a2 = m.connect(SourceId::new("a"), &[status("a", 3, 17)]);
        assert_eq!(a2.session, a.session, "reconnect keeps the session");
        assert_eq!((a2.epoch, a2.resume_seq), (3, 17), "grant reflects the cursor");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn lookups_are_a_bijection() {
        let mut m = SessionManager::new();
        let g = m.connect(SourceId::new("src"), &[]);
        assert_eq!(m.source_of(g.session), Some(&SourceId::new("src")));
        assert_eq!(m.session_for(&SourceId::new("src")), Some(g.session));
        assert_eq!(m.source_of(SessionId::raw_for_tests(999)), None);
        assert_eq!(m.session_for(&SourceId::new("ghost")), None);
    }
}
