//! The commit pipeline: the single place where batches become durable,
//! epochs are published, and acks are minted.
//!
//! Concentrating the fsync → publish → ack sequence in one module is a
//! correctness device, not just tidiness. The server's durability
//! contract — *a session never sees an ack for an envelope that could
//! be lost in a crash* — holds iff acks are constructed only after
//! [`DurableWarehouse::offer_batch`] returns, i.e. after the batch's
//! group fsync. The workspace lint enforces the shape: `Ack::new` may
//! appear only in this file (rule S505), so no other module can
//! fabricate an ack ahead of durability, and `.sync(` calls inside the
//! warehouse crate stay confined to the storage layer.
//!
//! The pipeline also owns the [`EpochCell`]: after every commit the new
//! warehouse state is published as an immutable snapshot epoch, which
//! readers load via cheap `Arc` clones without ever blocking ingestion.

use crate::channel::{Envelope, SourceId};
use crate::ingest::IngestOutcome;
use crate::server::batch::BatchItem;
use crate::server::session::SessionId;
use crate::storage::{DurableWarehouse, StorageError, StorageMedium};
use dwc_relalg::{EpochCell, EpochReader};
use std::fmt;

/// The per-envelope result a session is told after its batch's fsync.
/// A rendered, `'static`-friendly projection of [`IngestOutcome`]
/// (errors carry their display text, not the typed error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AckOutcome {
    /// Applied in sequence (count includes drained parked successors).
    Applied(usize),
    /// Already durably applied — idempotent replay.
    Duplicate,
    /// Parked out of order in the reorder window.
    Buffered,
    /// Rejected into quarantine; the text is the typed error rendered.
    Quarantined(String),
    /// The gap cannot fill from the stream; the session must replay its
    /// outbox (`recover` in the line protocol).
    NeedsRecovery(String),
    /// A gap-recovery request completed, applying this many envelopes.
    Recovered(usize),
}

impl AckOutcome {
    /// Projects an ingestion outcome into its ack form.
    pub fn from_ingest(outcome: &IngestOutcome) -> AckOutcome {
        match outcome {
            IngestOutcome::Applied(n) => AckOutcome::Applied(*n),
            IngestOutcome::Duplicate => AckOutcome::Duplicate,
            IngestOutcome::Buffered => AckOutcome::Buffered,
            IngestOutcome::Quarantined(e) => AckOutcome::Quarantined(e.to_string()),
            IngestOutcome::NeedsRecovery(e) => AckOutcome::NeedsRecovery(e.to_string()),
        }
    }

    /// Whether the envelope (or recovery) is durably reflected in the
    /// warehouse state.
    pub fn is_durable(&self) -> bool {
        matches!(
            self,
            AckOutcome::Applied(_) | AckOutcome::Duplicate | AckOutcome::Recovered(_)
        )
    }
}

impl fmt::Display for AckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AckOutcome::Applied(n) => write!(f, "applied {n}"),
            AckOutcome::Duplicate => write!(f, "duplicate"),
            AckOutcome::Buffered => write!(f, "buffered"),
            AckOutcome::Quarantined(e) => write!(f, "quarantined {e}"),
            AckOutcome::NeedsRecovery(e) => write!(f, "needs-recovery {e}"),
            AckOutcome::Recovered(n) => write!(f, "recovered {n}"),
        }
    }
}

/// A durable acknowledgment: sent to `session` only after the fsync
/// covering its envelope returned. Constructed exclusively by the
/// commit pipeline (lint rule S505).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ack {
    /// The session to notify.
    pub session: SessionId,
    /// The source the envelope belonged to.
    pub source: SourceId,
    /// The envelope's source epoch.
    pub epoch: u64,
    /// The envelope's sequence number.
    pub seq: u64,
    /// What happened to it.
    pub outcome: AckOutcome,
}

impl Ack {
    fn new(session: SessionId, source: SourceId, epoch: u64, seq: u64, outcome: AckOutcome) -> Ack {
        Ack { session, source, epoch, seq, outcome }
    }
}

/// What one group commit produced: the published snapshot epoch and the
/// per-envelope acks, in batch order.
#[derive(Clone, Debug)]
pub struct CommitReceipt {
    /// The snapshot epoch readers observe from this commit onward.
    pub epoch: u64,
    /// One ack per batched envelope, in arrival order.
    pub acks: Vec<Ack>,
}

/// The single-writer commit loop state: the durable warehouse plus the
/// epoch cell readers subscribe to.
#[derive(Debug)]
pub struct CommitPipeline<M: StorageMedium> {
    warehouse: DurableWarehouse<M>,
    epochs: EpochCell,
}

impl<M: StorageMedium> CommitPipeline<M> {
    /// Wraps a durable warehouse, seeding epoch 1 with its current
    /// state (freshly created or just recovered).
    pub fn new(warehouse: DurableWarehouse<M>) -> CommitPipeline<M> {
        let epochs = EpochCell::new(warehouse.state().clone());
        CommitPipeline { warehouse, epochs }
    }

    /// Commits one batch: offers every envelope, fsyncs once, publishes
    /// the post-batch state as a new snapshot epoch, and only then
    /// mints the acks. On storage error nothing is acked (and the
    /// warehouse poisons itself, failing all later commits).
    pub fn commit(&mut self, batch: Vec<BatchItem>) -> Result<CommitReceipt, StorageError> {
        let envelopes: Vec<Envelope> = batch.iter().map(|item| item.envelope.clone()).collect();
        let outcomes = self.warehouse.offer_batch(&envelopes)?;
        let epoch = self.epochs.publish(self.warehouse.state().clone());
        let acks = batch
            .into_iter()
            .zip(outcomes)
            .map(|(item, outcome)| {
                Ack::new(
                    item.session,
                    item.envelope.source,
                    item.envelope.epoch,
                    item.envelope.seq,
                    AckOutcome::from_ingest(&outcome),
                )
            })
            .collect();
        Ok(CommitReceipt { epoch, acks })
    }

    /// Runs durable gap recovery from a session's replayed outbox and
    /// publishes the repaired state. The single ack reports the
    /// post-recovery cursor position.
    pub fn recover_source(
        &mut self,
        session: SessionId,
        source: &SourceId,
        log: &[Envelope],
    ) -> Result<CommitReceipt, StorageError> {
        let applied = self.warehouse.recover_from_log(source, log)?;
        let epoch = self.epochs.publish(self.warehouse.state().clone());
        let (cursor_epoch, next_seq) = self
            .warehouse
            .ingestor()
            .sequencing()
            .into_iter()
            .find(|s| &s.source == source)
            .map(|s| (s.epoch, s.next_seq))
            .unwrap_or((0, 0));
        let ack = Ack::new(
            session,
            source.clone(),
            cursor_epoch,
            next_seq,
            AckOutcome::Recovered(applied),
        );
        Ok(CommitReceipt { epoch, acks: vec![ack] })
    }

    /// A reader handle onto the published snapshot epochs. Clones are
    /// cheap; loads never block the commit loop.
    pub fn reader(&self) -> EpochReader {
        self.epochs.reader()
    }

    /// The snapshot epoch readers currently observe.
    pub fn epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    /// The wrapped durable warehouse (read-only).
    pub fn warehouse(&self) -> &DurableWarehouse<M> {
        &self.warehouse
    }

    /// Mutable access for operator paths (snapshot, quarantine
    /// triage). Callers must republish via [`CommitPipeline::publish`]
    /// if they change the state.
    pub fn warehouse_mut(&mut self) -> &mut DurableWarehouse<M> {
        &mut self.warehouse
    }

    /// Publishes the current warehouse state as a fresh snapshot epoch
    /// (after an operator mutation through
    /// [`CommitPipeline::warehouse_mut`]).
    pub fn publish(&mut self) -> u64 {
        self.epochs.publish(self.warehouse.state().clone())
    }
}
