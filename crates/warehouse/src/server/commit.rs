//! The commit pipeline: the single place where batches become durable,
//! epochs are published, and acks are minted.
//!
//! Concentrating the fsync → publish → ack sequence in one module is a
//! correctness device, not just tidiness. The server's durability
//! contract — *a session never sees an ack for an envelope that could
//! be lost in a crash* — holds iff acks are constructed only after
//! [`DurableWarehouse::offer_batch`] returns, i.e. after the batch's
//! group fsync. The workspace lint enforces the shape: `Ack::new` may
//! appear only in this file (rule S505), so no other module can
//! fabricate an ack ahead of durability, and `.sync(` calls inside the
//! warehouse crate stay confined to the storage layer.
//!
//! The pipeline also owns the [`EpochCell`]: after every commit the new
//! warehouse state is published as an immutable snapshot epoch, which
//! readers load via cheap `Arc` clones without ever blocking ingestion.
//!
//! ## The health state machine
//!
//! A fallible medium turns "commit the batch" into a *state machine*:
//!
//! ```text
//!            retryable failure                 budget exhausted /
//!            (DWC-S002)                        fatal failure
//! Healthy ─────────────────▶ Degraded ─────────────────▶ ReadOnly
//!    ▲                          │   ▲                        │
//!    │   backoff retry heals    │   │ another retryable      │ probe
//!    │   and drains parked      │   │ failure: attempts+1,   │ heals
//!    └──────────────────────────┘   │ backoff doubles        │
//!    ▲                              └────────────────────────┘
//!    └── (a poisoned warehouse keeps failing probes: ReadOnly is
//!         then permanent until restart + recovery)
//! ```
//!
//! Invariants, in every state:
//!
//! * **Never acked early** — acks are minted only after a successful
//!   [`DurableWarehouse::commit_applied`]; a parked batch has no acks.
//! * **Never lost** — a parked batch stays queued (and its in-memory
//!   application stays in the warehouse's unlogged queue) until a
//!   retry commits it or the process dies; dying loses only unacked
//!   envelopes, which is exactly the crash contract.
//! * **Readers keep serving** — epochs are published only on commit
//!   success, so a degraded pipeline leaves the last published epoch
//!   intact for every reader.

use crate::channel::{Envelope, SourceId};
use crate::ingest::{DiscardedEntry, IngestOutcome, IngestingIntegrator};
use crate::planner::AdaptivePolicy;
use crate::server::batch::BatchItem;
use crate::server::session::SessionId;
use crate::shard::{ShardHealth, ShardedDurableWarehouse};
use crate::storage::{DurableWarehouse, StorageError, StorageMedium, StorageStats};
use dwc_relalg::{EpochCell, EpochReader};
use std::fmt;

/// The pipeline's durable backend: one WAL lineage, or key-range
/// shards with per-shard lineages ([`ShardedDurableWarehouse`]). The
/// commit pipeline is backend-agnostic except for one fault class —
/// [`StorageError::ShardUnavailable`] — which rejects the offending
/// batch (rolled back, nacked) instead of degrading the pipeline:
/// every other key range keeps committing.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one Store per server; boxing buys nothing
pub enum Store<M: StorageMedium> {
    /// The unsharded store: one WAL, one snapshot lineage.
    Single(DurableWarehouse<M>),
    /// Key-range sharded lineages under one commit point.
    Sharded(ShardedDurableWarehouse<M>),
}

impl<M: StorageMedium> Store<M> {
    /// The current materialized warehouse state.
    pub fn state(&self) -> &dwc_relalg::DbState {
        match self {
            Store::Single(w) => w.state(),
            Store::Sharded(w) => w.state(),
        }
    }

    /// The wrapped fault-tolerant ingestor.
    pub fn ingestor(&self) -> &IngestingIntegrator {
        match self {
            Store::Single(w) => w.ingestor(),
            Store::Sharded(w) => w.ingestor(),
        }
    }

    /// The storage counters.
    pub fn storage_stats(&self) -> StorageStats {
        match self {
            Store::Single(w) => w.storage_stats(),
            Store::Sharded(w) => w.storage_stats(),
        }
    }

    /// The current (root) manifest generation.
    pub fn generation(&self) -> u64 {
        match self {
            Store::Single(w) => w.generation(),
            Store::Sharded(w) => w.generation(),
        }
    }

    /// True once a storage failure has poisoned the store.
    pub fn poisoned(&self) -> bool {
        match self {
            Store::Single(w) => w.poisoned(),
            Store::Sharded(w) => w.poisoned(),
        }
    }

    /// Offers a batch as one group commit.
    pub fn offer_batch(
        &mut self,
        envelopes: &[Envelope],
    ) -> Result<Vec<IngestOutcome>, StorageError> {
        match self {
            Store::Single(w) => w.offer_batch(envelopes),
            Store::Sharded(w) => w.offer_batch(envelopes),
        }
    }

    /// Applies a batch in memory, queueing its records for
    /// [`Store::commit_applied`]. Infallible on the single store;
    /// sharded, a write into a parked key range rejects the whole batch
    /// with its in-memory effects rolled back.
    pub fn apply_batch(
        &mut self,
        envelopes: &[Envelope],
    ) -> Result<Vec<IngestOutcome>, StorageError> {
        match self {
            Store::Single(w) => Ok(w.apply_batch(envelopes)),
            Store::Sharded(w) => w.apply_batch(envelopes),
        }
    }

    /// Makes every applied-but-unlogged record durable (the group
    /// fsync).
    pub fn commit_applied(&mut self) -> Result<(), StorageError> {
        match self {
            Store::Single(w) => w.commit_applied(),
            Store::Sharded(w) => w.commit_applied(),
        }
    }

    /// Repairs retryable-fault aftermath by rolling fresh generations.
    pub fn heal(&mut self) -> Result<(), StorageError> {
        match self {
            Store::Single(w) => w.heal(),
            Store::Sharded(w) => w.heal(),
        }
    }

    /// Durable gap recovery from a source's outbox log.
    pub fn recover_from_log(
        &mut self,
        source: &SourceId,
        log: &[Envelope],
    ) -> Result<usize, StorageError> {
        match self {
            Store::Single(w) => w.recover_from_log(source, log),
            Store::Sharded(w) => w.recover_from_log(source, log),
        }
    }

    /// Rolls a fresh snapshot generation now.
    pub fn snapshot(&mut self) -> Result<(), StorageError> {
        match self {
            Store::Single(w) => w.snapshot(),
            Store::Sharded(w) => w.snapshot(),
        }
    }

    /// Durably re-offers the quarantined envelope at `index`.
    pub fn requeue_quarantined(
        &mut self,
        index: usize,
    ) -> Result<Option<IngestOutcome>, StorageError> {
        match self {
            Store::Single(w) => w.requeue_quarantined(index),
            Store::Sharded(w) => w.requeue_quarantined(index),
        }
    }

    /// Durably discards the quarantined envelope at `index`.
    pub fn discard_quarantined(
        &mut self,
        index: usize,
        reason: &str,
    ) -> Result<Option<DiscardedEntry>, StorageError> {
        match self {
            Store::Single(w) => w.discard_quarantined(index, reason),
            Store::Sharded(w) => w.discard_quarantined(index, reason),
        }
    }

    /// Durably drains the whole quarantine in sequence order.
    pub fn requeue_all_quarantined(&mut self) -> Result<Vec<IngestOutcome>, StorageError> {
        match self {
            Store::Single(w) => w.requeue_all_quarantined(),
            Store::Sharded(w) => w.requeue_all_quarantined(),
        }
    }

    /// Installs a maintenance policy and persists its mode.
    pub fn set_maintenance_policy(
        &mut self,
        policy: AdaptivePolicy,
    ) -> Result<(), StorageError> {
        match self {
            Store::Single(w) => w.set_maintenance_policy(policy),
            Store::Sharded(w) => w.set_maintenance_policy(policy),
        }
    }

    /// Mutable access to the maintenance policy.
    pub fn policy_mut(&mut self) -> &mut AdaptivePolicy {
        match self {
            Store::Single(w) => w.policy_mut(),
            Store::Sharded(w) => w.policy_mut(),
        }
    }

    /// Per-shard health, `None` on the unsharded store.
    pub fn shard_health(&self) -> Option<Vec<ShardHealth>> {
        match self {
            Store::Single(_) => None,
            Store::Sharded(w) => Some(w.shard_health()),
        }
    }

    /// The number of durability shards (1 when unsharded).
    pub fn shards(&self) -> usize {
        match self {
            Store::Single(_) => 1,
            Store::Sharded(w) => w.shards(),
        }
    }
}

fn shard_unavailable(e: &StorageError) -> bool {
    matches!(e, StorageError::ShardUnavailable { .. })
}

/// The per-envelope result a session is told after its batch's fsync.
/// A rendered, `'static`-friendly projection of [`IngestOutcome`]
/// (errors carry their display text, not the typed error).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AckOutcome {
    /// Applied in sequence (count includes drained parked successors).
    Applied(usize),
    /// Already durably applied — idempotent replay.
    Duplicate,
    /// Parked out of order in the reorder window.
    Buffered,
    /// Rejected into quarantine; the text is the typed error rendered.
    Quarantined(String),
    /// The gap cannot fill from the stream; the session must replay its
    /// outbox (`recover` in the line protocol).
    NeedsRecovery(String),
    /// A gap-recovery request completed, applying this many envelopes.
    Recovered(usize),
    /// The batch was refused whole — typically a write into a parked
    /// shard's key range (`DWC-S305`) — with its in-memory application
    /// rolled back. Nothing about it is durable; the source may retry
    /// after the store heals (sequencing makes the retry idempotent).
    Rejected(String),
}

impl AckOutcome {
    /// Projects an ingestion outcome into its ack form.
    pub fn from_ingest(outcome: &IngestOutcome) -> AckOutcome {
        match outcome {
            IngestOutcome::Applied(n) => AckOutcome::Applied(*n),
            IngestOutcome::Duplicate => AckOutcome::Duplicate,
            IngestOutcome::Buffered => AckOutcome::Buffered,
            IngestOutcome::Quarantined(e) => AckOutcome::Quarantined(e.to_string()),
            IngestOutcome::NeedsRecovery(e) => AckOutcome::NeedsRecovery(e.to_string()),
        }
    }

    /// Whether the envelope (or recovery) is durably reflected in the
    /// warehouse state.
    pub fn is_durable(&self) -> bool {
        matches!(
            self,
            AckOutcome::Applied(_) | AckOutcome::Duplicate | AckOutcome::Recovered(_)
        )
    }
}

impl fmt::Display for AckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AckOutcome::Applied(n) => write!(f, "applied {n}"),
            AckOutcome::Duplicate => write!(f, "duplicate"),
            AckOutcome::Buffered => write!(f, "buffered"),
            AckOutcome::Quarantined(e) => write!(f, "quarantined {e}"),
            AckOutcome::NeedsRecovery(e) => write!(f, "needs-recovery {e}"),
            AckOutcome::Recovered(n) => write!(f, "recovered {n}"),
            AckOutcome::Rejected(e) => write!(f, "rejected {e}"),
        }
    }
}

/// A durable acknowledgment: sent to `session` only after the fsync
/// covering its envelope returned. Constructed exclusively by the
/// commit pipeline (lint rule S505).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ack {
    /// The session to notify.
    pub session: SessionId,
    /// The source the envelope belonged to.
    pub source: SourceId,
    /// The envelope's source epoch.
    pub epoch: u64,
    /// The envelope's sequence number.
    pub seq: u64,
    /// What happened to it.
    pub outcome: AckOutcome,
}

impl Ack {
    fn new(session: SessionId, source: SourceId, epoch: u64, seq: u64, outcome: AckOutcome) -> Ack {
        Ack { session, source, epoch, seq, outcome }
    }
}

/// What one group commit produced: the published snapshot epoch and the
/// per-envelope acks, in batch order.
#[derive(Clone, Debug)]
pub struct CommitReceipt {
    /// The snapshot epoch readers observe from this commit onward.
    pub epoch: u64,
    /// One ack per batched envelope, in arrival order.
    pub acks: Vec<Ack>,
}

/// The commit pipeline's position in the fault state machine (see the
/// module docs for the diagram).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Commits run normally.
    Healthy,
    /// A retryable storage failure parked the in-flight batch; the next
    /// backoff retry is scheduled. Reads keep serving the last
    /// published epoch; new batches park unacked.
    Degraded {
        /// Consecutive failed commit attempts (resets on progress).
        attempts: u32,
        /// Virtual time of the next retry.
        next_retry_at: u64,
    },
    /// The retry budget is exhausted or the failure was fatal: writes
    /// are refused with a typed nack, reads keep serving. A periodic
    /// probe still tries to heal — a healed medium exits to `Healthy`,
    /// a poisoned warehouse stays here until restart.
    ReadOnly {
        /// Virtual time of the next heal probe.
        next_probe_at: u64,
    },
}

/// Deterministic bounded-backoff tuning for degraded-mode retries.
/// Backoff for attempt `n` is `min(base << (n-1), max)` — exponential,
/// capped, and a pure function of the attempt count (no jitter: the
/// server is a deterministic state machine; schedules come from the
/// test harness, not the clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failed attempts tolerated before `ReadOnly`.
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual microseconds.
    pub base_backoff_micros: u64,
    /// Backoff cap; also the `ReadOnly` probe interval.
    pub max_backoff_micros: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_micros: 1_000,
            max_backoff_micros: 64_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry attempt `attempts` (1-based).
    pub fn backoff(&self, attempts: u32) -> u64 {
        let doublings = attempts.saturating_sub(1).min(63);
        self.base_backoff_micros
            .checked_shl(doublings)
            .unwrap_or(u64::MAX)
            .min(self.max_backoff_micros)
    }
}

/// A batch the pipeline accepted but could not yet durably commit.
/// `outcomes` is `Some` iff the batch was already applied in memory
/// (the batch in flight when the failure struck); later arrivals park
/// unapplied and apply on drain, preserving arrival order end to end.
#[derive(Debug)]
struct ParkedBatch {
    items: Vec<BatchItem>,
    outcomes: Option<Vec<IngestOutcome>>,
}

/// What [`CommitPipeline::submit`] did with a batch.
#[derive(Clone, Debug)]
pub enum Submitted {
    /// The batch is durable; acks are minted.
    Committed(CommitReceipt),
    /// The batch is parked unacked (pipeline degraded or read-only);
    /// the acks arrive from a later [`CommitPipeline::tick_retry`].
    Parked {
        /// When the pipeline will next try to commit it.
        next_retry_at: u64,
    },
    /// The batch was refused whole (a parked shard's key range) and
    /// rolled back; every ack is [`AckOutcome::Rejected`]. The pipeline
    /// stays healthy — other key ranges keep committing.
    Rejected(Vec<Ack>),
}

/// The single-writer commit loop state: the durable warehouse plus the
/// epoch cell readers subscribe to, plus the fault state machine.
#[derive(Debug)]
pub struct CommitPipeline<M: StorageMedium> {
    warehouse: Store<M>,
    epochs: EpochCell,
    retry: RetryPolicy,
    health: Health,
    parked: Vec<ParkedBatch>,
    last_error: Option<String>,
}

impl<M: StorageMedium> CommitPipeline<M> {
    /// Wraps a durable warehouse, seeding epoch 1 with its current
    /// state (freshly created or just recovered).
    pub fn new(warehouse: DurableWarehouse<M>) -> CommitPipeline<M> {
        CommitPipeline::over(Store::Single(warehouse))
    }

    /// Wraps a key-range sharded warehouse. Identical pipeline, plus
    /// the shard fault class: a fatal single-shard fault rejects its
    /// batch instead of degrading the pipeline.
    pub fn new_sharded(warehouse: ShardedDurableWarehouse<M>) -> CommitPipeline<M> {
        CommitPipeline::over(Store::Sharded(warehouse))
    }

    fn over(warehouse: Store<M>) -> CommitPipeline<M> {
        let epochs = EpochCell::new(warehouse.state().clone());
        CommitPipeline {
            warehouse,
            epochs,
            retry: RetryPolicy::default(),
            health: Health::Healthy,
            parked: Vec::new(),
            last_error: None,
        }
    }

    /// Commits one batch: offers every envelope, fsyncs once, publishes
    /// the post-batch state as a new snapshot epoch, and only then
    /// mints the acks. On storage error nothing is acked. This is the
    /// health-unaware direct path (tests, tools); the serving loop goes
    /// through [`CommitPipeline::submit`], which degrades instead of
    /// erroring on retryable failures.
    pub fn commit(&mut self, batch: Vec<BatchItem>) -> Result<CommitReceipt, StorageError> {
        let envelopes: Vec<Envelope> = batch.iter().map(|item| item.envelope.clone()).collect();
        let outcomes = self.warehouse.offer_batch(&envelopes)?;
        let epoch = self.epochs.publish(self.warehouse.state().clone());
        let acks = Self::mint_acks(batch, outcomes);
        Ok(CommitReceipt { epoch, acks })
    }

    /// Submits one batch to the health-aware commit path:
    ///
    /// * **Healthy** — apply in memory, group-commit, publish, ack.
    /// * **Healthy + retryable failure** — the batch parks (already
    ///   applied, records safe in the warehouse's unlogged queue), the
    ///   pipeline enters `Degraded`, and the caller gets
    ///   [`Submitted::Parked`] with the retry deadline.
    /// * **Degraded / ReadOnly** — the batch parks unapplied, keeping
    ///   arrival order for the eventual drain.
    /// * **fatal failure** — the pipeline enters `ReadOnly` and the
    ///   error propagates; the batch is dropped unacked (only a restart
    ///   plus recovery can serve writes again — admission control nacks
    ///   everything after this).
    pub fn submit(
        &mut self,
        batch: Vec<BatchItem>,
        now: u64,
    ) -> Result<Submitted, StorageError> {
        if self.health != Health::Healthy {
            let next_retry_at = self.retry_deadline().unwrap_or(now);
            self.park(batch);
            return Ok(Submitted::Parked { next_retry_at });
        }
        let envelopes: Vec<Envelope> = batch.iter().map(|item| item.envelope.clone()).collect();
        let outcomes = match self.warehouse.apply_batch(&envelopes) {
            Ok(outcomes) => outcomes,
            // Shard-fault class: the batch was rolled back whole; nack
            // it and stay healthy — other key ranges keep committing.
            Err(e) if shard_unavailable(&e) => {
                return Ok(Submitted::Rejected(Self::mint_rejected(batch, &e)));
            }
            Err(e) if e.is_retryable() => {
                let next_retry_at = now.saturating_add(self.retry.backoff(1));
                self.health = Health::Degraded { attempts: 1, next_retry_at };
                self.last_error = Some(e.to_string());
                self.parked.push(ParkedBatch { items: batch, outcomes: None });
                return Ok(Submitted::Parked { next_retry_at });
            }
            Err(e) => {
                self.enter_read_only(&e, now);
                return Err(e);
            }
        };
        match self.warehouse.commit_applied() {
            Ok(()) => {
                let epoch = self.epochs.publish(self.warehouse.state().clone());
                let acks = Self::mint_acks(batch, outcomes);
                Ok(Submitted::Committed(CommitReceipt { epoch, acks }))
            }
            Err(e) if shard_unavailable(&e) => {
                Ok(Submitted::Rejected(Self::mint_rejected(batch, &e)))
            }
            Err(e) if e.is_retryable() => {
                let next_retry_at = now.saturating_add(self.retry.backoff(1));
                self.health = Health::Degraded { attempts: 1, next_retry_at };
                self.last_error = Some(e.to_string());
                self.parked.push(ParkedBatch { items: batch, outcomes: Some(outcomes) });
                Ok(Submitted::Parked { next_retry_at })
            }
            Err(e) => {
                self.enter_read_only(&e, now);
                Err(e)
            }
        }
    }

    /// Parks a batch for a later [`CommitPipeline::tick_retry`] drain,
    /// unapplied and unacked.
    pub fn park(&mut self, batch: Vec<BatchItem>) {
        self.parked.push(ParkedBatch { items: batch, outcomes: None });
    }

    /// Runs the due retry or heal probe, if any. On success the
    /// warehouse heals (rolling a generation that durably captures
    /// everything applied before the failure) and the parked batches
    /// drain **in arrival order**, each publishing its own epoch and
    /// minting its acks — so a recovered server is indistinguishable,
    /// ack stream included, from one that never faulted. On another
    /// retryable failure the backoff doubles (attempts reset to 1 if
    /// this tick made progress); past the budget, or on a fatal error,
    /// the pipeline goes `ReadOnly`. Not due, or nothing parked and
    /// clean: returns empty.
    pub fn tick_retry(&mut self, now: u64) -> Vec<Ack> {
        let (due, was_read_only, attempts_before) = match self.health {
            Health::Healthy => (false, false, 0),
            Health::Degraded { attempts, next_retry_at } => {
                (now >= next_retry_at, false, attempts)
            }
            Health::ReadOnly { next_probe_at } => (now >= next_probe_at, true, 0),
        };
        if !due {
            return Vec::new();
        }
        // Heal first: rolls a fresh generation, making every record the
        // failed flush stranded durable via the snapshot. A heal that
        // *parks a shard* rolled the in-memory state back to the durable
        // checkpoint — every parked batch's application is gone with it,
        // so they all reject and the pipeline returns to service for
        // the surviving key ranges.
        if let Err(e) = self.warehouse.heal() {
            if shard_unavailable(&e) {
                let mut acks = Vec::new();
                for batch in self.parked.drain(..) {
                    acks.extend(Self::mint_rejected(batch.items, &e));
                }
                self.health = Health::Healthy;
                self.last_error = Some(e.to_string());
                return acks;
            }
            self.note_retry_failure(&e, now, was_read_only, attempts_before, false);
            return Vec::new();
        }
        let mut acks = Vec::new();
        let mut progressed = false;
        while !self.parked.is_empty() {
            let outcomes = match self.parked[0].outcomes.take() {
                Some(outcomes) => outcomes,
                None => {
                    let envelopes: Vec<Envelope> =
                        self.parked[0].items.iter().map(|i| i.envelope.clone()).collect();
                    match self.warehouse.apply_batch(&envelopes) {
                        Ok(outcomes) => outcomes,
                        Err(e) if shard_unavailable(&e) => {
                            // This batch writes a key range that parked
                            // mid-drain: reject it, keep draining.
                            let batch = self.parked.remove(0);
                            acks.extend(Self::mint_rejected(batch.items, &e));
                            self.last_error = Some(e.to_string());
                            continue;
                        }
                        Err(e) => {
                            self.note_retry_failure(
                                &e,
                                now,
                                was_read_only,
                                attempts_before,
                                progressed,
                            );
                            return acks;
                        }
                    }
                }
            };
            match self.warehouse.commit_applied() {
                Ok(()) => {
                    let batch = self.parked.remove(0);
                    self.epochs.publish(self.warehouse.state().clone());
                    acks.extend(Self::mint_acks(batch.items, outcomes));
                    progressed = true;
                }
                Err(e) if shard_unavailable(&e) => {
                    // Rolled back whole by the shard park: reject and
                    // keep draining the remaining batches.
                    let batch = self.parked.remove(0);
                    acks.extend(Self::mint_rejected(batch.items, &e));
                    self.last_error = Some(e.to_string());
                }
                Err(e) => {
                    // The batch is applied now; remember its outcomes so
                    // the next drain does not apply it twice.
                    self.parked[0].outcomes = Some(outcomes);
                    self.note_retry_failure(
                        &e,
                        now,
                        was_read_only,
                        attempts_before,
                        progressed,
                    );
                    return acks;
                }
            }
        }
        self.health = Health::Healthy;
        self.last_error = None;
        acks
    }

    /// Books a failed retry/probe into the state machine.
    fn note_retry_failure(
        &mut self,
        e: &StorageError,
        now: u64,
        was_read_only: bool,
        attempts_before: u32,
        progressed: bool,
    ) {
        if was_read_only || !e.is_retryable() {
            self.enter_read_only(e, now);
            return;
        }
        let attempts = if progressed { 1 } else { attempts_before.saturating_add(1) };
        if attempts > self.retry.max_attempts {
            self.enter_read_only(e, now);
        } else {
            self.health = Health::Degraded {
                attempts,
                next_retry_at: now.saturating_add(self.retry.backoff(attempts)),
            };
            self.last_error = Some(e.to_string());
        }
    }

    fn enter_read_only(&mut self, e: &StorageError, now: u64) {
        self.health = Health::ReadOnly {
            next_probe_at: now.saturating_add(self.retry.max_backoff_micros),
        };
        self.last_error = Some(e.to_string());
    }

    fn mint_rejected(items: Vec<BatchItem>, e: &StorageError) -> Vec<Ack> {
        let detail = e.to_string();
        items
            .into_iter()
            .map(|item| {
                Ack::new(
                    item.session,
                    item.envelope.source,
                    item.envelope.epoch,
                    item.envelope.seq,
                    AckOutcome::Rejected(detail.clone()),
                )
            })
            .collect()
    }

    fn mint_acks(items: Vec<BatchItem>, outcomes: Vec<IngestOutcome>) -> Vec<Ack> {
        items
            .into_iter()
            .zip(outcomes)
            .map(|(item, outcome)| {
                Ack::new(
                    item.session,
                    item.envelope.source,
                    item.envelope.epoch,
                    item.envelope.seq,
                    AckOutcome::from_ingest(&outcome),
                )
            })
            .collect()
    }

    /// The pipeline's position in the fault state machine.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Envelopes parked unacked across all queued batches.
    pub fn parked_len(&self) -> usize {
        self.parked.iter().map(|b| b.items.len()).sum()
    }

    /// The next retry or probe deadline, if the pipeline is not
    /// healthy. Feeds the server's `next_deadline`, so a failed commit
    /// re-arms the tick schedule instead of waiting for traffic.
    pub fn retry_deadline(&self) -> Option<u64> {
        match self.health {
            Health::Healthy => None,
            Health::Degraded { next_retry_at, .. } => Some(next_retry_at),
            Health::ReadOnly { next_probe_at } => Some(next_probe_at),
        }
    }

    /// The last storage failure's rendered form, while unhealthy.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    /// Replaces the retry/backoff tuning.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The retry/backoff tuning in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Runs durable gap recovery from a session's replayed outbox and
    /// publishes the repaired state. The single ack reports the
    /// post-recovery cursor position.
    pub fn recover_source(
        &mut self,
        session: SessionId,
        source: &SourceId,
        log: &[Envelope],
    ) -> Result<CommitReceipt, StorageError> {
        let applied = self.warehouse.recover_from_log(source, log)?;
        let epoch = self.epochs.publish(self.warehouse.state().clone());
        let (cursor_epoch, next_seq) = self
            .warehouse
            .ingestor()
            .sequencing()
            .into_iter()
            .find(|s| &s.source == source)
            .map(|s| (s.epoch, s.next_seq))
            .unwrap_or((0, 0));
        let ack = Ack::new(
            session,
            source.clone(),
            cursor_epoch,
            next_seq,
            AckOutcome::Recovered(applied),
        );
        Ok(CommitReceipt { epoch, acks: vec![ack] })
    }

    /// A reader handle onto the published snapshot epochs. Clones are
    /// cheap; loads never block the commit loop.
    pub fn reader(&self) -> EpochReader {
        self.epochs.reader()
    }

    /// The snapshot epoch readers currently observe.
    pub fn epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    /// The wrapped durable store (read-only).
    pub fn warehouse(&self) -> &Store<M> {
        &self.warehouse
    }

    /// Mutable access for operator paths (snapshot, quarantine
    /// triage). Callers must republish via [`CommitPipeline::publish`]
    /// if they change the state.
    pub fn warehouse_mut(&mut self) -> &mut Store<M> {
        &mut self.warehouse
    }

    /// Publishes the current warehouse state as a fresh snapshot epoch
    /// (after an operator mutation through
    /// [`CommitPipeline::warehouse_mut`]).
    pub fn publish(&mut self) -> u64 {
        self.epochs.publish(self.warehouse.state().clone())
    }
}
