//! Interned symbols for attribute and relation names.
//!
//! Attribute names occur on every hot path of the algebra (projection
//! mappings, join-column computation, attribute-set algebra), so they are
//! interned once into a global table and handled as `u32` ids thereafter.
//! Interned strings live for the duration of the process; the number of
//! distinct attribute/relation names in a warehouse specification is small
//! and bounded, so the leak is intentional and harmless.
//!
//! Ordering of symbols is *lexicographic on the resolved string*, not on
//! the numeric id. This keeps schema headers, printed relations and
//! attribute sets deterministic across runs regardless of interning order.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy and compare; ordering is
/// lexicographic on the underlying string so that derived structures are
/// deterministic across processes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name` and returns its symbol. Repeated calls with the same
    /// string return the same symbol.
    pub fn intern(name: &str) -> Symbol {
        // The interner never panics while holding the lock, but recover
        // from poisoning anyway: the table is append-only, so a poisoned
        // guard still holds a consistent map.
        let mut i = interner().lock().unwrap_or_else(|p| p.into_inner());
        if let Some(&id) = i.map.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(i.strings.len()).expect("symbol table overflow"); // lint:allow expect -- overflowing u32 needs 4 billion distinct names
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.strings.push(leaked);
        i.map.insert(leaked, id);
        Symbol(id)
    }

    /// Resolves the symbol back to its string.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().unwrap_or_else(|p| p.into_inner());
        i.strings[self.0 as usize]
    }

    /// The raw id; only useful for dense side tables.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

macro_rules! symbol_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub Symbol);

        impl $name {
            /// Interns `name` as a new or existing symbol.
            pub fn new(name: &str) -> Self {
                Self(Symbol::intern(name))
            }

            /// Resolves to the underlying string.
            pub fn as_str(self) -> &'static str {
                self.0.as_str()
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<&String> for $name {
            fn from(s: &String) -> Self {
                Self::new(s)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.as_str())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

symbol_newtype! {
    /// An attribute name (a column of a relation schema).
    Attr
}

symbol_newtype! {
    /// A relation name — either a base relation of `D` or a view name.
    RelName
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("clerk");
        let b = Symbol::intern("clerk");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "clerk");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("item");
        let b = Symbol::intern("age");
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse-lexicographic order to make sure ordering does
        // not follow interning order.
        let z = Symbol::intern("zzz-order-test");
        let a = Symbol::intern("aaa-order-test");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn attr_and_relname_are_distinct_types_over_same_table() {
        let a = Attr::new("shared");
        let r = RelName::new("shared");
        assert_eq!(a.as_str(), r.as_str());
    }

    #[test]
    fn display_matches_str() {
        let a = Attr::new("price");
        assert_eq!(format!("{a}"), "price");
        assert_eq!(format!("{a:?}"), "price");
    }
}
