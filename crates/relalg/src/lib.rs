#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # dwc-relalg — relational algebra substrate
//!
//! This crate provides the relational substrate used by the
//! `dwcomplements` workspace, a reproduction of *Complements for Data
//! Warehouses* (Laurent, Lechtenbörger, Spyratos, Vossen; ICDE 1999):
//!
//! * an interned [`Attr`]/[`RelName`] symbol layer,
//! * set-semantics [`Relation`]s over ordered [`Value`]s,
//! * relation schemata and a [`Catalog`] with key constraints and
//!   (acyclic) inclusion dependencies,
//! * a relational algebra AST ([`RaExpr`]) with selection predicates,
//!   schema inference, an evaluator, an algebraic simplifier, a text
//!   parser and a pretty printer,
//! * a formal update model ([`Delta`], [`Update`]) used by the
//!   warehouse-maintenance layers.
//!
//! The paper works in the pure (untyped, set-semantics) relational model;
//! this crate follows that model faithfully. Relations are sets of tuples
//! over a sorted attribute header, and all operators are set operators.
//!
//! ## Quick example
//!
//! ```
//! use dwc_relalg::{Catalog, DbState, RaExpr, Relation, rel};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_schema_with_key("Sale", &["item", "clerk"], &["item", "clerk"]).unwrap();
//! catalog.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
//!
//! let mut db = DbState::new();
//! db.insert_relation("Sale", rel!{ ["item", "clerk"] =>
//!     ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") });
//! db.insert_relation("Emp", rel!{ ["clerk", "age"] =>
//!     ("Mary", 23), ("John", 25), ("Paula", 32) });
//!
//! let sold = RaExpr::parse("Sale join Emp").unwrap();
//! let result = sold.eval(&db).unwrap();
//! assert_eq!(result.len(), 3);
//! ```

pub mod attrs;
pub(crate) mod columns;
pub mod constraints;
pub mod database;
pub mod display;
pub mod epoch;
pub mod error;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod gen;
pub mod io;
pub mod parse;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod simplify;
pub mod symbol;
pub mod tuple;
pub mod update;
pub mod value;

pub use attrs::AttrSet;
pub use constraints::{InclusionDep, Key};
pub use database::DbState;
pub use epoch::{EpochCell, EpochReader, StateEpoch};
pub use error::{RelalgError, Result};
pub use expr::RaExpr;
pub use predicate::{CmpOp, Operand, Predicate};
pub use relation::Relation;
pub use schema::{Catalog, RelSchema};
pub use symbol::{Attr, RelName, Symbol};
pub use tuple::Tuple;
pub use update::{Delta, Update};
pub use value::Value;
