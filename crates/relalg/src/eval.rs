//! Expression evaluation.
//!
//! A straightforward but non-naive evaluator: joins are hash joins keyed
//! on the common attributes (building on the smaller input), selections
//! compile their predicate once, projections precompute positional
//! mappings. Set semantics fall out of [`Relation`]'s ordered-set storage.

use crate::attrs::AttrSet;
use crate::database::DbState;
use crate::error::{RelalgError, Result};
use crate::expr::{rename_header, RaExpr};
use crate::relation::Relation;
use crate::tuple::{ColSource, Tuple};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluates `expr` against `db`, producing a fresh relation.
pub fn eval(expr: &RaExpr, db: &DbState) -> Result<Relation> {
    let arc = eval_arc(expr, db)?;
    Ok(Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()))
}

/// Evaluation producing a shareable handle; base references are returned
/// without copying their tuples.
pub fn eval_arc(expr: &RaExpr, db: &DbState) -> Result<Arc<Relation>> {
    Ok(match expr {
        RaExpr::Base(name) => db.relation_shared(*name)?,
        RaExpr::Empty(attrs) => Arc::new(Relation::empty(attrs.clone())),
        RaExpr::Select(input, pred) => {
            let rel = eval_arc(input, db)?;
            let compiled = pred.compile(rel.attrs())?;
            Arc::new(rel.filter(|t| compiled.eval(t)))
        }
        RaExpr::Project(input, wanted) => Arc::new(eval_arc(input, db)?.project(wanted)?),
        RaExpr::Join(l, r) => {
            let (l, r) = (eval_arc(l, db)?, eval_arc(r, db)?);
            Arc::new(natural_join(&l, &r)?)
        }
        RaExpr::Union(l, r) => {
            let (l, r) = (eval_arc(l, db)?, eval_arc(r, db)?);
            Arc::new(l.union(&r)?)
        }
        RaExpr::Diff(l, r) => {
            let (l, r) = (eval_arc(l, db)?, eval_arc(r, db)?);
            Arc::new(l.difference(&r)?)
        }
        RaExpr::Intersect(l, r) => {
            let (l, r) = (eval_arc(l, db)?, eval_arc(r, db)?);
            Arc::new(l.intersect(&r)?)
        }
        RaExpr::Rename(input, pairs) => {
            let rel = eval_arc(input, db)?;
            Arc::new(rename_relation(&rel, pairs)?)
        }
    })
}

/// Memoizing evaluation: identical subexpressions are evaluated once per
/// cache lifetime. The warehouse maintenance plans share one cache across
/// all maintenance expressions of a single update, where the delta rules
/// repeat large reconstruction subtrees; the cache must not outlive the
/// database state it was filled against.
pub fn eval_cached(
    expr: &RaExpr,
    db: &DbState,
    cache: &mut HashMap<RaExpr, Arc<Relation>>,
) -> Result<Arc<Relation>> {
    if let Some(hit) = cache.get(expr) {
        return Ok(Arc::clone(hit));
    }
    let result: Arc<Relation> = match expr {
        RaExpr::Base(name) => db.relation_shared(*name)?,
        RaExpr::Empty(attrs) => Arc::new(Relation::empty(attrs.clone())),
        RaExpr::Select(input, pred) => {
            let rel = eval_cached(input, db, cache)?;
            let compiled = pred.compile(rel.attrs())?;
            Arc::new(rel.filter(|t| compiled.eval(t)))
        }
        RaExpr::Project(input, wanted) => {
            Arc::new(eval_cached(input, db, cache)?.project(wanted)?)
        }
        RaExpr::Join(l, r) => {
            let (l, r) = (eval_cached(l, db, cache)?, eval_cached(r, db, cache)?);
            Arc::new(natural_join(&l, &r)?)
        }
        RaExpr::Union(l, r) => {
            let (l, r) = (eval_cached(l, db, cache)?, eval_cached(r, db, cache)?);
            Arc::new(l.union(&r)?)
        }
        RaExpr::Diff(l, r) => {
            let (l, r) = (eval_cached(l, db, cache)?, eval_cached(r, db, cache)?);
            Arc::new(l.difference(&r)?)
        }
        RaExpr::Intersect(l, r) => {
            let (l, r) = (eval_cached(l, db, cache)?, eval_cached(r, db, cache)?);
            Arc::new(l.intersect(&r)?)
        }
        RaExpr::Rename(input, pairs) => {
            let rel = eval_cached(input, db, cache)?;
            Arc::new(rename_relation(&rel, pairs)?)
        }
    };
    cache.insert(expr.clone(), Arc::clone(&result));
    Ok(result)
}

/// Natural join of two relation instances. Degenerates to the cartesian
/// product when the headers are disjoint and to intersection when they are
/// equal.
pub fn natural_join(left: &Relation, right: &Relation) -> Result<Relation> {
    if left.attrs() == right.attrs() {
        return left.intersect(right);
    }
    // Put the smaller relation on the build side.
    if left.len() > right.len() {
        return natural_join(right, left);
    }
    let common = left.attrs().intersect(right.attrs());
    let out_attrs = left.attrs().union(right.attrs());
    let layout = join_layout(left.attrs(), right.attrs(), &out_attrs);
    let build_positions = common
        .positions_in(left.attrs())
        .expect("common attrs are in left header");
    let probe_positions = common
        .positions_in(right.attrs())
        .expect("common attrs are in right header");

    let mut out = Relation::empty(out_attrs);
    if left.is_empty() || right.is_empty() {
        return Ok(out);
    }
    let mut index: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(left.len());
    for t in left.iter() {
        let key: Vec<Value> = build_positions.iter().map(|&i| t.get(i).clone()).collect();
        index.entry(key).or_default().push(t);
    }
    for probe in right.iter() {
        let key: Vec<Value> = probe_positions.iter().map(|&i| probe.get(i).clone()).collect();
        if let Some(matches) = index.get(&key) {
            for build in matches {
                out.insert(build.merge(probe, &layout))
                    .expect("join layout preserves arity");
            }
        }
    }
    Ok(out)
}

/// For each output column, where to fetch it from: common and left-only
/// attributes come from the left (build) tuple, right-only attributes from
/// the right (probe) tuple.
fn join_layout(left: &AttrSet, right: &AttrSet, out: &AttrSet) -> Vec<ColSource> {
    out.iter()
        .map(|a| {
            if let Some(i) = left.index_of(a) {
                ColSource::Left(i)
            } else {
                ColSource::Right(right.index_of(a).expect("output attr is in some input"))
            }
        })
        .collect()
}

/// Applies an attribute renaming to an instance; the tuple layout is
/// permuted to match the new sorted header.
pub fn rename_relation(rel: &Relation, pairs: &[(crate::symbol::Attr, crate::symbol::Attr)]) -> Result<Relation> {
    let new_header = rename_header(rel.attrs(), pairs)?;
    // old attr for each new attr
    let back: Vec<usize> = new_header
        .iter()
        .map(|new_attr| {
            let old_attr = pairs
                .iter()
                .find(|(_, t)| *t == new_attr)
                .map(|&(f, _)| f)
                .unwrap_or(new_attr);
            rel.attrs()
                .index_of(old_attr)
                .ok_or(RelalgError::UnknownAttribute {
                    attr: old_attr,
                    header: rel.attrs().clone(),
                })
        })
        .collect::<Result<_>>()?;
    let mut out = Relation::empty(new_header);
    for t in rel.iter() {
        out.insert(t.project(&back))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::rel;
    use crate::symbol::Attr;

    fn fig1_db() -> DbState {
        let mut d = DbState::new();
        d.insert_relation(
            "Sale",
            rel! { ["item", "clerk"] => ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") },
        );
        d.insert_relation(
            "Emp",
            rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
        );
        d
    }

    #[test]
    fn eval_cached_agrees_with_eval_and_hits() {
        let db = fig1_db();
        let mut cache = HashMap::new();
        let e = RaExpr::parse(
            "pi[clerk]((Sale join Emp)) union pi[clerk]((Sale join Emp))",
        )
        .unwrap();
        let cached = eval_cached(&e, &db, &mut cache).unwrap();
        assert_eq!(*cached, e.eval(&db).unwrap());
        // The join and its projection each appear once in the cache even
        // though the expression contains them twice.
        let join = RaExpr::parse("Sale join Emp").unwrap();
        assert!(cache.contains_key(&join));
        // Cache reuse across a second evaluation.
        let again = eval_cached(&e, &db, &mut cache).unwrap();
        assert_eq!(again, cached);
    }

    #[test]
    fn base_and_empty() {
        let db = fig1_db();
        assert_eq!(RaExpr::base("Sale").eval(&db).unwrap().len(), 3);
        assert!(RaExpr::base("Nope").eval(&db).is_err());
        let e = RaExpr::empty(AttrSet::from_names(&["x"]));
        assert_eq!(e.eval(&db).unwrap().len(), 0);
    }

    #[test]
    fn fig1_sold_join() {
        // Sold = Sale ⋈ Emp has 3 tuples (Paula sells nothing).
        let db = fig1_db();
        let sold = RaExpr::base("Sale").join(RaExpr::base("Emp")).eval(&db).unwrap();
        assert_eq!(sold.len(), 3);
        assert_eq!(sold.attrs(), &AttrSet::from_names(&["age", "clerk", "item"]));
        // Check one joined tuple: (23, 'Mary', 'TV set') in {age, clerk, item} order.
        let expected = rel! { ["age", "clerk", "item"] =>
            (23, "Mary", "TV set"), (23, "Mary", "VCR"), (25, "John", "PC") };
        assert_eq!(sold, expected);
    }

    #[test]
    fn join_disjoint_headers_is_product() {
        let mut db = DbState::new();
        db.insert_relation("A", rel! { ["x"] => (1,), (2,) });
        db.insert_relation("B", rel! { ["y"] => (10,), (20,), (30,) });
        let p = RaExpr::base("A").join(RaExpr::base("B")).eval(&db).unwrap();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn join_equal_headers_is_intersection() {
        let mut db = DbState::new();
        db.insert_relation("A", rel! { ["x"] => (1,), (2,) });
        db.insert_relation("B", rel! { ["x"] => (2,), (3,) });
        let p = RaExpr::base("A").join(RaExpr::base("B")).eval(&db).unwrap();
        assert_eq!(p, rel! { ["x"] => (2,) });
    }

    #[test]
    fn join_with_empty_side() {
        let mut db = DbState::new();
        db.insert_relation("A", rel! { ["x"] => (1,) });
        db.insert_relation("B", Relation::empty(AttrSet::from_names(&["x", "y"])));
        let p = RaExpr::base("A").join(RaExpr::base("B")).eval(&db).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.attrs(), &AttrSet::from_names(&["x", "y"]));
    }

    #[test]
    fn select_and_project() {
        let db = fig1_db();
        let q = RaExpr::base("Sale")
            .select(Predicate::attr_eq("clerk", "Mary"))
            .project_names(&["item"]);
        let r = q.eval(&db).unwrap();
        assert_eq!(r, rel! { ["item"] => ("TV set",), ("VCR",) });
    }

    #[test]
    fn union_diff_intersect() {
        let db = fig1_db();
        let sale_clerks = RaExpr::base("Sale").project_names(&["clerk"]);
        let emp_clerks = RaExpr::base("Emp").project_names(&["clerk"]);
        let union = sale_clerks.clone().union(emp_clerks.clone()).eval(&db).unwrap();
        assert_eq!(union, rel! { ["clerk"] => ("Mary",), ("John",), ("Paula",) });
        let diff = emp_clerks.clone().diff(sale_clerks.clone()).eval(&db).unwrap();
        assert_eq!(diff, rel! { ["clerk"] => ("Paula",) });
        let both = emp_clerks.intersect(sale_clerks).eval(&db).unwrap();
        assert_eq!(both, rel! { ["clerk"] => ("Mary",), ("John",) });
    }

    #[test]
    fn example_11_complement_c1() {
        // C1 = Emp ∖ π_{clerk,age}(Sold) = {(Paula, 32)}.
        let db = fig1_db();
        let sold = RaExpr::base("Sale").join(RaExpr::base("Emp"));
        let c1 = RaExpr::base("Emp").diff(sold.project_names(&["clerk", "age"]));
        let r = c1.eval(&db).unwrap();
        assert_eq!(r, rel! { ["clerk", "age"] => ("Paula", 32) });
    }

    #[test]
    fn rename_eval_permutes_layout() {
        let db = fig1_db();
        let e = RaExpr::base("Emp").rename(vec![(Attr::new("age"), Attr::new("years"))]);
        let r = e.eval(&db).unwrap();
        assert_eq!(r.attrs(), &AttrSet::from_names(&["clerk", "years"]));
        // {clerk, years}: clerk first now (was age first in {age, clerk}).
        let expected = rel! { ["clerk", "years"] => ("Mary", 23), ("John", 25), ("Paula", 32) };
        assert_eq!(r, expected);
    }

    #[test]
    fn rename_then_join_on_new_name() {
        // Self-join Emp with a renamed copy to find pairs with equal age.
        let mut db = fig1_db();
        db.insert_relation("Emp2", rel! { ["colleague", "age"] => ("Zoe", 23), ("Abe", 40) });
        let e = RaExpr::base("Emp").join(RaExpr::base("Emp2"));
        let r = e.eval(&db).unwrap();
        // join on common attr age: Mary(23) matches Zoe(23).
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn build_side_swap_is_transparent() {
        // Larger left side triggers the swap; result must be identical.
        let mut db = DbState::new();
        db.insert_relation("Big", rel! { ["k", "a"] => (1, 10), (2, 20), (3, 30), (4, 40) });
        db.insert_relation("Small", rel! { ["k", "b"] => (2, 200), (3, 300) });
        let ab = RaExpr::base("Big").join(RaExpr::base("Small")).eval(&db).unwrap();
        let ba = RaExpr::base("Small").join(RaExpr::base("Big")).eval(&db).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 2);
    }
}
