//! Expression evaluation.
//!
//! A straightforward but non-naive evaluator: joins are hash joins keyed
//! on the common attributes (building on the smaller input, probing with
//! a reused borrowed-value scratch key), selections compile their
//! predicate once, projections precompute positional mappings. Set
//! semantics fall out of [`Relation`]'s ordered-set storage.
//!
//! ## Parallelism
//!
//! Evaluation fans out over [`crate::exec`]'s scoped-thread pool in two
//! places, both bit-identical to the serial path:
//!
//! * **independent subtrees** — every binary operator forks its two
//!   children through [`exec::join2`] under a per-root thread budget, so
//!   a bushy expression uses up to [`exec::threads`] cores and a deep
//!   left-linear one degenerates to the serial walk;
//! * **large joins** — [`natural_join`] hash-partitions build and probe
//!   sides by join-key hash and joins the partitions with
//!   [`exec::par_map`]. Matching keys land in the same partition, and the
//!   per-partition outputs are merged into one ordered set, so the result
//!   does not depend on scheduling.
//!
//! The memo cache ([`EvalCache`]) is sharded behind mutexes and keyed by
//! `Arc<RaExpr>` with a precomputed structural hash: workers evaluating
//! sibling subtrees share one cache without cloning expression trees.

use crate::attrs::AttrSet;
use crate::columns::{Code, Columns, KeyIndex};
use crate::database::DbState;
use crate::error::{RelalgError, Result};
use crate::exec;
use crate::expr::{rename_header, RaExpr};
use crate::relation::Relation;
use crate::tuple::ColSource;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicIsize;
use std::sync::{Arc, Mutex};

/// Below this total tuple count a join is evaluated serially even when
/// workers are available — partitioning overhead beats the win on small
/// inputs.
const PAR_JOIN_MIN_TUPLES: usize = 1024;

/// Number of lock shards in an [`EvalCache`]; a small power of two well
/// above any worker count we expect.
const CACHE_SHARDS: usize = 16;

/// A memo-cache key: a shared expression handle plus its precomputed
/// structural hash. Hashing writes the stored hash (no tree walk), and
/// equality fast-paths on pointer identity — substitution shares
/// untouched subtrees, so repeated subexpressions usually *are* the same
/// allocation.
struct CacheKey {
    hash: u64,
    expr: Arc<RaExpr>,
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialEq for CacheKey {
    fn eq(&self, other: &CacheKey) -> bool {
        self.hash == other.hash
            && (Arc::ptr_eq(&self.expr, &other.expr) || self.expr == other.expr)
    }
}

impl Eq for CacheKey {}

/// A sharded memoization cache for [`eval_cached`], shareable across the
/// worker threads of one evaluation wave. Entries are keyed by shared
/// expression handles with precomputed hashes, so a hit or an insert
/// never clones an expression tree.
///
/// The cache is only valid for the database state it was filled against;
/// the maintenance layer creates one per update application.
pub struct EvalCache {
    shards: Vec<Mutex<HashMap<CacheKey, Arc<Relation>>>>,
}

impl Default for EvalCache {
    fn default() -> EvalCache {
        EvalCache::new()
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> EvalCache {
        EvalCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<HashMap<CacheKey, Arc<Relation>>> {
        // Both constructors allocate CACHE_SHARDS shards, so the modulus
        // is never zero.
        &self.shards[(hash as usize) % self.shards.len()]
    }

    fn get(&self, hash: u64, expr: &Arc<RaExpr>) -> Option<Arc<Relation>> {
        let key = CacheKey { hash, expr: Arc::clone(expr) };
        let shard = self.shard(hash).lock().unwrap_or_else(|p| p.into_inner());
        shard.get(&key).cloned()
    }

    fn insert(&self, hash: u64, expr: &Arc<RaExpr>, rel: Arc<Relation>) {
        let key = CacheKey { hash, expr: Arc::clone(expr) };
        let mut shard = self.shard(hash).lock().unwrap_or_else(|p| p.into_inner());
        shard.insert(key, rel);
    }

    /// Number of memoized subexpressions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// True iff nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a structurally equal expression has been memoized (test
    /// and diagnostics helper — takes the linear-time structural hash).
    pub fn contains(&self, expr: &RaExpr) -> bool {
        let hash = exec::stable_hash(expr);
        let shard = self.shard(hash).lock().unwrap_or_else(|p| p.into_inner());
        shard.keys().any(|k| k.hash == hash && *k.expr == *expr)
    }
}

/// Evaluates `expr` against `db`, producing a fresh relation.
pub fn eval(expr: &RaExpr, db: &DbState) -> Result<Relation> {
    let arc = eval_arc(expr, db)?;
    Ok(Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()))
}

/// Evaluation producing a shareable handle; base references are returned
/// without copying their tuples. Independent subtrees are evaluated in
/// parallel when [`exec::threads`] allows.
pub fn eval_arc(expr: &RaExpr, db: &DbState) -> Result<Arc<Relation>> {
    // Children are Arc-shared, so this clone is a shallow spine copy.
    let root = Arc::new(expr.clone());
    let budget = exec::fork_budget();
    eval_rec(&root, db, None, &budget)
}

/// Memoizing evaluation: identical subexpressions are evaluated once per
/// cache lifetime. The warehouse maintenance plans share one cache across
/// all maintenance expressions of a single update, where the delta rules
/// repeat large reconstruction subtrees; the cache must not outlive the
/// database state it was filled against.
pub fn eval_cached(expr: &RaExpr, db: &DbState, cache: &EvalCache) -> Result<Arc<Relation>> {
    let root = Arc::new(expr.clone());
    let budget = exec::fork_budget();
    eval_rec(&root, db, Some(cache), &budget)
}

/// The recursive core shared by [`eval_arc`] and [`eval_cached`]:
/// consults/fills the optional cache and forks binary operators under the
/// per-root `budget`. Errors are reported left-first, matching the serial
/// evaluation order regardless of scheduling.
fn eval_rec(
    expr: &Arc<RaExpr>,
    db: &DbState,
    cache: Option<&EvalCache>,
    budget: &AtomicIsize,
) -> Result<Arc<Relation>> {
    let hash = cache.map(|c| {
        let h = exec::stable_hash(expr.as_ref());
        (c, h)
    });
    if let Some((c, h)) = hash {
        if let Some(hit) = c.get(h, expr) {
            return Ok(hit);
        }
    }
    let result: Arc<Relation> = match expr.as_ref() {
        RaExpr::Base(name) => db.relation_shared(*name)?,
        RaExpr::Empty(attrs) => Arc::new(Relation::empty(attrs.clone())),
        RaExpr::Select(input, pred) => {
            let rel = eval_rec(input, db, cache, budget)?;
            let compiled = pred.compile(rel.attrs())?;
            Arc::new(rel.select_compiled(&compiled))
        }
        RaExpr::Project(input, wanted) => {
            Arc::new(eval_rec(input, db, cache, budget)?.project(wanted)?)
        }
        RaExpr::Join(l, r) => {
            let (l, r) = eval_pair(l, r, db, cache, budget)?;
            Arc::new(natural_join(&l, &r)?)
        }
        RaExpr::Union(l, r) => {
            let (l, r) = eval_pair(l, r, db, cache, budget)?;
            Arc::new(l.union(&r)?)
        }
        RaExpr::Diff(l, r) => {
            let (l, r) = eval_pair(l, r, db, cache, budget)?;
            Arc::new(l.difference(&r)?)
        }
        RaExpr::Intersect(l, r) => {
            let (l, r) = eval_pair(l, r, db, cache, budget)?;
            Arc::new(l.intersect(&r)?)
        }
        RaExpr::Rename(input, pairs) => {
            let rel = eval_rec(input, db, cache, budget)?;
            Arc::new(rename_relation(&rel, pairs)?)
        }
    };
    if let Some((c, h)) = hash {
        c.insert(h, expr, Arc::clone(&result));
    }
    Ok(result)
}

/// Evaluates the two children of a binary operator, forking when the
/// budget allows. The left error wins, as in serial evaluation.
fn eval_pair(
    l: &Arc<RaExpr>,
    r: &Arc<RaExpr>,
    db: &DbState,
    cache: Option<&EvalCache>,
    budget: &AtomicIsize,
) -> Result<(Arc<Relation>, Arc<Relation>)> {
    let (rl, rr) = exec::join2(
        budget,
        || eval_rec(l, db, cache, budget),
        || eval_rec(r, db, cache, budget),
    );
    Ok((rl?, rr?))
}

/// Natural join of two relation instances. Degenerates to the cartesian
/// product when the headers are disjoint and to intersection when they are
/// equal. The join probes the *larger* side's cached sorted key index
/// ([`crate::columns::KeyIndex`]) with the smaller side's key codes — the
/// index is built once per column store and shared through its `Arc`, so
/// repeated joins against a stored relation (maintenance plans, the eval
/// cache, epoch readers) skip the build entirely. Matched row pairs are
/// gathered column-wise and canonicalized in one batch, so the result is
/// independent of probe order and scheduling.
pub fn natural_join(left: &Relation, right: &Relation) -> Result<Relation> {
    if left.attrs() == right.attrs() {
        return left.intersect(right);
    }
    let common = left.attrs().intersect(right.attrs());
    let out_attrs = left.attrs().union(right.attrs());
    if left.is_empty() || right.is_empty() {
        return Ok(Relation::empty(out_attrs));
    }
    // Index the larger side, probe with the smaller.
    let (big, small) = if left.len() >= right.len() {
        (left, right)
    } else {
        (right, left)
    };
    // `big` plays "left" in the output layout; common attributes carry
    // equal values on both sides, so the choice does not affect results.
    let layout = join_layout(big.attrs(), small.attrs(), &out_attrs)?;
    let bcols = big.columns();
    let scols = small.columns();

    let pairs: Vec<(u32, u32)> = if common.is_empty() {
        // Cartesian product.
        (0..bcols.len() as u32)
            .flat_map(|b| (0..scols.len() as u32).map(move |s| (b, s)))
            .collect()
    } else {
        let big_positions =
            common
                .positions_in(big.attrs())
                .ok_or_else(|| RelalgError::ProjectionNotSubset {
                    wanted: common.clone(),
                    header: big.attrs().clone(),
                })?;
        let small_positions =
            common
                .positions_in(small.attrs())
                .ok_or_else(|| RelalgError::ProjectionNotSubset {
                    wanted: common.clone(),
                    header: small.attrs().clone(),
                })?;
        let index = bcols.index_for(&big_positions);
        let workers = exec::threads();
        if workers > 1 && big.len() + small.len() >= PAR_JOIN_MIN_TUPLES {
            // Probe in parallel over contiguous chunks of the small side;
            // chunk results are concatenated in order (and the output is
            // canonicalized below anyway), so scheduling cannot leak in.
            let rows: Vec<u32> = (0..scols.len() as u32).collect();
            let chunk = rows.len().div_ceil(workers).max(1);
            let chunks: Vec<&[u32]> = rows.chunks(chunk).collect();
            let parts = exec::par_map(&chunks, |rows| {
                probe_pairs(bcols, scols, &index, &small_positions, rows)
            });
            parts.concat()
        } else {
            let rows: Vec<u32> = (0..scols.len() as u32).collect();
            probe_pairs(bcols, scols, &index, &small_positions, &rows)
        }
    };

    // Column-wise gather of the matched pairs, then one canonicalization.
    let arity = layout.len();
    let mut flat: Vec<Code> = Vec::with_capacity(pairs.len() * arity);
    for &(b, s) in &pairs {
        for src in &layout {
            flat.push(match *src {
                ColSource::Left(i) => bcols.col(i)[b as usize],
                ColSource::Right(i) => scols.col(i)[s as usize],
            });
        }
    }
    Ok(Relation::from_parts(
        out_attrs,
        Columns::from_unsorted_rows(arity, pairs.len(), flat),
    ))
}

/// Probes the big side's key index with each listed small-side row,
/// emitting matching `(big_row, small_row)` pairs. Pure `u32` work: the
/// key scratch is reused and no value is resolved or hashed.
fn probe_pairs(
    big: &Columns,
    small: &Columns,
    index: &KeyIndex,
    small_positions: &[usize],
    rows: &[u32],
) -> Vec<(u32, u32)> {
    let mut key: Vec<Code> = vec![0; small_positions.len()];
    let mut out = Vec::new();
    for &s in rows {
        for (k, &p) in key.iter_mut().zip(small_positions) {
            *k = small.col(p)[s as usize];
        }
        for &b in index.probe(big, &key) {
            out.push((b, s));
        }
    }
    out
}

/// For each output column, where to fetch it from: common and left-only
/// attributes come from the left (build) tuple, right-only attributes from
/// the right (probe) tuple.
fn join_layout(left: &AttrSet, right: &AttrSet, out: &AttrSet) -> Result<Vec<ColSource>> {
    out.iter()
        .map(|a| {
            if let Some(i) = left.index_of(a) {
                Ok(ColSource::Left(i))
            } else {
                right
                    .index_of(a)
                    .map(ColSource::Right)
                    .ok_or(RelalgError::UnknownAttribute {
                        attr: a,
                        header: right.clone(),
                    })
            }
        })
        .collect()
}

/// Applies an attribute renaming to an instance; the tuple layout is
/// permuted to match the new sorted header.
pub fn rename_relation(rel: &Relation, pairs: &[(crate::symbol::Attr, crate::symbol::Attr)]) -> Result<Relation> {
    let new_header = rename_header(rel.attrs(), pairs)?;
    // old attr for each new attr
    let back: Vec<usize> = new_header
        .iter()
        .map(|new_attr| {
            let old_attr = pairs
                .iter()
                .find(|(_, t)| *t == new_attr)
                .map(|&(f, _)| f)
                .unwrap_or(new_attr);
            rel.attrs()
                .index_of(old_attr)
                .ok_or(RelalgError::UnknownAttribute {
                    attr: old_attr,
                    header: rel.attrs().clone(),
                })
        })
        .collect::<Result<_>>()?;
    // Same codes, permuted columns: gather row-major through `back` and
    // canonicalize once for the new header's sort order.
    let cols = rel.columns();
    let arity = back.len();
    let mut flat: Vec<Code> = Vec::with_capacity(cols.len() * arity);
    for i in 0..cols.len() {
        for &p in &back {
            flat.push(cols.col(p)[i]);
        }
    }
    Ok(Relation::from_parts(
        new_header,
        Columns::from_unsorted_rows(arity, cols.len(), flat),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::rel;
    use crate::symbol::Attr;
    use crate::tuple::Tuple;
    use crate::value::Value;

    fn fig1_db() -> DbState {
        let mut d = DbState::new();
        d.insert_relation(
            "Sale",
            rel! { ["item", "clerk"] => ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") },
        );
        d.insert_relation(
            "Emp",
            rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
        );
        d
    }

    #[test]
    fn eval_cached_agrees_with_eval_and_hits() {
        let db = fig1_db();
        let cache = EvalCache::new();
        let e = RaExpr::parse(
            "pi[clerk]((Sale join Emp)) union pi[clerk]((Sale join Emp))",
        )
        .unwrap();
        let cached = eval_cached(&e, &db, &cache).unwrap();
        assert_eq!(*cached, e.eval(&db).unwrap());
        // The join and its projection each appear once in the cache even
        // though the expression contains them twice.
        let join = RaExpr::parse("Sale join Emp").unwrap();
        assert!(cache.contains(&join));
        let before = cache.len();
        // Cache reuse across a second evaluation.
        let again = eval_cached(&e, &db, &cache).unwrap();
        assert_eq!(again, cached);
        assert_eq!(cache.len(), before);
    }

    #[test]
    fn base_and_empty() {
        let db = fig1_db();
        assert_eq!(RaExpr::base("Sale").eval(&db).unwrap().len(), 3);
        assert!(RaExpr::base("Nope").eval(&db).is_err());
        let e = RaExpr::empty(AttrSet::from_names(&["x"]));
        assert_eq!(e.eval(&db).unwrap().len(), 0);
    }

    #[test]
    fn fig1_sold_join() {
        // Sold = Sale ⋈ Emp has 3 tuples (Paula sells nothing).
        let db = fig1_db();
        let sold = RaExpr::base("Sale").join(RaExpr::base("Emp")).eval(&db).unwrap();
        assert_eq!(sold.len(), 3);
        assert_eq!(sold.attrs(), &AttrSet::from_names(&["age", "clerk", "item"]));
        // Check one joined tuple: (23, 'Mary', 'TV set') in {age, clerk, item} order.
        let expected = rel! { ["age", "clerk", "item"] =>
            (23, "Mary", "TV set"), (23, "Mary", "VCR"), (25, "John", "PC") };
        assert_eq!(sold, expected);
    }

    #[test]
    fn join_disjoint_headers_is_product() {
        let mut db = DbState::new();
        db.insert_relation("A", rel! { ["x"] => (1,), (2,) });
        db.insert_relation("B", rel! { ["y"] => (10,), (20,), (30,) });
        let p = RaExpr::base("A").join(RaExpr::base("B")).eval(&db).unwrap();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn join_equal_headers_is_intersection() {
        let mut db = DbState::new();
        db.insert_relation("A", rel! { ["x"] => (1,), (2,) });
        db.insert_relation("B", rel! { ["x"] => (2,), (3,) });
        let p = RaExpr::base("A").join(RaExpr::base("B")).eval(&db).unwrap();
        assert_eq!(p, rel! { ["x"] => (2,) });
    }

    #[test]
    fn join_with_empty_side() {
        let mut db = DbState::new();
        db.insert_relation("A", rel! { ["x"] => (1,) });
        db.insert_relation("B", Relation::empty(AttrSet::from_names(&["x", "y"])));
        let p = RaExpr::base("A").join(RaExpr::base("B")).eval(&db).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.attrs(), &AttrSet::from_names(&["x", "y"]));
    }

    #[test]
    fn parallel_join_matches_serial_on_large_input() {
        // Large enough to cross PAR_JOIN_MIN_TUPLES; run the same join at
        // 1 and 4 workers and require identical results.
        let mut db = DbState::new();
        let mut big = Relation::empty(AttrSet::from_names(&["k", "a"]));
        let mut other = Relation::empty(AttrSet::from_names(&["k", "b"]));
        // Tuples are in canonical (sorted-header) order: {a, k} / {b, k}.
        for i in 0..900i64 {
            big.insert(Tuple::new(vec![Value::int(i), Value::int(i % 211)])).unwrap();
            other.insert(Tuple::new(vec![Value::int(i * 7), Value::int(i % 211)])).unwrap();
        }
        db.insert_relation("Big", big);
        db.insert_relation("Other", other);
        let e = RaExpr::base("Big").join(RaExpr::base("Other"));
        // Serialize against other exec-override users in this binary.
        let serial = exec::with_threads_for_test(1, || e.eval(&db).unwrap());
        let parallel = exec::with_threads_for_test(4, || e.eval(&db).unwrap());
        assert_eq!(serial, parallel);
        assert!(serial.len() >= 900);
    }

    #[test]
    fn select_and_project() {
        let db = fig1_db();
        let q = RaExpr::base("Sale")
            .select(Predicate::attr_eq("clerk", "Mary"))
            .project_names(&["item"]);
        let r = q.eval(&db).unwrap();
        assert_eq!(r, rel! { ["item"] => ("TV set",), ("VCR",) });
    }

    #[test]
    fn union_diff_intersect() {
        let db = fig1_db();
        let sale_clerks = RaExpr::base("Sale").project_names(&["clerk"]);
        let emp_clerks = RaExpr::base("Emp").project_names(&["clerk"]);
        let union = sale_clerks.clone().union(emp_clerks.clone()).eval(&db).unwrap();
        assert_eq!(union, rel! { ["clerk"] => ("Mary",), ("John",), ("Paula",) });
        let diff = emp_clerks.clone().diff(sale_clerks.clone()).eval(&db).unwrap();
        assert_eq!(diff, rel! { ["clerk"] => ("Paula",) });
        let both = emp_clerks.intersect(sale_clerks).eval(&db).unwrap();
        assert_eq!(both, rel! { ["clerk"] => ("Mary",), ("John",) });
    }

    #[test]
    fn example_11_complement_c1() {
        // C1 = Emp ∖ π_{clerk,age}(Sold) = {(Paula, 32)}.
        let db = fig1_db();
        let sold = RaExpr::base("Sale").join(RaExpr::base("Emp"));
        let c1 = RaExpr::base("Emp").diff(sold.project_names(&["clerk", "age"]));
        let r = c1.eval(&db).unwrap();
        assert_eq!(r, rel! { ["clerk", "age"] => ("Paula", 32) });
    }

    #[test]
    fn rename_eval_permutes_layout() {
        let db = fig1_db();
        let e = RaExpr::base("Emp").rename(vec![(Attr::new("age"), Attr::new("years"))]);
        let r = e.eval(&db).unwrap();
        assert_eq!(r.attrs(), &AttrSet::from_names(&["clerk", "years"]));
        // {clerk, years}: clerk first now (was age first in {age, clerk}).
        let expected = rel! { ["clerk", "years"] => ("Mary", 23), ("John", 25), ("Paula", 32) };
        assert_eq!(r, expected);
    }

    #[test]
    fn rename_then_join_on_new_name() {
        // Self-join Emp with a renamed copy to find pairs with equal age.
        let mut db = fig1_db();
        db.insert_relation("Emp2", rel! { ["colleague", "age"] => ("Zoe", 23), ("Abe", 40) });
        let e = RaExpr::base("Emp").join(RaExpr::base("Emp2"));
        let r = e.eval(&db).unwrap();
        // join on common attr age: Mary(23) matches Zoe(23).
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn build_side_swap_is_transparent() {
        // Larger left side triggers the swap; result must be identical.
        let mut db = DbState::new();
        db.insert_relation("Big", rel! { ["k", "a"] => (1, 10), (2, 20), (3, 30), (4, 40) });
        db.insert_relation("Small", rel! { ["k", "b"] => (2, 200), (3, 300) });
        let ab = RaExpr::base("Big").join(RaExpr::base("Small")).eval(&db).unwrap();
        let ba = RaExpr::base("Small").join(RaExpr::base("Big")).eval(&db).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 2);
    }
}
