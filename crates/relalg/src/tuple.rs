//! Tuples.
//!
//! A [`Tuple`] is a sequence of [`Value`]s aligned with the sorted
//! attribute header of the relation that holds it. The header itself is
//! *not* stored in the tuple; operators compute positional mappings from
//! headers once and then work purely on indices.

use crate::value::Value;
use std::fmt;

/// A tuple: values in the order of the owning relation's sorted header.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values already in header order.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(values.into_boxed_slice())
    }

    /// The arity of the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// All values in header order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Projects the tuple onto the given column positions (computed via
    /// [`crate::AttrSet::positions_in`]).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenation used by joins: `self` provides the values for its own
    /// header, `other` the values for columns unique to the right side; the
    /// `layout` slice says, for each output column, where to take the value
    /// from (see [`JoinLayout`]).
    pub fn merge(&self, other: &Tuple, layout: &[ColSource]) -> Tuple {
        Tuple(
            layout
                .iter()
                .map(|src| match *src {
                    ColSource::Left(i) => self.0[i].clone(),
                    ColSource::Right(i) => other.0[i].clone(),
                })
                .collect(),
        )
    }
}

/// Where an output column of a join takes its value from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColSource {
    /// Column `i` of the left input.
    Left(usize),
    /// Column `i` of the right input.
    Right(usize),
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::int(v)).collect())
    }

    #[test]
    fn project_by_positions() {
        let tp = t(&[10, 20, 30]);
        assert_eq!(tp.project(&[2, 0]), t(&[30, 10]));
        assert_eq!(tp.project(&[]), t(&[]));
    }

    #[test]
    fn merge_by_layout() {
        let left = t(&[1, 2]);
        let right = t(&[9, 8]);
        let layout = [
            ColSource::Left(0),
            ColSource::Right(1),
            ColSource::Left(1),
        ];
        assert_eq!(left.merge(&right, &layout), t(&[1, 8, 2]));
    }

    #[test]
    fn ordering_is_lexicographic_on_values() {
        assert!(t(&[1, 5]) < t(&[2, 0]));
        assert!(t(&[1, 5]) < t(&[1, 6]));
    }

    #[test]
    fn display() {
        let tp = Tuple::new(vec![Value::str("Mary"), Value::int(23)]);
        assert_eq!(tp.to_string(), "('Mary', 23)");
    }
}
