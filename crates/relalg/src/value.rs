//! The attribute value domain.
//!
//! The paper works in the untyped relational model: a tuple is a function
//! from attributes to an abstract domain with equality. For practical
//! workloads (selection predicates, the star-schema generator) we provide
//! integers, strings, booleans and totally-ordered doubles. Comparison
//! across variants is defined by variant rank followed by payload — this
//! gives [`Value`] a total order so relations can live in ordered sets and
//! comparisons never fail at runtime.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A totally ordered `f64` wrapper. NaNs are ordered greater than all
/// other values and equal to each other (the usual `total_cmp` order),
/// which lets doubles participate in ordered relations.
#[derive(Clone, Copy, Debug)]
pub struct F64(pub f64);

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

/// A single attribute value.
///
/// Strings are reference counted so that wide tuples and projections copy
/// cheaply.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Totally-ordered double.
    Double(F64),
    /// Interned-by-refcount string.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Convenience constructor for integers.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Convenience constructor for doubles.
    pub fn double(d: f64) -> Value {
        Value::Double(F64(d))
    }

    /// A short name of the variant, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Str(_) => "str",
        }
    }

    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        // Sizes beyond i64::MAX cannot occur for in-memory collections;
        // saturate rather than panic if one ever does.
        Value::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(F64(d))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // `{:?}` keeps a trailing `.0` on integral doubles so that the
            // printed form re-parses as a double, not an int.
            Value::Double(F64(d)) => write!(f, "{d:?}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ordering() {
        assert!(Value::int(1) < Value::int(2));
        assert_eq!(Value::int(5), Value::from(5i32));
    }

    #[test]
    fn str_ordering_and_equality() {
        assert!(Value::str("a") < Value::str("b"));
        assert_eq!(Value::str("x"), Value::from("x"));
    }

    #[test]
    fn cross_variant_total_order() {
        // Variant rank: Bool < Int < Double < Str.
        assert!(Value::from(true) < Value::int(0));
        assert!(Value::int(i64::MAX) < Value::double(0.0));
        assert!(Value::double(f64::INFINITY) < Value::str(""));
    }

    #[test]
    fn doubles_are_totally_ordered() {
        let nan = Value::double(f64::NAN);
        assert_eq!(nan, Value::double(f64::NAN));
        assert!(Value::double(1.0) < nan);
        assert!(Value::double(-0.0) < Value::double(0.0)); // total_cmp order
    }

    #[test]
    fn display_quotes_strings_only() {
        assert_eq!(Value::str("Mary").to_string(), "'Mary'");
        assert_eq!(Value::int(23).to_string(), "23");
        assert_eq!(Value::from(true).to_string(), "true");
    }
}
