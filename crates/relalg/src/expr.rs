//! The relational algebra AST.
//!
//! Views, queries, complements, inverse expressions and maintenance
//! expressions are all values of [`RaExpr`]. The variant set matches the
//! algebra the paper uses: selection, projection, natural join, union,
//! difference (plus intersection and attribute renaming for convenience,
//! and a constant empty relation which the complement algebra produces
//! when a complement is provably empty).

use crate::attrs::AttrSet;
use crate::database::DbState;
use crate::error::{RelalgError, Result};
use crate::predicate::Predicate;
use crate::relation::Relation;
use crate::schema::Catalog;
use crate::symbol::{Attr, RelName};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A relational algebra expression.
///
/// Children are [`Arc`]-shared: cloning an expression is a shallow
/// reference-count bump, and rewrites that leave a subtree untouched
/// ([`RaExpr::substitute`], the maintenance layer's stored-state folding)
/// return the *same* allocation. The evaluator's memo cache exploits
/// this: repeated subtrees produced by substitution share pointers, so
/// cache keys are cheap and pointer equality is a valid fast path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RaExpr {
    /// A reference to a named relation (base relation or stored view).
    Base(RelName),
    /// The constant empty relation over the given header.
    Empty(AttrSet),
    /// `σ_pred(input)`.
    Select(Arc<RaExpr>, Predicate),
    /// `π_attrs(input)`; `attrs ⊆ attrs(input)` is required.
    Project(Arc<RaExpr>, AttrSet),
    /// Natural join `left ⋈ right` (cartesian product when headers are
    /// disjoint).
    Join(Arc<RaExpr>, Arc<RaExpr>),
    /// `left ∪ right` (same headers required).
    Union(Arc<RaExpr>, Arc<RaExpr>),
    /// `left ∖ right` (same headers required).
    Diff(Arc<RaExpr>, Arc<RaExpr>),
    /// `left ∩ right` (same headers required).
    Intersect(Arc<RaExpr>, Arc<RaExpr>),
    /// `ρ` — renames attributes; pairs are `(from, to)`.
    Rename(Arc<RaExpr>, Vec<(Attr, Attr)>),
}

/// Anything that can resolve the header of a named relation: a [`Catalog`]
/// (schema-level) or a [`DbState`] (instance-level, e.g. for warehouse
/// states whose views are not catalogued base relations).
pub trait HeaderResolver {
    /// The attribute set of `name`.
    fn header_of(&self, name: RelName) -> Result<AttrSet>;
}

impl HeaderResolver for Catalog {
    fn header_of(&self, name: RelName) -> Result<AttrSet> {
        Ok(self.schema(name)?.attrs().clone())
    }
}

impl HeaderResolver for DbState {
    fn header_of(&self, name: RelName) -> Result<AttrSet> {
        Ok(self.relation(name)?.attrs().clone())
    }
}

/// A resolver over two layered sources; the first one wins.
impl<A: HeaderResolver, B: HeaderResolver> HeaderResolver for (&A, &B) {
    fn header_of(&self, name: RelName) -> Result<AttrSet> {
        self.0.header_of(name).or_else(|_| self.1.header_of(name))
    }
}

impl RaExpr {
    /// Reference to a named relation.
    pub fn base(name: impl Into<RelName>) -> RaExpr {
        RaExpr::Base(name.into())
    }

    /// The constant empty relation over `attrs`.
    pub fn empty(attrs: AttrSet) -> RaExpr {
        RaExpr::Empty(attrs)
    }

    /// `σ_pred(self)`.
    pub fn select(self, pred: Predicate) -> RaExpr {
        RaExpr::Select(Arc::new(self), pred)
    }

    /// `π_attrs(self)`.
    pub fn project(self, attrs: AttrSet) -> RaExpr {
        RaExpr::Project(Arc::new(self), attrs)
    }

    /// `π` onto named attributes.
    pub fn project_names(self, names: &[&str]) -> RaExpr {
        self.project(AttrSet::from_names(names))
    }

    /// Natural join.
    pub fn join(self, other: RaExpr) -> RaExpr {
        RaExpr::Join(Arc::new(self), Arc::new(other))
    }

    /// Set union.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union(Arc::new(self), Arc::new(other))
    }

    /// Set difference.
    pub fn diff(self, other: RaExpr) -> RaExpr {
        RaExpr::Diff(Arc::new(self), Arc::new(other))
    }

    /// Set intersection.
    pub fn intersect(self, other: RaExpr) -> RaExpr {
        RaExpr::Intersect(Arc::new(self), Arc::new(other))
    }

    /// Attribute renaming.
    pub fn rename(self, pairs: Vec<(Attr, Attr)>) -> RaExpr {
        RaExpr::Rename(Arc::new(self), pairs)
    }

    /// Joins all expressions in `items` left to right; `None` if empty.
    pub fn join_all(items: impl IntoIterator<Item = RaExpr>) -> Option<RaExpr> {
        items.into_iter().reduce(RaExpr::join)
    }

    /// Unions all expressions in `items` left to right; `None` if empty.
    pub fn union_all(items: impl IntoIterator<Item = RaExpr>) -> Option<RaExpr> {
        items.into_iter().reduce(RaExpr::union)
    }

    /// Infers the output header, validating the expression against the
    /// resolver (this is the static type check of the algebra).
    pub fn attrs(&self, resolver: &impl HeaderResolver) -> Result<AttrSet> {
        match self {
            RaExpr::Base(name) => resolver.header_of(*name),
            RaExpr::Empty(attrs) => Ok(attrs.clone()),
            RaExpr::Select(input, pred) => {
                let header = input.attrs(resolver)?;
                for a in pred.attrs().iter() {
                    if !header.contains(a) {
                        return Err(RelalgError::UnknownAttribute { attr: a, header });
                    }
                }
                Ok(header)
            }
            RaExpr::Project(input, wanted) => {
                let header = input.attrs(resolver)?;
                if !wanted.is_subset(&header) {
                    return Err(RelalgError::ProjectionNotSubset {
                        wanted: wanted.clone(),
                        header,
                    });
                }
                Ok(wanted.clone())
            }
            RaExpr::Join(l, r) => Ok(l.attrs(resolver)?.union(&r.attrs(resolver)?)),
            RaExpr::Union(l, r) | RaExpr::Diff(l, r) | RaExpr::Intersect(l, r) => {
                let lh = l.attrs(resolver)?;
                let rh = r.attrs(resolver)?;
                if lh != rh {
                    return Err(RelalgError::HeaderMismatch { left: lh, right: rh });
                }
                Ok(lh)
            }
            RaExpr::Rename(input, pairs) => {
                let header = input.attrs(resolver)?;
                rename_header(&header, pairs)
            }
        }
    }

    /// The set of named relations the expression refers to.
    pub fn base_relations(&self) -> std::collections::BTreeSet<RelName> {
        let mut out = std::collections::BTreeSet::new();
        self.visit(&mut |e| {
            if let RaExpr::Base(n) = e {
                out.insert(*n);
            }
        });
        out
    }

    /// Depth-first traversal.
    pub fn visit(&self, f: &mut impl FnMut(&RaExpr)) {
        f(self);
        match self {
            RaExpr::Base(_) | RaExpr::Empty(_) => {}
            RaExpr::Select(i, _) | RaExpr::Project(i, _) | RaExpr::Rename(i, _) => {
                i.visit(f);
            }
            RaExpr::Join(l, r)
            | RaExpr::Union(l, r)
            | RaExpr::Diff(l, r)
            | RaExpr::Intersect(l, r) => {
                l.visit(f);
                r.visit(f);
            }
        }
    }

    /// Replaces every reference to a named relation by the mapped
    /// expression (identity for unmapped names). This is the workhorse of
    /// the paper's Step 3: substituting the inverse expressions `W⁻¹` for
    /// base relations turns a source query into a warehouse query
    /// (Theorem 3.1) and a maintenance expression into one over warehouse
    /// views only (Example 4.1).
    pub fn substitute(&self, map: &BTreeMap<RelName, RaExpr>) -> RaExpr {
        match self {
            RaExpr::Base(n) => map.get(n).cloned().unwrap_or(RaExpr::Base(*n)),
            RaExpr::Empty(a) => RaExpr::Empty(a.clone()),
            RaExpr::Select(i, p) => RaExpr::Select(Self::subst_arc(i, map), p.clone()),
            RaExpr::Project(i, a) => RaExpr::Project(Self::subst_arc(i, map), a.clone()),
            RaExpr::Join(l, r) => {
                RaExpr::Join(Self::subst_arc(l, map), Self::subst_arc(r, map))
            }
            RaExpr::Union(l, r) => {
                RaExpr::Union(Self::subst_arc(l, map), Self::subst_arc(r, map))
            }
            RaExpr::Diff(l, r) => {
                RaExpr::Diff(Self::subst_arc(l, map), Self::subst_arc(r, map))
            }
            RaExpr::Intersect(l, r) => {
                RaExpr::Intersect(Self::subst_arc(l, map), Self::subst_arc(r, map))
            }
            RaExpr::Rename(i, p) => RaExpr::Rename(Self::subst_arc(i, map), p.clone()),
        }
    }

    /// [`RaExpr::substitute`] over a shared subtree: returns the *same*
    /// allocation (a refcount bump) when the subtree contains no mapped
    /// base relation, so substitution only reallocates the spine that
    /// actually changes.
    fn subst_arc(e: &Arc<RaExpr>, map: &BTreeMap<RelName, RaExpr>) -> Arc<RaExpr> {
        match e.as_ref() {
            RaExpr::Base(n) => match map.get(n) {
                Some(r) => Arc::new(r.clone()),
                None => Arc::clone(e),
            },
            RaExpr::Empty(_) => Arc::clone(e),
            RaExpr::Select(i, p) => {
                let si = Self::subst_arc(i, map);
                if Arc::ptr_eq(&si, i) {
                    Arc::clone(e)
                } else {
                    Arc::new(RaExpr::Select(si, p.clone()))
                }
            }
            RaExpr::Project(i, a) => {
                let si = Self::subst_arc(i, map);
                if Arc::ptr_eq(&si, i) {
                    Arc::clone(e)
                } else {
                    Arc::new(RaExpr::Project(si, a.clone()))
                }
            }
            RaExpr::Rename(i, p) => {
                let si = Self::subst_arc(i, map);
                if Arc::ptr_eq(&si, i) {
                    Arc::clone(e)
                } else {
                    Arc::new(RaExpr::Rename(si, p.clone()))
                }
            }
            RaExpr::Join(l, r)
            | RaExpr::Union(l, r)
            | RaExpr::Diff(l, r)
            | RaExpr::Intersect(l, r) => {
                let sl = Self::subst_arc(l, map);
                let sr = Self::subst_arc(r, map);
                if Arc::ptr_eq(&sl, l) && Arc::ptr_eq(&sr, r) {
                    return Arc::clone(e);
                }
                Arc::new(match e.as_ref() {
                    RaExpr::Join(..) => RaExpr::Join(sl, sr),
                    RaExpr::Union(..) => RaExpr::Union(sl, sr),
                    RaExpr::Diff(..) => RaExpr::Diff(sl, sr),
                    _ => RaExpr::Intersect(sl, sr),
                })
            }
        }
    }

    /// Number of AST nodes (a cheap complexity measure reported by the
    /// experiments).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Evaluates the expression against a state. See [`crate::eval`].
    pub fn eval(&self, db: &DbState) -> Result<Relation> {
        crate::eval::eval(self, db)
    }

    /// Parses the textual form. See [`crate::parse`] for the grammar.
    pub fn parse(text: &str) -> Result<RaExpr> {
        crate::parse::parse_expr(text)
    }

    /// Algebraic simplification. See [`crate::simplify`].
    pub fn simplified(&self, resolver: &impl HeaderResolver) -> Result<RaExpr> {
        crate::simplify::simplify(self, resolver)
    }
}

/// Applies rename pairs to a header, validating that sources exist and
/// that targets do not collide.
pub fn rename_header(header: &AttrSet, pairs: &[(Attr, Attr)]) -> Result<AttrSet> {
    let sources = AttrSet::from_iter(pairs.iter().map(|(f, _)| *f));
    if sources.len() != pairs.len() {
        // Duplicate source attribute.
        let (f, t) = pairs[0];
        return Err(RelalgError::BadRename {
            from: f,
            to: t,
            header: header.clone(),
        });
    }
    let mut out: Vec<Attr> = Vec::with_capacity(header.len());
    for a in header.iter() {
        match pairs.iter().find(|(f, _)| *f == a) {
            Some(&(_, t)) => out.push(t),
            None => out.push(a),
        }
    }
    for (f, t) in pairs {
        if !header.contains(*f) {
            return Err(RelalgError::BadRename {
                from: *f,
                to: *t,
                header: header.clone(),
            });
        }
    }
    let result = AttrSet::from_iter(out.iter().copied());
    if result.len() != header.len() {
        let (f, t) = pairs[0];
        return Err(RelalgError::BadRename {
            from: f,
            to: t,
            header: header.clone(),
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_schema("Sale", &["item", "clerk"]).unwrap();
        c.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
        c
    }

    #[test]
    fn header_inference_join() {
        let c = catalog();
        let sold = RaExpr::base("Sale").join(RaExpr::base("Emp"));
        assert_eq!(
            sold.attrs(&c).unwrap(),
            AttrSet::from_names(&["item", "clerk", "age"])
        );
    }

    #[test]
    fn header_inference_errors() {
        let c = catalog();
        assert!(RaExpr::base("Nope").attrs(&c).is_err());
        // projection outside header
        let e = RaExpr::base("Sale").project_names(&["age"]);
        assert!(matches!(
            e.attrs(&c),
            Err(RelalgError::ProjectionNotSubset { .. })
        ));
        // selection on unknown attribute
        let e = RaExpr::base("Sale").select(Predicate::attr_eq("age", 1));
        assert!(matches!(e.attrs(&c), Err(RelalgError::UnknownAttribute { .. })));
        // union of different headers
        let e = RaExpr::base("Sale").union(RaExpr::base("Emp"));
        assert!(matches!(e.attrs(&c), Err(RelalgError::HeaderMismatch { .. })));
    }

    #[test]
    fn rename_header_inference() {
        let c = catalog();
        let e = RaExpr::base("Emp").rename(vec![(Attr::new("age"), Attr::new("years"))]);
        assert_eq!(e.attrs(&c).unwrap(), AttrSet::from_names(&["clerk", "years"]));
        // rename source missing
        let e = RaExpr::base("Emp").rename(vec![(Attr::new("zzz"), Attr::new("w"))]);
        assert!(matches!(e.attrs(&c), Err(RelalgError::BadRename { .. })));
        // rename collides with existing attr
        let e = RaExpr::base("Emp").rename(vec![(Attr::new("age"), Attr::new("clerk"))]);
        assert!(matches!(e.attrs(&c), Err(RelalgError::BadRename { .. })));
        // swap is fine
        let e = RaExpr::base("Emp").rename(vec![
            (Attr::new("age"), Attr::new("clerk")),
            (Attr::new("clerk"), Attr::new("age")),
        ]);
        assert_eq!(e.attrs(&c).unwrap(), AttrSet::from_names(&["clerk", "age"]));
    }

    #[test]
    fn base_relations_collects_all() {
        let e = RaExpr::base("Sale")
            .join(RaExpr::base("Emp"))
            .union(RaExpr::base("Sale").join(RaExpr::base("Emp")));
        let names: Vec<&str> = e.base_relations().iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["Emp", "Sale"]);
    }

    #[test]
    fn substitution_replaces_bases() {
        let inverse: BTreeMap<RelName, RaExpr> = [(
            RelName::new("Emp"),
            RaExpr::base("Sold")
                .project_names(&["clerk", "age"])
                .union(RaExpr::base("C1")),
        )]
        .into();
        let q = RaExpr::base("Emp").project_names(&["clerk"]);
        let rewritten = q.substitute(&inverse);
        assert_eq!(
            rewritten,
            RaExpr::base("Sold")
                .project_names(&["clerk", "age"])
                .union(RaExpr::base("C1"))
                .project_names(&["clerk"])
        );
        // Unmapped names stay.
        let q = RaExpr::base("Sale");
        assert_eq!(q.substitute(&inverse), RaExpr::base("Sale"));
    }

    #[test]
    fn size_counts_nodes() {
        let e = RaExpr::base("Sale").join(RaExpr::base("Emp")).project_names(&["clerk"]);
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn layered_resolver() {
        let c = catalog();
        let mut w = DbState::new();
        w.insert_relation("C1", Relation::empty(AttrSet::from_names(&["clerk", "age"])));
        let layered = (&c, &w);
        assert!(RaExpr::base("Emp").attrs(&layered).is_ok());
        assert!(RaExpr::base("C1").attrs(&layered).is_ok());
        assert!(RaExpr::base("C9").attrs(&layered).is_err());
    }

    #[test]
    fn join_all_union_all() {
        assert_eq!(RaExpr::join_all(vec![]), None);
        let e = RaExpr::join_all(vec![RaExpr::base("A"), RaExpr::base("B"), RaExpr::base("C")])
            .unwrap();
        assert_eq!(
            e,
            RaExpr::base("A").join(RaExpr::base("B")).join(RaExpr::base("C"))
        );
        let u = RaExpr::union_all(vec![RaExpr::base("A")]).unwrap();
        assert_eq!(u, RaExpr::base("A"));
    }
}
