//! Algebraic simplification.
//!
//! The substitution steps of the paper (query translation, maintenance
//! expressions, inverse expressions under inclusion dependencies) compose
//! expressions mechanically, which leaves obvious redundancy behind:
//! unions with provably-empty complements, selections with constant-folded
//! predicates, stacked projections. This pass applies standard
//! semantics-preserving rewrites bottom-up:
//!
//! * predicate constant folding; `σ_true(e) = e`, `σ_false(e) = ∅`,
//!   `σ_p(σ_q(e)) = σ_{p∧q}(e)`
//! * `π_{attrs(e)}(e) = e`, `π_Z(π_Y(e)) = π_Z(e)`
//! * `∅`-propagation through every operator
//! * idempotence: `e ∪ e = e`, `e ∩ e = e`, `e ⋈ e = e`, `e ∖ e = ∅`
//! * identity renamings disappear
//!
//! All rewrites preserve the inferred header, so a simplified expression
//! evaluates to the same relation on every state (pinned by a property
//! test in the crate's test suite).

use crate::expr::{HeaderResolver, RaExpr};
use crate::error::Result;
use crate::predicate::Predicate;
use std::sync::Arc;

/// Simplifies `expr` bottom-up. Fails only if the expression does not
/// type-check against `resolver` (simplification needs headers to replace
/// subtrees by `∅` of the right schema).
pub fn simplify(expr: &RaExpr, resolver: &impl HeaderResolver) -> Result<RaExpr> {
    // Type-check once up front; the rewrite itself can then rely on
    // header inference succeeding on any subtree, and propagates the
    // (unreachable) error instead of panicking if that ever changes.
    expr.attrs(resolver)?;
    go(expr, resolver)
}

fn is_empty(e: &RaExpr) -> bool {
    matches!(e, RaExpr::Empty(_))
}

fn go(expr: &RaExpr, r: &impl HeaderResolver) -> Result<RaExpr> {
    Ok(match expr {
        RaExpr::Base(_) | RaExpr::Empty(_) => expr.clone(),
        RaExpr::Select(input, pred) => {
            let input = go(input, r)?;
            let pred = pred.fold();
            match (&input, &pred) {
                (RaExpr::Empty(a), _) => RaExpr::Empty(a.clone()),
                (_, Predicate::True) => input,
                (_, Predicate::False) => RaExpr::Empty(input.attrs(r)?),
                (RaExpr::Select(inner, q), _) => {
                    RaExpr::Select(inner.clone(), q.clone().and(pred))
                }
                _ => RaExpr::Select(Arc::new(input), pred),
            }
        }
        RaExpr::Project(input, wanted) => {
            let input = go(input, r)?;
            if is_empty(&input) {
                return Ok(RaExpr::Empty(wanted.clone()));
            }
            if input.attrs(r)? == *wanted {
                return Ok(input);
            }
            if let RaExpr::Project(inner, _) = &input {
                return Ok(RaExpr::Project(inner.clone(), wanted.clone()));
            }
            RaExpr::Project(Arc::new(input), wanted.clone())
        }
        RaExpr::Join(l, right) => {
            let l = go(l, r)?;
            let rt = go(right, r)?;
            if is_empty(&l) || is_empty(&rt) {
                let attrs = l.attrs(r)?.union(&rt.attrs(r)?);
                return Ok(RaExpr::Empty(attrs));
            }
            if l == rt {
                return Ok(l);
            }
            RaExpr::Join(Arc::new(l), Arc::new(rt))
        }
        RaExpr::Union(l, right) => {
            let l = go(l, r)?;
            let rt = go(right, r)?;
            if is_empty(&l) {
                return Ok(rt);
            }
            if is_empty(&rt) || l == rt {
                return Ok(l);
            }
            RaExpr::Union(Arc::new(l), Arc::new(rt))
        }
        RaExpr::Diff(l, right) => {
            let l = go(l, r)?;
            let rt = go(right, r)?;
            if is_empty(&l) {
                return Ok(l);
            }
            if is_empty(&rt) {
                return Ok(l);
            }
            if l == rt {
                return Ok(RaExpr::Empty(l.attrs(r)?));
            }
            RaExpr::Diff(Arc::new(l), Arc::new(rt))
        }
        RaExpr::Intersect(l, right) => {
            let l = go(l, r)?;
            let rt = go(right, r)?;
            if is_empty(&l) {
                return Ok(l);
            }
            if is_empty(&rt) {
                return Ok(rt);
            }
            if l == rt {
                return Ok(l);
            }
            RaExpr::Intersect(Arc::new(l), Arc::new(rt))
        }
        RaExpr::Rename(input, pairs) => {
            let input = go(input, r)?;
            let effective: Vec<_> = pairs.iter().filter(|(f, t)| f != t).cloned().collect();
            if effective.is_empty() {
                return Ok(input);
            }
            if let RaExpr::Empty(attrs) = &input {
                let renamed = crate::expr::rename_header(attrs, &effective)?;
                return Ok(RaExpr::Empty(renamed));
            }
            RaExpr::Rename(Arc::new(input), effective)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Operand};
    use crate::schema::Catalog;
    use crate::symbol::Attr;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_schema("R", &["a", "b"]).unwrap();
        c.add_schema("S", &["a", "b"]).unwrap();
        c.add_schema("T", &["b", "c"]).unwrap();
        c
    }

    fn simp(text: &str) -> String {
        RaExpr::parse(text)
            .unwrap()
            .simplified(&catalog())
            .unwrap()
            .to_string()
    }

    #[test]
    fn empty_propagation() {
        assert_eq!(simp("R join empty[b, c]"), "empty[a, b, c]");
        assert_eq!(simp("empty[a, b] union R"), "R");
        assert_eq!(simp("R union empty[a, b]"), "R");
        assert_eq!(simp("empty[a, b] minus R"), "empty[a, b]");
        assert_eq!(simp("R minus empty[a, b]"), "R");
        assert_eq!(simp("R intersect empty[a, b]"), "empty[a, b]");
        assert_eq!(simp("pi[a](empty[a, b])"), "empty[a]");
        assert_eq!(simp("sigma[a = 1](empty[a, b])"), "empty[a, b]");
        assert_eq!(simp("rho[a -> z](empty[a, b])"), "empty[b, z]");
    }

    #[test]
    fn idempotence() {
        assert_eq!(simp("R union R"), "R");
        assert_eq!(simp("R intersect R"), "R");
        assert_eq!(simp("R join R"), "R");
        assert_eq!(simp("R minus R"), "empty[a, b]");
        // different relations stay
        assert_eq!(simp("R union S"), "(R union S)");
    }

    #[test]
    fn selection_rules() {
        assert_eq!(simp("sigma[true](R)"), "R");
        assert_eq!(simp("sigma[false](R)"), "empty[a, b]");
        assert_eq!(simp("sigma[1 < 2](R)"), "R");
        assert_eq!(simp("sigma[a = 1](sigma[b = 2](R))"), "sigma[b = 2 and a = 1](R)");
        // ground subterm folds away inside a conjunction
        assert_eq!(simp("sigma[a = 1 and 2 = 2](R)"), "sigma[a = 1](R)");
    }

    #[test]
    fn projection_rules() {
        assert_eq!(simp("pi[a, b](R)"), "R");
        assert_eq!(simp("pi[a](pi[a, b](R))"), "pi[a](R)");
        assert_eq!(simp("pi[a](R)"), "pi[a](R)");
    }

    #[test]
    fn rename_rules() {
        assert_eq!(simp("rho[a -> a](R)"), "R");
        assert_eq!(simp("rho[a -> z](R)"), "rho[a -> z](R)");
    }

    #[test]
    fn nested_cascade() {
        // (R minus R) join T = empty join T = empty over all attrs,
        // then union with S leaves S.
        assert_eq!(simp("pi[a, b]((R minus R) join T) union S"), "S");
    }

    #[test]
    fn simplify_rejects_ill_typed() {
        let e = RaExpr::parse("R union T").unwrap();
        assert!(e.simplified(&catalog()).is_err());
    }

    #[test]
    fn semantics_preserved_on_instance() {
        use crate::database::DbState;
        use crate::rel;
        let c = catalog();
        let mut db = DbState::new();
        db.insert_relation("R", rel! { ["a", "b"] => (1, 10), (2, 20) });
        db.insert_relation("S", rel! { ["a", "b"] => (2, 20), (3, 30) });
        db.insert_relation("T", rel! { ["b", "c"] => (10, 100), (20, 200) });
        for text in [
            "pi[a, b](sigma[a = 2 and true](R join T)) union (S minus S)",
            "pi[a](pi[a, b](R union S))",
            "R join R join T",
            "sigma[not a != 2](R)",
        ] {
            let e = RaExpr::parse(text).unwrap();
            let s = e.simplified(&c).unwrap();
            assert_eq!(e.eval(&db).unwrap(), s.eval(&db).unwrap(), "mismatch for {text}");
            assert!(s.size() <= e.size(), "simplify grew {text}");
        }
    }

    #[test]
    fn selection_fold_pushes_not_into_cmp() {
        let e = RaExpr::base("R").select(
            Predicate::cmp(Operand::Attr(Attr::new("a")), CmpOp::Lt, Operand::val(5)).not(),
        );
        let s = e.simplified(&catalog()).unwrap();
        assert_eq!(s.to_string(), "sigma[a >= 5](R)");
    }
}
