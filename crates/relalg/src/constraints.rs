//! Integrity constraints: keys and inclusion dependencies.
//!
//! Theorem 2.2 of the paper computes smaller complements when the schema
//! declares key constraints and *acyclic* inclusion dependencies
//! `π_X(R_i) ⊆ π_X(R_j)` with `X ⊆ attr(R_i) ∩ attr(R_j)`. Foreign keys
//! are the combination of a key on the target and an inclusion dependency
//! into it. Following the paper, at most one key is declared per relation
//! schema and the dependency set must be acyclic.

use crate::attrs::AttrSet;
use crate::error::{RelalgError, Result};
use crate::symbol::RelName;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A (candidate) key constraint: the attributes functionally determine the
/// whole tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Key(pub AttrSet);

/// An inclusion dependency `π_X(from) ⊆ π_X(to)` over the common attribute
/// set `X` (the paper restricts to same-named attribute sequences; general
/// renamed INDs could be added via the rename operator, cf. footnote 3).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InclusionDep {
    /// Relation whose projection is included.
    pub from: RelName,
    /// Relation whose projection includes it.
    pub to: RelName,
    /// The common attribute set `X`.
    pub attrs: AttrSet,
}

impl InclusionDep {
    /// Builds `π_X(from) ⊆ π_X(to)`.
    pub fn new(from: impl Into<RelName>, to: impl Into<RelName>, attrs: AttrSet) -> InclusionDep {
        InclusionDep {
            from: from.into(),
            to: to.into(),
            attrs,
        }
    }
}

impl fmt::Debug for InclusionDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pi_{}({}) <= pi_{}({})",
            self.attrs, self.from, self.attrs, self.to
        )
    }
}

impl fmt::Display for InclusionDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Checks that the dependency graph (edge `from -> to` per IND) is acyclic
/// and returns the relations in a topological order such that every `to`
/// precedes every `from` that depends on it.
///
/// Acyclicity is what makes the inverse-expression substitution of
/// Theorem 2.2 (footnote 3 / Example 2.3 continued) well-founded: a
/// pseudo-view `π_X(R_i)` used while recomputing `R_j` is replaced by
/// `R_i`'s own inverse, which by acyclicity never refers back to `R_j`.
pub fn topological_order(
    relations: impl IntoIterator<Item = RelName>,
    deps: &[InclusionDep],
) -> Result<Vec<RelName>> {
    let nodes: BTreeSet<RelName> = relations.into_iter().collect();
    // Edges from -> to; a node is "ready" when all its `to` targets are out.
    let mut out_edges: BTreeMap<RelName, BTreeSet<RelName>> =
        nodes.iter().map(|&n| (n, BTreeSet::new())).collect();
    let mut in_edges: BTreeMap<RelName, BTreeSet<RelName>> =
        nodes.iter().map(|&n| (n, BTreeSet::new())).collect();
    for d in deps {
        if d.from == d.to && nodes.contains(&d.from) {
            return Err(RelalgError::CyclicInclusionDeps {
                cycle: vec![d.from, d.to],
            });
        }
        if let (Some(o), Some(i)) = (out_edges.get_mut(&d.from), in_edges.get_mut(&d.to)) {
            o.insert(d.to);
            i.insert(d.from);
        }
    }
    // Kahn's algorithm; emit nodes with no remaining outgoing edges first,
    // i.e. IND targets before their sources.
    let mut order = Vec::with_capacity(nodes.len());
    let mut ready: BTreeSet<RelName> = out_edges
        .iter()
        .filter(|(_, outs)| outs.is_empty())
        .map(|(&n, _)| n)
        .collect();
    let mut remaining_out = out_edges.clone();
    while let Some(&n) = ready.iter().next() {
        ready.remove(&n);
        order.push(n);
        for &pred in in_edges.get(&n).into_iter().flatten() {
            if let Some(outs) = remaining_out.get_mut(&pred) {
                outs.remove(&n);
                if outs.is_empty() && !order.contains(&pred) {
                    ready.insert(pred);
                }
            }
        }
    }
    if order.len() != nodes.len() {
        let leftover: BTreeSet<RelName> = nodes
            .iter()
            .filter(|n| !order.contains(n))
            .copied()
            .collect();
        return Err(RelalgError::CyclicInclusionDeps {
            cycle: shortest_cycle(&leftover, &out_edges),
        });
    }
    Ok(order)
}

/// Finds a shortest simple cycle inside the subgraph induced by `nodes`,
/// returned as a closed walk `[s, ..., s]` (the start repeated at the end)
/// so diagnostics can render `s -> ... -> s`. Every node left over by
/// Kahn's algorithm lies on or leads into a cycle, so a BFS from each
/// leftover node along edges that stay inside the leftover set must find
/// one; if the graph were somehow consistent we fall back to listing the
/// leftover nodes rather than panicking.
fn shortest_cycle(
    nodes: &BTreeSet<RelName>,
    out_edges: &BTreeMap<RelName, BTreeSet<RelName>>,
) -> Vec<RelName> {
    let mut best: Option<Vec<RelName>> = None;
    for &start in nodes {
        // BFS from `start` over in-subgraph edges, tracking predecessors.
        let mut pred: BTreeMap<RelName, RelName> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<RelName> = [start].into();
        let mut seen: BTreeSet<RelName> = [start].into();
        let mut closed = false;
        while let Some(n) = queue.pop_front() {
            for &next in out_edges.get(&n).into_iter().flatten() {
                if !nodes.contains(&next) {
                    continue;
                }
                if next == start {
                    // Found a shortest cycle through `start`. The pred chain
                    // from `n` walks back to `start`, so reversing it gives
                    // the forward path; the closing `start` is appended so
                    // the witness renders as `start -> ... -> n -> start`.
                    let mut path = vec![n];
                    let mut cur = n;
                    while let Some(&p) = pred.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    path.push(start);
                    let shorter = match &best {
                        Some(b) => path.len() < b.len(),
                        None => true,
                    };
                    if shorter {
                        best = Some(path);
                    }
                    closed = true;
                    break;
                }
                if seen.insert(next) {
                    pred.insert(next, n);
                    queue.push_back(next);
                }
            }
            if closed {
                break;
            }
        }
    }
    best.unwrap_or_else(|| nodes.iter().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: &str) -> RelName {
        RelName::new(n)
    }

    fn ind(from: &str, to: &str) -> InclusionDep {
        InclusionDep::new(from, to, AttrSet::from_names(&["x"]))
    }

    #[test]
    fn topological_order_targets_first() {
        // R3 <= R1, R2 <= R1 (as in Example 2.3): R1 must come first.
        let order = topological_order(
            [r("R1"), r("R2"), r("R3")],
            &[ind("R3", "R1"), ind("R2", "R1")],
        )
        .unwrap();
        let pos = |n: &str| order.iter().position(|&x| x == r(n)).unwrap();
        assert!(pos("R1") < pos("R2"));
        assert!(pos("R1") < pos("R3"));
    }

    #[test]
    fn chain_order() {
        let order =
            topological_order([r("A"), r("B"), r("C")], &[ind("A", "B"), ind("B", "C")])
                .unwrap();
        assert_eq!(order, vec![r("C"), r("B"), r("A")]);
    }

    #[test]
    fn detects_two_cycle() {
        let err = topological_order([r("A"), r("B")], &[ind("A", "B"), ind("B", "A")])
            .unwrap_err();
        assert!(matches!(err, RelalgError::CyclicInclusionDeps { .. }));
    }

    #[test]
    fn detects_self_loop() {
        let err = topological_order([r("A")], &[ind("A", "A")]).unwrap_err();
        assert!(matches!(err, RelalgError::CyclicInclusionDeps { .. }));
    }

    #[test]
    fn cycle_witness_is_a_closed_minimal_path() {
        // A -> B -> C -> A is the cycle; D merely leads into it and must
        // not appear in the witness.
        let err = topological_order(
            [r("A"), r("B"), r("C"), r("D")],
            &[ind("A", "B"), ind("B", "C"), ind("C", "A"), ind("D", "A")],
        )
        .unwrap_err();
        let RelalgError::CyclicInclusionDeps { cycle } = err else {
            panic!("expected cyclic-IND error");
        };
        assert_eq!(cycle.len(), 4, "closed 3-cycle walk: {cycle:?}");
        assert_eq!(cycle.first(), cycle.last());
        assert!(!cycle.contains(&r("D")), "witness must exclude D: {cycle:?}");
        // Every consecutive pair must be a declared edge.
        let edges: Vec<(RelName, RelName)> =
            vec![(r("A"), r("B")), (r("B"), r("C")), (r("C"), r("A"))];
        for w in cycle.windows(2) {
            assert!(edges.contains(&(w[0], w[1])), "{:?} not an edge", w);
        }
    }

    #[test]
    fn two_cycle_witness_closes() {
        let err = topological_order([r("A"), r("B")], &[ind("A", "B"), ind("B", "A")])
            .unwrap_err();
        let RelalgError::CyclicInclusionDeps { cycle } = err else {
            panic!("expected cyclic-IND error");
        };
        assert_eq!(cycle.len(), 3);
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn no_deps_any_order_complete() {
        let order = topological_order([r("A"), r("B")], &[]).unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn ignores_edges_to_unknown_relations() {
        // An IND mentioning a relation outside the node set is skipped here;
        // Catalog::add_inclusion_dep rejects it earlier.
        let order = topological_order([r("A")], &[ind("A", "Z")]).unwrap();
        assert_eq!(order, vec![r("A")]);
    }

    #[test]
    fn display_inclusion_dep() {
        let d = InclusionDep::new("S", "T", AttrSet::from_names(&["k"]));
        assert_eq!(d.to_string(), "pi_{k}(S) <= pi_{k}(T)");
    }
}
