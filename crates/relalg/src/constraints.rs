//! Integrity constraints: keys and inclusion dependencies.
//!
//! Theorem 2.2 of the paper computes smaller complements when the schema
//! declares key constraints and *acyclic* inclusion dependencies
//! `π_X(R_i) ⊆ π_X(R_j)` with `X ⊆ attr(R_i) ∩ attr(R_j)`. Foreign keys
//! are the combination of a key on the target and an inclusion dependency
//! into it. Following the paper, at most one key is declared per relation
//! schema and the dependency set must be acyclic.

use crate::attrs::AttrSet;
use crate::error::{RelalgError, Result};
use crate::symbol::RelName;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A (candidate) key constraint: the attributes functionally determine the
/// whole tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Key(pub AttrSet);

/// An inclusion dependency `π_X(from) ⊆ π_X(to)` over the common attribute
/// set `X` (the paper restricts to same-named attribute sequences; general
/// renamed INDs could be added via the rename operator, cf. footnote 3).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct InclusionDep {
    /// Relation whose projection is included.
    pub from: RelName,
    /// Relation whose projection includes it.
    pub to: RelName,
    /// The common attribute set `X`.
    pub attrs: AttrSet,
}

impl InclusionDep {
    /// Builds `π_X(from) ⊆ π_X(to)`.
    pub fn new(from: impl Into<RelName>, to: impl Into<RelName>, attrs: AttrSet) -> InclusionDep {
        InclusionDep {
            from: from.into(),
            to: to.into(),
            attrs,
        }
    }
}

impl fmt::Debug for InclusionDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pi_{}({}) <= pi_{}({})",
            self.attrs, self.from, self.attrs, self.to
        )
    }
}

impl fmt::Display for InclusionDep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Checks that the dependency graph (edge `from -> to` per IND) is acyclic
/// and returns the relations in a topological order such that every `to`
/// precedes every `from` that depends on it.
///
/// Acyclicity is what makes the inverse-expression substitution of
/// Theorem 2.2 (footnote 3 / Example 2.3 continued) well-founded: a
/// pseudo-view `π_X(R_i)` used while recomputing `R_j` is replaced by
/// `R_i`'s own inverse, which by acyclicity never refers back to `R_j`.
pub fn topological_order(
    relations: impl IntoIterator<Item = RelName>,
    deps: &[InclusionDep],
) -> Result<Vec<RelName>> {
    let nodes: BTreeSet<RelName> = relations.into_iter().collect();
    // Edges from -> to; a node is "ready" when all its `to` targets are out.
    let mut out_edges: BTreeMap<RelName, BTreeSet<RelName>> =
        nodes.iter().map(|&n| (n, BTreeSet::new())).collect();
    let mut in_edges: BTreeMap<RelName, BTreeSet<RelName>> =
        nodes.iter().map(|&n| (n, BTreeSet::new())).collect();
    for d in deps {
        if d.from == d.to {
            return Err(RelalgError::CyclicInclusionDeps {
                cycle: vec![d.from, d.to],
            });
        }
        if let (Some(o), Some(i)) = (out_edges.get_mut(&d.from), in_edges.get_mut(&d.to)) {
            o.insert(d.to);
            i.insert(d.from);
        }
    }
    // Kahn's algorithm; emit nodes with no remaining outgoing edges first,
    // i.e. IND targets before their sources.
    let mut order = Vec::with_capacity(nodes.len());
    let mut ready: BTreeSet<RelName> = out_edges
        .iter()
        .filter(|(_, outs)| outs.is_empty())
        .map(|(&n, _)| n)
        .collect();
    let mut remaining_out = out_edges.clone();
    while let Some(&n) = ready.iter().next() {
        ready.remove(&n);
        order.push(n);
        for &pred in &in_edges[&n] {
            let outs = remaining_out.get_mut(&pred).expect("known node");
            outs.remove(&n);
            if outs.is_empty() && !order.contains(&pred) {
                ready.insert(pred);
            }
        }
    }
    if order.len() != nodes.len() {
        let cycle: Vec<RelName> = nodes
            .iter()
            .filter(|n| !order.contains(n))
            .copied()
            .collect();
        return Err(RelalgError::CyclicInclusionDeps { cycle });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: &str) -> RelName {
        RelName::new(n)
    }

    fn ind(from: &str, to: &str) -> InclusionDep {
        InclusionDep::new(from, to, AttrSet::from_names(&["x"]))
    }

    #[test]
    fn topological_order_targets_first() {
        // R3 <= R1, R2 <= R1 (as in Example 2.3): R1 must come first.
        let order = topological_order(
            [r("R1"), r("R2"), r("R3")],
            &[ind("R3", "R1"), ind("R2", "R1")],
        )
        .unwrap();
        let pos = |n: &str| order.iter().position(|&x| x == r(n)).unwrap();
        assert!(pos("R1") < pos("R2"));
        assert!(pos("R1") < pos("R3"));
    }

    #[test]
    fn chain_order() {
        let order =
            topological_order([r("A"), r("B"), r("C")], &[ind("A", "B"), ind("B", "C")])
                .unwrap();
        assert_eq!(order, vec![r("C"), r("B"), r("A")]);
    }

    #[test]
    fn detects_two_cycle() {
        let err = topological_order([r("A"), r("B")], &[ind("A", "B"), ind("B", "A")])
            .unwrap_err();
        assert!(matches!(err, RelalgError::CyclicInclusionDeps { .. }));
    }

    #[test]
    fn detects_self_loop() {
        let err = topological_order([r("A")], &[ind("A", "A")]).unwrap_err();
        assert!(matches!(err, RelalgError::CyclicInclusionDeps { .. }));
    }

    #[test]
    fn no_deps_any_order_complete() {
        let order = topological_order([r("A"), r("B")], &[]).unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn ignores_edges_to_unknown_relations() {
        // An IND mentioning a relation outside the node set is skipped here;
        // Catalog::add_inclusion_dep rejects it earlier.
        let order = topological_order([r("A")], &[ind("A", "Z")]).unwrap();
        assert_eq!(order, vec![r("A")]);
    }

    #[test]
    fn display_inclusion_dep() {
        let d = InclusionDep::new("S", "T", AttrSet::from_names(&["k"]));
        assert_eq!(d.to_string(), "pi_{k}(S) <= pi_{k}(T)");
    }
}
