//! Scoped-thread execution layer.
//!
//! Every hot path of the workspace — operator evaluation, complement
//! materialization, maintenance-plan application — fans out over
//! independent units of work (expression subtrees, hash partitions,
//! per-view maintenance steps). This module provides the zero-dependency
//! substrate they share: a worker pool built on [`std::thread::scope`]
//! (no registry crates, no global runtime), with a **determinism
//! contract**: every combinator returns results in input order and picks
//! errors by the smallest input index, so parallel execution is
//! bit-identical to serial execution regardless of scheduling.
//!
//! ## Thread-count policy
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`set_threads`] — a programmatic override (tests, benches),
//! 2. the `DWC_THREADS` environment variable — parsed **strictly**
//!    ([`parse_threads`]): `0`, garbage, and overflow are typed
//!    [`ThreadConfigError`]s that binaries surface once at startup via
//!    [`thread_config`]; library code degrades to serial meanwhile,
//! 3. [`std::thread::available_parallelism`].
//!
//! At `1` every combinator degenerates to the serial loop with zero
//! synchronization and zero spawned threads — the serial fallback is not
//! a special build, it is the same code path.
//!
//! Workers are spawned per combinator invocation and joined before it
//! returns (a *scoped* pool): no detached threads, no channels, borrows
//! of the caller's stack work directly, and a panic in a worker
//! propagates to the caller.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Upper bound accepted from `DWC_THREADS`. Far above any useful width —
/// it exists so a typo like `88888888` is a configuration error instead
/// of a fork bomb.
pub const MAX_THREADS: usize = 512;

/// Why a `DWC_THREADS` value was rejected. Binaries should check
/// [`thread_config`] once at startup and refuse to run on `Err`; library
/// code keeps its no-panic contract by degrading to serial execution
/// until the error is surfaced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ThreadConfigError {
    /// `DWC_THREADS=0` asks for no workers at all; use `1` for serial.
    Zero,
    /// The value is not a plain decimal number.
    NotANumber {
        /// The raw value found in the environment.
        got: String,
    },
    /// The value parses but exceeds [`MAX_THREADS`] (or overflows
    /// `usize`).
    OutOfRange {
        /// The raw value found in the environment.
        got: String,
        /// The maximum accepted worker count.
        max: usize,
    },
}

impl fmt::Display for ThreadConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadConfigError::Zero => {
                write!(f, "DWC_THREADS=0 requests zero workers; use 1 for serial execution")
            }
            ThreadConfigError::NotANumber { got } => {
                write!(f, "DWC_THREADS=`{got}` is not a decimal thread count")
            }
            ThreadConfigError::OutOfRange { got, max } => {
                write!(f, "DWC_THREADS=`{got}` exceeds the maximum of {max} workers")
            }
        }
    }
}

impl std::error::Error for ThreadConfigError {}

/// Strict parser for a `DWC_THREADS` value: plain decimal digits only
/// (surrounding whitespace tolerated), in `1..=MAX_THREADS`. Rejects
/// `0`, signs, garbage, and overflow with a typed error.
pub fn parse_threads(raw: &str) -> Result<usize, ThreadConfigError> {
    let t = raw.trim();
    if t.is_empty() || !t.chars().all(|c| c.is_ascii_digit()) {
        return Err(ThreadConfigError::NotANumber { got: raw.to_owned() });
    }
    match t.parse::<usize>() {
        Ok(0) => Err(ThreadConfigError::Zero),
        Ok(n) if n > MAX_THREADS => {
            Err(ThreadConfigError::OutOfRange { got: raw.to_owned(), max: MAX_THREADS })
        }
        Ok(n) => Ok(n),
        // usize overflow: still "a number", but unusable as a width.
        Err(_) => Err(ThreadConfigError::OutOfRange { got: raw.to_owned(), max: MAX_THREADS }),
    }
}

/// The environment's verdict, computed once per process: `Ok(None)`
/// means `DWC_THREADS` is unset.
fn env_threads() -> &'static Result<Option<usize>, ThreadConfigError> {
    static ENV: OnceLock<Result<Option<usize>, ThreadConfigError>> = OnceLock::new();
    ENV.get_or_init(|| match std::env::var("DWC_THREADS") {
        Ok(v) => parse_threads(&v).map(Some),
        Err(_) => Ok(None),
    })
}

/// Resolves the effective worker count, surfacing a malformed
/// `DWC_THREADS` as a typed error instead of a silent fallback.
/// Binaries call this once at startup; resolution order is
/// [`set_threads`] override > `DWC_THREADS` > hardware.
pub fn thread_config() -> Result<usize, ThreadConfigError> {
    let o = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return Ok(o);
    }
    match env_threads() {
        Ok(Some(n)) => Ok(*n),
        Ok(None) => {
            Ok(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        }
        Err(e) => Err(e.clone()),
    }
}

/// Overrides the worker count for subsequent operations (`0` clears the
/// override and returns control to `DWC_THREADS` / the hardware). Used by
/// the differential test suites to evaluate the same expression at
/// different widths inside one process.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count for parallel operations (≥ 1). See the module docs
/// for the resolution order. A malformed `DWC_THREADS` degrades to `1`
/// (serial, deterministic) here — the typed error is reported by
/// [`thread_config`], which binaries check once at startup.
pub fn threads() -> usize {
    thread_config().unwrap_or(1)
}

/// A fork budget for nested fork–join parallelism: the number of extra
/// threads an operation tree may still spawn. Rooted once per top-level
/// operation (e.g. one `eval` call) and decremented by [`join2`].
pub fn fork_budget() -> AtomicIsize {
    AtomicIsize::new(threads() as isize - 1)
}

/// Deterministic parallel map: applies `f` to every item and returns the
/// results **in input order**. Items are dealt to workers in contiguous
/// chunks; with one worker (or one item) this is exactly `items.iter().map(f)`.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    match try_par_map(items, |t| Ok::<R, std::convert::Infallible>(f(t))) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Fallible deterministic parallel map. All items are attempted; on
/// failure the error with the **smallest item index** is returned, so the
/// reported error does not depend on scheduling.
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut slots: Vec<Option<Result<R, E>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for (input, output) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(|| {
                for (t, slot) in input.iter().zip(output.iter_mut()) {
                    *slot = Some(f(t));
                }
            });
        }
    });
    // Scan in input order: the first error seen is the smallest-index one.
    // Every slot is filled by its worker; if one were somehow missed,
    // recompute the item inline rather than panicking.
    let mut out = Vec::with_capacity(items.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(r) => out.push(r?),
            None => out.push(f(&items[i])?),
        }
    }
    Ok(out)
}

/// Deterministic parallel hash partitioning: splits `items` into
/// `buckets` groups by `key(item) % buckets`. Each bucket preserves the
/// original item order (workers scan contiguous chunks and per-chunk
/// buckets are concatenated in chunk order), so downstream per-bucket
/// processing sees a scheduling-independent sequence.
pub fn par_partition<'a, T: Sync>(
    items: &'a [T],
    buckets: usize,
    key: impl Fn(&T) -> u64 + Sync,
) -> Vec<Vec<&'a T>> {
    let buckets = buckets.max(1);
    let split = |chunk: &'a [T]| -> Vec<Vec<&'a T>> {
        let mut local: Vec<Vec<&T>> = (0..buckets).map(|_| Vec::new()).collect();
        for t in chunk {
            local[(key(t) % buckets as u64) as usize].push(t);
        }
        local
    };
    let workers = threads().min(items.len());
    if workers <= 1 {
        return split(items);
    }
    let chunk = items.len().div_ceil(workers);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    let per_chunk = par_map(&chunks, |c| split(c));
    let mut merged: Vec<Vec<&T>> = (0..buckets).map(|_| Vec::new()).collect();
    for local in per_chunk {
        for (b, mut part) in local.into_iter().enumerate() {
            merged[b].append(&mut part);
        }
    }
    merged
}

/// Fork–join over two closures: runs `a` on a scoped worker and `b` on
/// the current thread when `budget` still has a thread to spend, serially
/// otherwise. Results come back as `(a, b)` either way.
pub fn join2<A, B>(
    budget: &AtomicIsize,
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B)
where
    A: Send,
    B: Send,
{
    if budget.fetch_sub(1, Ordering::AcqRel) > 0 {
        let pair = std::thread::scope(|s| {
            let ha = s.spawn(a);
            let rb = b();
            let ra = match ha.join() {
                Ok(v) => v,
                // Re-raise a worker panic on the caller thread instead of
                // aborting with a nested panic message.
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        });
        budget.fetch_add(1, Ordering::AcqRel);
        pair
    } else {
        budget.fetch_add(1, Ordering::AcqRel);
        (a(), b())
    }
}

/// A process-stable structural hash (SipHash with fixed keys via
/// [`DefaultHasher::new`]): identical values hash identically within a
/// process, independent of any `RandomState`. Used for hash partitioning
/// and for the evaluator's precomputed cache keys.
pub fn stable_hash(value: &impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Runs `f` with the worker count pinned to `n`, restoring the previous
/// override afterwards. Serializes against other callers in the process,
/// because the override is global — this is a helper for differential
/// test suites (serial vs parallel runs of the same computation inside
/// one test binary), not a production API.
#[doc(hidden)]
pub fn with_threads_for_test<R>(n: usize, f: impl FnOnce() -> R) -> R {
    use std::sync::Mutex;
    static LOCK: Mutex<()> = Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let prev = THREAD_OVERRIDE.load(Ordering::SeqCst);
    set_threads(n);
    let result = f();
    set_threads(prev);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        with_threads_for_test(n, f)
    }

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..101).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for n in [1, 2, 4, 7] {
            let got = with_threads(n, || par_map(&items, |x| x * 3));
            assert_eq!(got, expect, "width {n}");
        }
    }

    #[test]
    fn try_par_map_reports_smallest_index_error() {
        let items: Vec<u64> = (0..64).collect();
        for n in [1, 4] {
            let err = with_threads(n, || {
                try_par_map(&items, |&x| if x % 10 == 7 { Err(x) } else { Ok(x) })
            })
            .unwrap_err();
            assert_eq!(err, 7, "width {n}");
        }
    }

    #[test]
    fn par_partition_is_deterministic_and_complete() {
        let items: Vec<u64> = (0..200).map(|i| i * 17 % 111).collect();
        let serial = with_threads(1, || {
            par_partition(&items, 4, |&x| x).iter().map(|b| b.len()).collect::<Vec<_>>()
        });
        let parallel4: Vec<Vec<u64>> = with_threads(4, || {
            par_partition(&items, 4, |&x| x)
                .into_iter()
                .map(|b| b.into_iter().copied().collect())
                .collect()
        });
        assert_eq!(parallel4.iter().map(Vec::len).sum::<usize>(), items.len());
        assert_eq!(serial, parallel4.iter().map(Vec::len).collect::<Vec<_>>());
        for (b, bucket) in parallel4.iter().enumerate() {
            for &x in bucket {
                assert_eq!((x % 4) as usize, b);
            }
        }
    }

    #[test]
    fn join2_runs_both_and_restores_budget() {
        let budget = AtomicIsize::new(1);
        let (a, b) = join2(&budget, || 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        assert_eq!(budget.load(Ordering::SeqCst), 1);
        // Exhausted budget falls back to serial execution.
        let empty = AtomicIsize::new(0);
        let (a, b) = join2(&empty, || 1, || 2);
        assert_eq!((a, b), (1, 2));
        assert_eq!(empty.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn threads_override_and_env() {
        assert_eq!(with_threads(3, threads), 3);
        assert!(threads() >= 1);
        // With an override in force, thread_config never errors.
        assert_eq!(with_threads(3, thread_config), Ok(3));
    }

    #[test]
    fn parse_threads_accepts_plain_counts() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert_eq!(parse_threads(&MAX_THREADS.to_string()), Ok(MAX_THREADS));
    }

    #[test]
    fn parse_threads_rejects_zero_garbage_and_overflow() {
        assert_eq!(parse_threads("0"), Err(ThreadConfigError::Zero));
        for bad in ["", "  ", "abc", "8x", "+8", "-1", "3.5", "0x10"] {
            assert!(
                matches!(parse_threads(bad), Err(ThreadConfigError::NotANumber { .. })),
                "`{bad}` must be NotANumber"
            );
        }
        let over = (MAX_THREADS + 1).to_string();
        assert!(matches!(parse_threads(&over), Err(ThreadConfigError::OutOfRange { .. })));
        // Larger than usize::MAX: overflow is OutOfRange, not a panic.
        assert!(matches!(
            parse_threads("99999999999999999999999999"),
            Err(ThreadConfigError::OutOfRange { .. })
        ));
        // Errors render with the offending value.
        let msg = parse_threads("zap").unwrap_err().to_string();
        assert!(msg.contains("zap"), "{msg}");
    }

    #[test]
    fn stable_hash_is_stable() {
        assert_eq!(stable_hash(&42u64), stable_hash(&42u64));
        assert_ne!(stable_hash(&1u64), stable_hash(&2u64));
    }
}
