//! Set-semantics relations.
//!
//! A [`Relation`] is a sorted attribute header plus a set of tuples of
//! matching arity. The paper's constructions (complements, the one-to-one
//! mapping of Proposition 2.1, the correctness criteria of Theorems
//! 3.1/4.1) all rely on relations being *sets* with a well-defined
//! equality and deterministic iteration.
//!
//! Storage is columnar ([`crate::columns`]): values are interned into a
//! global dictionary and each attribute is a vector of `u32` codes, rows
//! kept in canonical (value-lexicographic) order. Equality, ordering,
//! iteration order, printing and the binary codec are bit-identical to
//! the former `BTreeSet<Tuple>` representation; what changes is cost —
//! set operations and `apply_delta` are sorted merges over code columns,
//! membership is a binary search, and joins probe a cached sorted key
//! index (see [`crate::eval`]). The column store is behind an `Arc`:
//! cloning a relation is a reference bump, and epoch snapshot readers or
//! the eval cache holding the same store share its warm key indexes.

use crate::attrs::AttrSet;
use crate::columns::{self, Code, Columns};
use crate::error::{RelalgError, Result};
use crate::predicate::CompiledPred;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A relation instance: a header and a set of tuples of matching arity.
#[derive(Clone)]
pub struct Relation {
    attrs: AttrSet,
    cols: Arc<Columns>,
}

impl Default for Relation {
    fn default() -> Relation {
        Relation::empty(AttrSet::empty())
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.attrs == other.attrs
            && (Arc::ptr_eq(&self.cols, &other.cols) || self.cols == other.cols)
    }
}

impl Eq for Relation {}

impl PartialOrd for Relation {
    fn partial_cmp(&self, other: &Relation) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Relation {
    fn cmp(&self, other: &Relation) -> std::cmp::Ordering {
        match self.attrs.cmp(&other.attrs) {
            std::cmp::Ordering::Equal => {}
            o => return o,
        }
        if Arc::ptr_eq(&self.cols, &other.cols) {
            return std::cmp::Ordering::Equal;
        }
        columns::cmp_lex(&self.cols, &other.cols)
    }
}

impl Relation {
    /// The empty relation over the given header.
    pub fn empty(attrs: AttrSet) -> Relation {
        let cols = Arc::new(Columns::empty(attrs.len()));
        Relation { attrs, cols }
    }

    /// Builds a relation from a header given as attribute names (in any
    /// order) and rows aligned with *that* order. Rows are permuted into
    /// canonical (sorted-header) order and canonicalized in one batch.
    pub fn from_rows<R>(names: &[&str], rows: impl IntoIterator<Item = R>) -> Result<Relation>
    where
        R: IntoIterator<Item = Value>,
    {
        let given: Vec<crate::symbol::Attr> =
            names.iter().map(|n| crate::symbol::Attr::new(n)).collect();
        let attrs = AttrSet::from_iter(given.iter().copied());
        if attrs.len() != given.len() {
            return Err(RelalgError::ArityMismatch {
                expected: attrs.len(),
                got: given.len(),
            });
        }
        // attr → index in the given order, built once; the permutation
        // lookup is then O(1) per attribute instead of a linear scan.
        let where_given: HashMap<crate::symbol::Attr, usize> =
            given.iter().enumerate().map(|(i, &a)| (a, i)).collect();
        // permutation[k] = index (in the given row) of the k-th canonical attr
        let permutation: Vec<usize> = attrs
            .iter()
            .map(|a| {
                where_given
                    .get(&a)
                    .copied()
                    .ok_or_else(|| RelalgError::UnknownAttribute {
                        attr: a,
                        header: attrs.clone(),
                    })
            })
            .collect::<Result<_>>()?;
        let arity = permutation.len();
        let mut flat: Vec<Code> = Vec::new();
        let mut nrows = 0usize;
        for row in rows {
            let row: Vec<Value> = row.into_iter().collect();
            if row.len() != arity {
                return Err(RelalgError::ArityMismatch {
                    expected: arity,
                    got: row.len(),
                });
            }
            flat.extend(permutation.iter().map(|&i| columns::intern(&row[i])));
            nrows += 1;
        }
        Ok(Relation {
            attrs,
            cols: Arc::new(Columns::from_unsorted_rows(arity, nrows, flat)),
        })
    }

    /// Builds a relation from tuples already in canonical column order —
    /// the batch counterpart of an [`Relation::insert`] loop: one
    /// canonicalization instead of per-tuple ordered insertion.
    pub fn from_tuples(attrs: AttrSet, tuples: impl IntoIterator<Item = Tuple>) -> Result<Relation> {
        let arity = attrs.len();
        let mut flat: Vec<Code> = Vec::new();
        let mut nrows = 0usize;
        for t in tuples {
            if t.arity() != arity {
                return Err(RelalgError::ArityMismatch {
                    expected: arity,
                    got: t.arity(),
                });
            }
            flat.extend(t.values().iter().map(columns::intern));
            nrows += 1;
        }
        Ok(Relation {
            attrs,
            cols: Arc::new(Columns::from_unsorted_rows(arity, nrows, flat)),
        })
    }

    /// Wraps an already-canonical column store (crate-internal: the
    /// operators in [`crate::eval`] and the codec build stores directly).
    pub(crate) fn from_parts(attrs: AttrSet, cols: Columns) -> Relation {
        debug_assert_eq!(attrs.len(), cols.arity());
        Relation {
            attrs,
            cols: Arc::new(cols),
        }
    }

    /// The shared column store (crate-internal; everything outside
    /// `relalg` goes through tuples so it cannot bypass the index layer).
    pub(crate) fn columns(&self) -> &Arc<Columns> {
        &self.cols
    }

    /// The header.
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Number of distinct values taken by `attrs` across the relation —
    /// the cardinality statistic the maintenance planner's selectivity
    /// model consumes. Counted along the cached sorted key index over
    /// those columns, so repeated calls (and subsequent joins on the same
    /// attributes) share one index build. `attrs` must be a subset of the
    /// header; the empty set yields `min(1, len)`.
    pub fn distinct_count(&self, attrs: &AttrSet) -> Result<usize> {
        let positions = attrs.positions_in(&self.attrs).ok_or_else(|| {
            let missing = attrs
                .iter()
                .find(|a| !self.attrs.contains(*a))
                .unwrap_or_else(|| crate::symbol::Attr::new("?"));
            RelalgError::UnknownAttribute {
                attr: missing,
                header: self.attrs.clone(),
            }
        })?;
        Ok(self.cols.distinct_on(&positions))
    }

    /// Membership test: a binary search on canonical order, comparing
    /// values directly so the probe never grows the dictionary.
    pub fn contains(&self, t: &Tuple) -> bool {
        t.arity() == self.attrs.len() && self.cols.find_row(t.values()).is_ok()
    }

    /// Inserts a tuple (must match arity); returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.attrs.len() {
            return Err(RelalgError::ArityMismatch {
                expected: self.attrs.len(),
                got: t.arity(),
            });
        }
        match self.cols.find_row(t.values()) {
            Ok(_) => Ok(false),
            Err(at) => {
                let codes: Vec<Code> = t.values().iter().map(columns::intern).collect();
                Arc::make_mut(&mut self.cols).insert_row(at, &codes);
                Ok(true)
            }
        }
    }

    /// Removes a tuple; returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if t.arity() != self.attrs.len() {
            return false;
        }
        match self.cols.find_row(t.values()) {
            Ok(at) => {
                Arc::make_mut(&mut self.cols).remove_row(at);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates tuples in canonical order. Rows are resolved through the
    /// dictionary up front (one short-lived guard), so no lock is held
    /// while the caller consumes the iterator.
    pub fn iter(&self) -> Rows {
        Rows {
            vals: self.cols.resolve_rows(),
            arity: self.attrs.len(),
            n: self.cols.len(),
            front: 0,
        }
    }

    fn require_same_header(&self, other: &Relation) -> Result<()> {
        if self.attrs != other.attrs {
            return Err(RelalgError::HeaderMismatch {
                left: self.attrs.clone(),
                right: other.attrs.clone(),
            });
        }
        Ok(())
    }

    /// `self ∪ other` (same header required): a sorted merge into buffers
    /// allocated once at the combined capacity. Empty operands degrade to
    /// a reference bump on the other side.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        self.require_same_header(other)?;
        if Arc::ptr_eq(&self.cols, &other.cols) {
            return Ok(self.clone());
        }
        Ok(Relation {
            attrs: self.attrs.clone(),
            cols: Arc::new(columns::union(&self.cols, &other.cols)),
        })
    }

    /// `self ∖ other` (same header required): a sorted merge; when either
    /// side is empty the answer is `self` by reference bump.
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        self.require_same_header(other)?;
        if other.is_empty() || self.is_empty() {
            return Ok(self.clone());
        }
        if Arc::ptr_eq(&self.cols, &other.cols) {
            return Ok(Relation::empty(self.attrs.clone()));
        }
        Ok(Relation {
            attrs: self.attrs.clone(),
            cols: Arc::new(columns::difference(&self.cols, &other.cols)),
        })
    }

    /// `self ∩ other` (same header required): a sorted merge; empty
    /// operands short-circuit.
    pub fn intersect(&self, other: &Relation) -> Result<Relation> {
        self.require_same_header(other)?;
        if self.is_empty() || Arc::ptr_eq(&self.cols, &other.cols) {
            return Ok(self.clone());
        }
        if other.is_empty() {
            return Ok(Relation::empty(self.attrs.clone()));
        }
        Ok(Relation {
            attrs: self.attrs.clone(),
            cols: Arc::new(columns::intersect(&self.cols, &other.cols)),
        })
    }

    /// `π_Z(self)`; `Z` must be a subset of the header. (The paper's
    /// convention that `π_Z(R) = ∅` when `Z ⊄ attr(R)` is applied one
    /// level up, in the PSJ layer, where it is a deliberate notational
    /// device rather than a silent coercion.)
    pub fn project(&self, wanted: &AttrSet) -> Result<Relation> {
        let Some(positions) = wanted.positions_in(&self.attrs) else {
            return Err(RelalgError::ProjectionNotSubset {
                wanted: wanted.clone(),
                header: self.attrs.clone(),
            });
        };
        Ok(Relation {
            attrs: wanted.clone(),
            cols: Arc::new(self.cols.project(&positions)),
        })
    }

    /// Keeps the tuples satisfying `keep`, visited in canonical order.
    pub fn filter(&self, mut keep: impl FnMut(&Tuple) -> bool) -> Relation {
        let arity = self.attrs.len();
        let resolved = self.cols.resolve_rows();
        let mut kept: Vec<u32> = Vec::new();
        for i in 0..self.cols.len() {
            let t: Tuple = resolved[i * arity..(i + 1) * arity]
                .iter()
                .map(|v| (*v).clone())
                .collect();
            if keep(&t) {
                kept.push(i as u32);
            }
        }
        Relation {
            attrs: self.attrs.clone(),
            cols: Arc::new(self.cols.gather_sorted(&kept)),
        }
    }

    /// Selection over a compiled predicate as a tight column scan: rows
    /// are resolved once and evaluated as value slices — no per-row tuple
    /// materialization (the evaluator's σ path).
    pub(crate) fn select_compiled(&self, pred: &CompiledPred) -> Relation {
        let arity = self.attrs.len();
        let resolved = self.cols.resolve_rows();
        let mut kept: Vec<u32> = Vec::new();
        for i in 0..self.cols.len() {
            if pred.eval_values(&resolved[i * arity..(i + 1) * arity]) {
                kept.push(i as u32);
            }
        }
        Relation {
            attrs: self.attrs.clone(),
            cols: Arc::new(self.cols.gather_sorted(&kept)),
        }
    }

    /// True iff `self ⊆ other` (same header required).
    pub fn is_subset(&self, other: &Relation) -> Result<bool> {
        self.require_same_header(other)?;
        if Arc::ptr_eq(&self.cols, &other.cols) {
            return Ok(true);
        }
        Ok(columns::is_subset(&self.cols, &other.cols))
    }

    /// `(self ∖ delete) ∪ insert` in one three-way merge pass — the
    /// delta-composition identity every maintenance path ends with.
    /// Deltas are usually tiny compared to `self`; an empty delta is a
    /// reference bump.
    pub fn apply_delta(&self, insert: &Relation, delete: &Relation) -> Result<Relation> {
        self.require_same_header(insert)?;
        self.require_same_header(delete)?;
        if insert.is_empty() && delete.is_empty() {
            return Ok(self.clone());
        }
        Ok(Relation {
            attrs: self.attrs.clone(),
            cols: Arc::new(columns::apply_delta(&self.cols, &insert.cols, &delete.cols)),
        })
    }
}

/// Owning iterator over a relation's tuples in canonical order; rows were
/// resolved through the dictionary when the iterator was created, so
/// advancing it takes no locks.
pub struct Rows {
    vals: Vec<&'static Value>,
    arity: usize,
    n: usize,
    front: usize,
}

impl Iterator for Rows {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.front >= self.n {
            return None;
        }
        let row = &self.vals[self.front * self.arity..(self.front + 1) * self.arity];
        self.front += 1;
        Some(row.iter().map(|v| (*v).clone()).collect())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.front;
        (left, Some(left))
    }

    fn nth(&mut self, k: usize) -> Option<Tuple> {
        self.front = self.front.saturating_add(k).min(self.n);
        self.next()
    }
}

impl ExactSizeIterator for Rows {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.attrs)?;
        for t in self.iter() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Builds a [`Relation`] literal:
///
/// ```
/// use dwc_relalg::rel;
/// let r = rel! { ["item", "clerk"] => ("TV set", "Mary"), ("PC", "John") };
/// assert_eq!(r.len(), 2);
/// ```
#[macro_export]
macro_rules! rel {
    { [$($name:expr),* $(,)?] => $(($($v:expr),* $(,)?)),* $(,)? } => {
        $crate::Relation::from_rows(
            &[$($name),*],
            vec![$(vec![$($crate::Value::from($v)),*]),*] as Vec<Vec<$crate::Value>>,
        ).expect("rel! literal is well-formed") // lint:allow expect -- macro contract: literals are checked at the use site
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sale() -> Relation {
        Relation::from_rows(
            &["item", "clerk"],
            vec![
                vec![Value::str("TV set"), Value::str("Mary")],
                vec![Value::str("VCR"), Value::str("Mary")],
                vec![Value::str("PC"), Value::str("John")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_permutes_into_canonical_order() {
        // Header sorted => {clerk, item}; row given as (item, clerk).
        let r = sale();
        assert_eq!(r.attrs().to_string(), "{clerk, item}");
        let first = r.iter().next().unwrap();
        // Canonical order of first (lexicographically least) tuple: John, PC.
        assert_eq!(first.get(0), &Value::str("John"));
        assert_eq!(first.get(1), &Value::str("PC"));
    }

    #[test]
    fn from_rows_rejects_wrong_arity() {
        let err = Relation::from_rows(&["a", "b"], vec![vec![Value::int(1)]]).unwrap_err();
        assert!(matches!(err, RelalgError::ArityMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn from_rows_rejects_duplicate_attrs() {
        let err =
            Relation::from_rows(&["a", "a"], Vec::<Vec<Value>>::new()).unwrap_err();
        assert!(matches!(err, RelalgError::ArityMismatch { .. }));
    }

    #[test]
    fn distinct_count_per_attribute_combination() {
        let r = sale();
        let clerk = AttrSet::from_names(&["clerk"]);
        let item = AttrSet::from_names(&["item"]);
        let both = AttrSet::from_names(&["clerk", "item"]);
        assert_eq!(r.distinct_count(&clerk).unwrap(), 2); // Mary, John
        assert_eq!(r.distinct_count(&item).unwrap(), 3);
        assert_eq!(r.distinct_count(&both).unwrap(), r.len());
        assert_eq!(r.distinct_count(&AttrSet::empty()).unwrap(), 1);
        let empty = Relation::empty(r.attrs().clone());
        assert_eq!(empty.distinct_count(&clerk).unwrap(), 0);
        assert_eq!(empty.distinct_count(&AttrSet::empty()).unwrap(), 0);
        assert!(r.distinct_count(&AttrSet::from_names(&["ghost"])).is_err());
    }

    #[test]
    fn set_semantics_dedup() {
        let r = Relation::from_rows(
            &["a"],
            vec![vec![Value::int(1)], vec![Value::int(1)], vec![Value::int(2)]],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn union_difference_intersect() {
        let a = Relation::from_rows(&["x"], vec![vec![Value::int(1)], vec![Value::int(2)]])
            .unwrap();
        let b = Relation::from_rows(&["x"], vec![vec![Value::int(2)], vec![Value::int(3)]])
            .unwrap();
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.difference(&b).unwrap().len(), 1);
        assert_eq!(a.intersect(&b).unwrap().len(), 1);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let a = Relation::empty(AttrSet::from_names(&["x"]));
        let b = Relation::empty(AttrSet::from_names(&["y"]));
        assert!(a.union(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.is_subset(&b).is_err());
    }

    #[test]
    fn project_subset_and_error() {
        let r = sale();
        let p = r.project(&AttrSet::from_names(&["clerk"])).unwrap();
        assert_eq!(p.len(), 2); // Mary, John — set semantics collapse
        assert!(r.project(&AttrSet::from_names(&["age"])).is_err());
    }

    #[test]
    fn project_empty_set_of_attrs() {
        let r = sale();
        let p = r.project(&AttrSet::empty()).unwrap();
        // π_{}(R) for non-empty R is the single empty tuple (dee).
        assert_eq!(p.len(), 1);
        let e = Relation::empty(r.attrs().clone());
        assert_eq!(e.project(&AttrSet::empty()).unwrap().len(), 0);
    }

    #[test]
    fn project_non_prefix_recanonicalizes() {
        // {a, b} with rows whose b-order inverts the a-order; π_b must be
        // re-sorted, not a truncation of the row order.
        let r = rel! { ["a", "b"] => (1, 9), (2, 3) };
        let p = r.project(&AttrSet::from_names(&["b"])).unwrap();
        let rows: Vec<Tuple> = p.iter().collect();
        assert_eq!(rows[0], Tuple::new(vec![Value::int(3)]));
        assert_eq!(rows[1], Tuple::new(vec![Value::int(9)]));
    }

    #[test]
    fn rel_macro() {
        let r = rel! { ["item", "clerk"] => ("TV set", "Mary"), ("PC", "John") };
        assert_eq!(r.len(), 2);
        assert_eq!(r.attrs(), &AttrSet::from_names(&["item", "clerk"]));
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::empty(AttrSet::from_names(&["x"]));
        let t = Tuple::new(vec![Value::int(7)]);
        assert!(r.insert(t.clone()).unwrap());
        assert!(!r.insert(t.clone()).unwrap());
        assert!(r.contains(&t));
        assert!(r.remove(&t));
        assert!(!r.remove(&t));
        assert!(r.insert(Tuple::new(vec![])).is_err());
    }

    #[test]
    fn insert_on_shared_store_does_not_mutate_the_other_handle() {
        // Clone = shared Arc; inserting into one must copy-on-write.
        let a = rel! { ["x"] => (1,), (2,) };
        let mut b = a.clone();
        b.insert(Tuple::new(vec![Value::int(3)])).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert_ne!(a, b);
    }

    #[test]
    fn apply_delta_insert_wins_over_delete() {
        let base = rel! { ["x"] => (1,), (2,) };
        let ins = rel! { ["x"] => (2,), (3,) };
        let del = rel! { ["x"] => (2,) };
        let out = base.apply_delta(&ins, &del).unwrap();
        assert_eq!(out, rel! { ["x"] => (1,), (2,), (3,) });
        // Empty deltas: a reference bump, not a copy.
        let same = base.apply_delta(
            &Relation::empty(base.attrs().clone()),
            &Relation::empty(base.attrs().clone()),
        )
        .unwrap();
        assert_eq!(same, base);
    }

    #[test]
    fn relation_ordering_matches_row_lexicographic_order() {
        let a = rel! { ["x"] => (1,), (2,) };
        let b = rel! { ["x"] => (1,), (3,) };
        let prefix = rel! { ["x"] => (1,) };
        assert!(a < b);
        assert!(prefix < a, "shorter prefix sorts first");
        assert_eq!(a.cmp(&a.clone()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn iter_is_canonical_and_owned() {
        let r = sale();
        let rows: Vec<Tuple> = r.iter().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.iter().nth(2), Some(rows[2].clone()));
        assert_eq!(r.iter().nth(3), None);
        assert_eq!(r.iter().len(), 3);
    }

    #[test]
    fn from_tuples_batches_like_inserts() {
        let attrs = AttrSet::from_names(&["x"]);
        let tuples = vec![
            Tuple::new(vec![Value::int(2)]),
            Tuple::new(vec![Value::int(1)]),
            Tuple::new(vec![Value::int(2)]),
        ];
        let batch = Relation::from_tuples(attrs.clone(), tuples.clone()).unwrap();
        let mut looped = Relation::empty(attrs.clone());
        for t in tuples {
            looped.insert(t).unwrap();
        }
        assert_eq!(batch, looped);
        assert!(Relation::from_tuples(attrs, vec![Tuple::new(vec![])]).is_err());
    }
}
