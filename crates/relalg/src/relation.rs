//! Set-semantics relations.
//!
//! A [`Relation`] is a sorted attribute header plus an ordered set of
//! tuples. The paper's constructions (complements, the one-to-one mapping
//! of Proposition 2.1, the correctness criteria of Theorems 3.1/4.1) all
//! rely on relations being *sets* with a well-defined equality, which
//! `BTreeSet<Tuple>` provides directly, along with deterministic
//! iteration for printing and hashing.

use crate::attrs::AttrSet;
use crate::error::{RelalgError, Result};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A relation instance: a header and a set of tuples of matching arity.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Relation {
    attrs: AttrSet,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// The empty relation over the given header.
    pub fn empty(attrs: AttrSet) -> Relation {
        Relation {
            attrs,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds a relation from a header given as attribute names (in any
    /// order) and rows aligned with *that* order. Rows are permuted into
    /// canonical (sorted-header) order internally.
    pub fn from_rows<R>(names: &[&str], rows: impl IntoIterator<Item = R>) -> Result<Relation>
    where
        R: IntoIterator<Item = Value>,
    {
        let given: Vec<crate::symbol::Attr> =
            names.iter().map(|n| crate::symbol::Attr::new(n)).collect();
        let attrs = AttrSet::from_iter(given.iter().copied());
        if attrs.len() != given.len() {
            return Err(RelalgError::ArityMismatch {
                expected: attrs.len(),
                got: given.len(),
            });
        }
        // permutation[k] = index (in the given row) of the k-th canonical attr
        let permutation: Vec<usize> = attrs
            .iter()
            .map(|a| {
                given
                    .iter()
                    .position(|g| *g == a)
                    .ok_or_else(|| RelalgError::UnknownAttribute {
                        attr: a,
                        header: attrs.clone(),
                    })
            })
            .collect::<Result<_>>()?;
        let mut rel = Relation::empty(attrs);
        for row in rows {
            let row: Vec<Value> = row.into_iter().collect();
            if row.len() != permutation.len() {
                return Err(RelalgError::ArityMismatch {
                    expected: permutation.len(),
                    got: row.len(),
                });
            }
            let tuple = Tuple::new(permutation.iter().map(|&i| row[i].clone()).collect());
            rel.tuples.insert(tuple);
        }
        Ok(rel)
    }

    /// The header.
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Inserts a tuple (must match arity); returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.attrs.len() {
            return Err(RelalgError::ArityMismatch {
                expected: self.attrs.len(),
                got: t.arity(),
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Removes a tuple; returns whether it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.tuples.remove(t)
    }

    /// Iterates tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// The underlying tuple set.
    pub fn tuples(&self) -> &BTreeSet<Tuple> {
        &self.tuples
    }

    fn require_same_header(&self, other: &Relation) -> Result<()> {
        if self.attrs != other.attrs {
            return Err(RelalgError::HeaderMismatch {
                left: self.attrs.clone(),
                right: other.attrs.clone(),
            });
        }
        Ok(())
    }

    /// `self ∪ other` (same header required). Clones the larger operand
    /// and extends it with the smaller one, so cost scales with the
    /// smaller side plus one bulk clone instead of always re-cloning
    /// `self`.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        self.require_same_header(other)?;
        let (big, small) = if self.len() >= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = big.clone();
        out.tuples.extend(small.tuples.iter().cloned());
        Ok(out)
    }

    /// `self ∖ other` (same header required). When either side is empty
    /// the answer is a clone of `self` (resp. empty) without walking the
    /// other operand.
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        self.require_same_header(other)?;
        if other.is_empty() || self.is_empty() {
            return Ok(self.clone());
        }
        Ok(Relation {
            attrs: self.attrs.clone(),
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        })
    }

    /// `self ∩ other` (same header required). Empty operands short-circuit.
    pub fn intersect(&self, other: &Relation) -> Result<Relation> {
        self.require_same_header(other)?;
        if self.is_empty() {
            return Ok(self.clone());
        }
        if other.is_empty() {
            return Ok(Relation::empty(self.attrs.clone()));
        }
        Ok(Relation {
            attrs: self.attrs.clone(),
            tuples: self.tuples.intersection(&other.tuples).cloned().collect(),
        })
    }

    /// `π_Z(self)`; `Z` must be a subset of the header. (The paper's
    /// convention that `π_Z(R) = ∅` when `Z ⊄ attr(R)` is applied one
    /// level up, in the PSJ layer, where it is a deliberate notational
    /// device rather than a silent coercion.)
    pub fn project(&self, wanted: &AttrSet) -> Result<Relation> {
        let Some(positions) = wanted.positions_in(&self.attrs) else {
            return Err(RelalgError::ProjectionNotSubset {
                wanted: wanted.clone(),
                header: self.attrs.clone(),
            });
        };
        Ok(Relation {
            attrs: wanted.clone(),
            tuples: self.tuples.iter().map(|t| t.project(&positions)).collect(),
        })
    }

    /// Keeps the tuples satisfying `keep`.
    pub fn filter(&self, mut keep: impl FnMut(&Tuple) -> bool) -> Relation {
        Relation {
            attrs: self.attrs.clone(),
            tuples: self.tuples.iter().filter(|t| keep(t)).cloned().collect(),
        }
    }

    /// True iff `self ⊆ other` (same header required).
    pub fn is_subset(&self, other: &Relation) -> Result<bool> {
        self.require_same_header(other)?;
        Ok(self.tuples.is_subset(&other.tuples))
    }

    /// `(self ∖ delete) ∪ insert` in one pass: a single clone of `self`
    /// followed by point removals and insertions. The delta-composition
    /// identity every maintenance path ends with — as two set operations
    /// it would clone the full relation twice per stored relation per
    /// update; deltas are usually tiny compared to `self`.
    pub fn apply_delta(&self, insert: &Relation, delete: &Relation) -> Result<Relation> {
        self.require_same_header(insert)?;
        self.require_same_header(delete)?;
        let mut out = self.clone();
        for t in &delete.tuples {
            out.tuples.remove(t);
        }
        out.tuples.extend(insert.tuples.iter().cloned());
        Ok(out)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.attrs)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Builds a [`Relation`] literal:
///
/// ```
/// use dwc_relalg::rel;
/// let r = rel! { ["item", "clerk"] => ("TV set", "Mary"), ("PC", "John") };
/// assert_eq!(r.len(), 2);
/// ```
#[macro_export]
macro_rules! rel {
    { [$($name:expr),* $(,)?] => $(($($v:expr),* $(,)?)),* $(,)? } => {
        $crate::Relation::from_rows(
            &[$($name),*],
            vec![$(vec![$($crate::Value::from($v)),*]),*] as Vec<Vec<$crate::Value>>,
        ).expect("rel! literal is well-formed") // lint:allow expect -- macro contract: literals are checked at the use site
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sale() -> Relation {
        Relation::from_rows(
            &["item", "clerk"],
            vec![
                vec![Value::str("TV set"), Value::str("Mary")],
                vec![Value::str("VCR"), Value::str("Mary")],
                vec![Value::str("PC"), Value::str("John")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_permutes_into_canonical_order() {
        // Header sorted => {clerk, item}; row given as (item, clerk).
        let r = sale();
        assert_eq!(r.attrs().to_string(), "{clerk, item}");
        let first = r.iter().next().unwrap();
        // Canonical order of first (lexicographically least) tuple: John, PC.
        assert_eq!(first.get(0), &Value::str("John"));
        assert_eq!(first.get(1), &Value::str("PC"));
    }

    #[test]
    fn from_rows_rejects_wrong_arity() {
        let err = Relation::from_rows(&["a", "b"], vec![vec![Value::int(1)]]).unwrap_err();
        assert!(matches!(err, RelalgError::ArityMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn from_rows_rejects_duplicate_attrs() {
        let err =
            Relation::from_rows(&["a", "a"], Vec::<Vec<Value>>::new()).unwrap_err();
        assert!(matches!(err, RelalgError::ArityMismatch { .. }));
    }

    #[test]
    fn set_semantics_dedup() {
        let r = Relation::from_rows(
            &["a"],
            vec![vec![Value::int(1)], vec![Value::int(1)], vec![Value::int(2)]],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn union_difference_intersect() {
        let a = Relation::from_rows(&["x"], vec![vec![Value::int(1)], vec![Value::int(2)]])
            .unwrap();
        let b = Relation::from_rows(&["x"], vec![vec![Value::int(2)], vec![Value::int(3)]])
            .unwrap();
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.difference(&b).unwrap().len(), 1);
        assert_eq!(a.intersect(&b).unwrap().len(), 1);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let a = Relation::empty(AttrSet::from_names(&["x"]));
        let b = Relation::empty(AttrSet::from_names(&["y"]));
        assert!(a.union(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(a.intersect(&b).is_err());
        assert!(a.is_subset(&b).is_err());
    }

    #[test]
    fn project_subset_and_error() {
        let r = sale();
        let p = r.project(&AttrSet::from_names(&["clerk"])).unwrap();
        assert_eq!(p.len(), 2); // Mary, John — set semantics collapse
        assert!(r.project(&AttrSet::from_names(&["age"])).is_err());
    }

    #[test]
    fn project_empty_set_of_attrs() {
        let r = sale();
        let p = r.project(&AttrSet::empty()).unwrap();
        // π_{}(R) for non-empty R is the single empty tuple (dee).
        assert_eq!(p.len(), 1);
        let e = Relation::empty(r.attrs().clone());
        assert_eq!(e.project(&AttrSet::empty()).unwrap().len(), 0);
    }

    #[test]
    fn rel_macro() {
        let r = rel! { ["item", "clerk"] => ("TV set", "Mary"), ("PC", "John") };
        assert_eq!(r.len(), 2);
        assert_eq!(r.attrs(), &AttrSet::from_names(&["item", "clerk"]));
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = Relation::empty(AttrSet::from_names(&["x"]));
        let t = Tuple::new(vec![Value::int(7)]);
        assert!(r.insert(t.clone()).unwrap());
        assert!(!r.insert(t.clone()).unwrap());
        assert!(r.contains(&t));
        assert!(r.remove(&t));
        assert!(!r.remove(&t));
        assert!(r.insert(Tuple::new(vec![])).is_err());
    }
}
