//! A text syntax for relational algebra expressions.
//!
//! Grammar (whitespace-insensitive; `NAME` is an identifier that is not a
//! keyword):
//!
//! ```text
//! expr     := joined (("union" | "minus" | "intersect") joined)*   // left-assoc
//! joined   := primary ("join" primary)*                            // binds tighter
//! primary  := NAME
//!           | ("sigma" | "select") "[" cond "]" "(" expr ")"
//!           | ("pi" | "project") "[" attrs "]" "(" expr ")"
//!           | ("rho" | "rename") "[" NAME "->" NAME ("," NAME "->" NAME)* "]" "(" expr ")"
//!           | "empty" "[" attrs "]"
//!           | "(" expr ")"
//! attrs    := (NAME ("," NAME)*)?
//! cond     := conj ("or" conj)*
//! conj     := unary ("and" unary)*
//! unary    := "not" unary | "true" | "false" | "(" cond ")"
//!           | operand ("=" | "!=" | "<" | "<=" | ">" | ">=") operand
//! operand  := NAME | INT | FLOAT | "'" chars "'" | "true" | "false"
//! ```
//!
//! The printer in [`crate::display`] emits exactly this syntax, so
//! printing and re-parsing is the identity on expressions.

use crate::attrs::AttrSet;
use crate::error::{RelalgError, Result};
use crate::expr::RaExpr;
use crate::predicate::{CmpOp, Operand, Predicate};
use crate::symbol::Attr;
use crate::value::Value;

/// Parses an expression. Entry point behind [`RaExpr::parse`].
pub fn parse_expr(text: &str) -> Result<RaExpr> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parses a selection predicate on its own (useful in tests and tools).
pub fn parse_predicate(text: &str) -> Result<Predicate> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let c = p.cond()?;
    p.expect_end()?;
    Ok(c)
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Name(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str), // ( ) [ ] , -> = != < <= > >=
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    at: usize,
}

fn tokenize(text: &str) -> Result<Vec<Spanned>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | '[' | ']' | ',' => {
                out.push(Spanned {
                    tok: Tok::Sym(match c {
                        '(' => "(",
                        ')' => ")",
                        '[' => "[",
                        ']' => "]",
                        _ => ",",
                    }),
                    at: i,
                });
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Spanned { tok: Tok::Sym("->"), at: i });
                i += 2;
            }
            '=' => {
                out.push(Spanned { tok: Tok::Sym("="), at: i });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Spanned { tok: Tok::Sym("!="), at: i });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Sym("<="), at: i });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Sym("<"), at: i });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Sym(">="), at: i });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Sym(">"), at: i });
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(RelalgError::Parse {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push(Spanned {
                    tok: Tok::Str(text[start..j].to_owned()),
                    at: i,
                });
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !(i < bytes.len() && bytes[i].is_ascii_digit()) {
                        return Err(RelalgError::Parse {
                            position: start,
                            message: "expected digits after '-'".into(),
                        });
                    }
                }
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let s = &text[start..i];
                let tok = if is_float {
                    Tok::Float(s.parse().map_err(|_| RelalgError::Parse {
                        position: start,
                        message: format!("bad float literal `{s}`"),
                    })?)
                } else {
                    Tok::Int(s.parse().map_err(|_| RelalgError::Parse {
                        position: start,
                        message: format!("bad integer literal `{s}`"),
                    })?)
                };
                out.push(Spanned { tok, at: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Name(text[start..i].to_owned()),
                    at: start,
                });
            }
            _ => {
                return Err(RelalgError::Parse {
                    position: i,
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    Ok(out)
}

const KEYWORDS: &[&str] = &[
    "join", "union", "minus", "intersect", "sigma", "select", "pi", "project", "rho",
    "rename", "empty", "and", "or", "not", "true", "false",
];

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |s| s.at)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> RelalgError {
        RelalgError::Parse {
            position: self.at(),
            message: message.into(),
        }
    }

    fn eat_sym(&mut self, sym: &'static str) -> Result<()> {
        match self.peek() {
            Some(Tok::Sym(s)) if *s == sym => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected `{sym}`, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Name(n)) = self.peek() {
            if n == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Name(n)) if n == kw)
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Name(n)) if !KEYWORDS.contains(&n.as_str()) => {
                let n = n.clone();
                self.pos += 1;
                Ok(n)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("trailing input after expression"))
        }
    }

    fn expr(&mut self) -> Result<RaExpr> {
        let mut left = self.joined()?;
        loop {
            if self.eat_keyword("union") {
                left = left.union(self.joined()?);
            } else if self.eat_keyword("minus") {
                left = left.diff(self.joined()?);
            } else if self.eat_keyword("intersect") {
                left = left.intersect(self.joined()?);
            } else {
                return Ok(left);
            }
        }
    }

    fn joined(&mut self) -> Result<RaExpr> {
        let mut left = self.primary()?;
        while self.eat_keyword("join") {
            left = left.join(self.primary()?);
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<RaExpr> {
        if self.peek_keyword("sigma") || self.peek_keyword("select") {
            self.pos += 1;
            self.eat_sym("[")?;
            let cond = self.cond()?;
            self.eat_sym("]")?;
            self.eat_sym("(")?;
            let input = self.expr()?;
            self.eat_sym(")")?;
            return Ok(input.select(cond));
        }
        if self.peek_keyword("pi") || self.peek_keyword("project") {
            self.pos += 1;
            self.eat_sym("[")?;
            let attrs = self.attr_list()?;
            self.eat_sym("]")?;
            self.eat_sym("(")?;
            let input = self.expr()?;
            self.eat_sym(")")?;
            return Ok(input.project(attrs));
        }
        if self.peek_keyword("rho") || self.peek_keyword("rename") {
            self.pos += 1;
            self.eat_sym("[")?;
            let mut pairs = Vec::new();
            loop {
                let from = self.ident()?;
                self.eat_sym("->")?;
                let to = self.ident()?;
                pairs.push((Attr::new(&from), Attr::new(&to)));
                if !matches!(self.peek(), Some(Tok::Sym(","))) {
                    break;
                }
                self.pos += 1;
            }
            self.eat_sym("]")?;
            self.eat_sym("(")?;
            let input = self.expr()?;
            self.eat_sym(")")?;
            return Ok(input.rename(pairs));
        }
        if self.peek_keyword("empty") {
            self.pos += 1;
            self.eat_sym("[")?;
            let attrs = self.attr_list()?;
            self.eat_sym("]")?;
            return Ok(RaExpr::empty(attrs));
        }
        if matches!(self.peek(), Some(Tok::Sym("("))) {
            self.pos += 1;
            let e = self.expr()?;
            self.eat_sym(")")?;
            return Ok(e);
        }
        let name = self.ident().map_err(|_| {
            self.error("expected relation name, operator keyword, or `(`")
        })?;
        Ok(RaExpr::base(name.as_str()))
    }

    fn attr_list(&mut self) -> Result<AttrSet> {
        let mut names = Vec::new();
        if matches!(self.peek(), Some(Tok::Sym("]"))) {
            return Ok(AttrSet::empty());
        }
        loop {
            names.push(Attr::new(&self.ident()?));
            if !matches!(self.peek(), Some(Tok::Sym(","))) {
                break;
            }
            self.pos += 1;
        }
        Ok(AttrSet::from_iter(names))
    }

    fn cond(&mut self) -> Result<Predicate> {
        let mut left = self.conj()?;
        while self.eat_keyword("or") {
            let right = self.conj()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conj(&mut self) -> Result<Predicate> {
        let mut left = self.cond_unary()?;
        while self.eat_keyword("and") {
            let right = self.cond_unary()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cond_unary(&mut self) -> Result<Predicate> {
        if self.eat_keyword("not") {
            return Ok(Predicate::Not(Box::new(self.cond_unary()?)));
        }
        // `true`/`false` standing alone are predicates; as comparison
        // operands they are handled inside `operand`.
        if self.peek_keyword("true") && !self.next_is_cmp(1) {
            self.pos += 1;
            return Ok(Predicate::True);
        }
        if self.peek_keyword("false") && !self.next_is_cmp(1) {
            self.pos += 1;
            return Ok(Predicate::False);
        }
        if matches!(self.peek(), Some(Tok::Sym("("))) {
            self.pos += 1;
            let c = self.cond()?;
            self.eat_sym(")")?;
            return Ok(c);
        }
        let lhs = self.operand()?;
        let op = self.cmp_op()?;
        let rhs = self.operand()?;
        Ok(Predicate::Cmp(lhs, op, rhs))
    }

    fn next_is_cmp(&self, offset: usize) -> bool {
        matches!(
            self.tokens.get(self.pos + offset).map(|s| &s.tok),
            Some(Tok::Sym("=" | "!=" | "<" | "<=" | ">" | ">="))
        )
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek() {
            Some(Tok::Sym("=")) => CmpOp::Eq,
            Some(Tok::Sym("!=")) => CmpOp::Ne,
            Some(Tok::Sym("<")) => CmpOp::Lt,
            Some(Tok::Sym("<=")) => CmpOp::Le,
            Some(Tok::Sym(">")) => CmpOp::Gt,
            Some(Tok::Sym(">=")) => CmpOp::Ge,
            other => return Err(self.error(format!("expected comparison, found {other:?}"))),
        };
        self.pos += 1;
        Ok(op)
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.bump() {
            Some(Tok::Int(i)) => Ok(Operand::Const(Value::Int(i))),
            Some(Tok::Float(d)) => Ok(Operand::Const(Value::double(d))),
            Some(Tok::Str(s)) => Ok(Operand::Const(Value::str(&s))),
            Some(Tok::Name(n)) if n == "true" => Ok(Operand::Const(Value::Bool(true))),
            Some(Tok::Name(n)) if n == "false" => Ok(Operand::Const(Value::Bool(false))),
            Some(Tok::Name(n)) if !KEYWORDS.contains(&n.as_str()) => {
                Ok(Operand::Attr(Attr::new(&n)))
            }
            other => Err(self.error(format!("expected operand, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_base_and_join() {
        assert_eq!(
            parse_expr("Sale join Emp").unwrap(),
            RaExpr::base("Sale").join(RaExpr::base("Emp"))
        );
        // join is left associative and binds tighter than union
        assert_eq!(
            parse_expr("A join B union C").unwrap(),
            RaExpr::base("A").join(RaExpr::base("B")).union(RaExpr::base("C"))
        );
        assert_eq!(
            parse_expr("A union B join C").unwrap(),
            RaExpr::base("A").union(RaExpr::base("B").join(RaExpr::base("C")))
        );
    }

    #[test]
    fn parse_setops_left_assoc() {
        assert_eq!(
            parse_expr("A union B minus C").unwrap(),
            RaExpr::base("A").union(RaExpr::base("B")).diff(RaExpr::base("C"))
        );
        assert_eq!(
            parse_expr("A minus (B intersect C)").unwrap(),
            RaExpr::base("A").diff(RaExpr::base("B").intersect(RaExpr::base("C")))
        );
    }

    #[test]
    fn parse_unary_ops() {
        assert_eq!(
            parse_expr("pi[clerk, age](Sold)").unwrap(),
            RaExpr::base("Sold").project_names(&["clerk", "age"])
        );
        assert_eq!(
            parse_expr("sigma[item = 'PC'](Sale)").unwrap(),
            RaExpr::base("Sale").select(Predicate::attr_eq("item", "PC"))
        );
        assert_eq!(
            parse_expr("rho[age -> years](Emp)").unwrap(),
            RaExpr::base("Emp").rename(vec![(Attr::new("age"), Attr::new("years"))])
        );
        assert_eq!(
            parse_expr("empty[a, b]").unwrap(),
            RaExpr::empty(AttrSet::from_names(&["a", "b"]))
        );
        assert_eq!(parse_expr("empty[]").unwrap(), RaExpr::empty(AttrSet::empty()));
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(
            parse_expr("project[a](select[a = 1](R))").unwrap(),
            parse_expr("pi[a](sigma[a = 1](R))").unwrap()
        );
        assert_eq!(
            parse_expr("rename[a -> b](R)").unwrap(),
            parse_expr("rho[a -> b](R)").unwrap()
        );
    }

    #[test]
    fn parse_predicates() {
        let p = parse_predicate("a = 1 and b != 'x' or not c < 2.5").unwrap();
        // or is outermost: (a=1 and b!='x') or (not c<2.5)
        match p {
            Predicate::Or(l, r) => {
                assert!(matches!(*l, Predicate::And(_, _)));
                assert!(matches!(*r, Predicate::Not(_)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        assert_eq!(parse_predicate("true").unwrap(), Predicate::True);
        assert_eq!(parse_predicate("not false").unwrap(), Predicate::Not(Box::new(Predicate::False)));
        // true as an operand
        let p = parse_predicate("flag = true").unwrap();
        assert_eq!(
            p,
            Predicate::Cmp(Operand::attr("flag"), CmpOp::Eq, Operand::Const(Value::Bool(true)))
        );
    }

    #[test]
    fn parse_negative_numbers() {
        let p = parse_predicate("a >= -5").unwrap();
        assert_eq!(
            p,
            Predicate::Cmp(Operand::attr("a"), CmpOp::Ge, Operand::Const(Value::Int(-5)))
        );
    }

    #[test]
    fn parse_errors_carry_position() {
        for text in [
            "",
            "Sale join",
            "pi[clerk](Sale",
            "sigma[](R)",
            "sigma[a =](R)",
            "'unterminated",
            "A ~ B",
            "join",
            "A B",
            "rho[a](R)",
            "-x",
        ] {
            let err = parse_expr(text).unwrap_err();
            assert!(matches!(err, RelalgError::Parse { .. }), "text {text:?} gave {err:?}");
        }
    }

    #[test]
    fn roundtrip_display_parse() {
        let exprs = [
            "Sale",
            "(Sale join Emp)",
            "(Emp minus pi[age, clerk]((Sale join Emp)))",
            "pi[clerk](sigma[item = 'PC' and age <= 30](Sale))",
            "empty[a, b]",
            "rho[age -> years](Emp)",
            "((A union B) intersect C)",
            "sigma[not (a = 1 or b = 2)](R)",
        ];
        for text in exprs {
            let e = parse_expr(text).unwrap();
            let printed = e.to_string();
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(e, reparsed, "roundtrip failed for {text}");
        }
    }
}
