//! Error types for the relational substrate.

use crate::attrs::AttrSet;
use crate::symbol::{Attr, RelName};
use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = RelalgError> = std::result::Result<T, E>;

/// Everything that can go wrong when building schemas, type-checking
/// expressions, evaluating them, or parsing their textual form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelalgError {
    /// A relation name was referenced but is not in the catalog/state.
    UnknownRelation(RelName),
    /// A relation schema was declared twice.
    DuplicateRelation(RelName),
    /// An attribute was referenced that the expression's header lacks.
    UnknownAttribute {
        /// The attribute that was referenced.
        attr: Attr,
        /// The header it is missing from.
        header: AttrSet,
    },
    /// A projection list is not a subset of the input header.
    ProjectionNotSubset {
        /// The requested projection attributes.
        wanted: AttrSet,
        /// The available input header.
        header: AttrSet,
    },
    /// A set operation was applied to inputs with different headers.
    HeaderMismatch {
        /// Header of the left input.
        left: AttrSet,
        /// Header of the right input.
        right: AttrSet,
    },
    /// A tuple's arity does not match the relation header.
    ArityMismatch {
        /// Arity the header requires.
        expected: usize,
        /// Arity the tuple actually has.
        got: usize,
    },
    /// Renaming would collide with an existing attribute or renames a
    /// missing one.
    BadRename {
        /// Attribute to rename away from.
        from: Attr,
        /// Attribute to rename into.
        to: Attr,
        /// The header the rename was applied to.
        header: AttrSet,
    },
    /// A key constraint refers to attributes outside its relation schema.
    BadKey {
        /// The relation the key was declared on.
        relation: RelName,
        /// The offending key attributes.
        key: AttrSet,
        /// The relation's actual attributes.
        header: AttrSet,
    },
    /// An inclusion dependency is ill-formed (attributes missing on either
    /// side).
    BadInclusionDep {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// The set of inclusion dependencies is cyclic; the paper (and
    /// Theorem 2.2) require acyclicity.
    CyclicInclusionDeps {
        /// A minimal cycle, listed `R -> … -> R` with the start repeated.
        cycle: Vec<RelName>,
    },
    /// A state violates a declared key.
    KeyViolation {
        /// The relation whose state is invalid.
        relation: RelName,
        /// The violated key.
        key: AttrSet,
    },
    /// A state violates a declared inclusion dependency.
    InclusionViolation {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// Text that failed to parse as an expression or predicate.
    Parse {
        /// Byte offset of the failure in the input.
        position: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// Binary-encoded data failed checksum or structural validation
    /// (see [`crate::io::decode_relation`]). Decoding never panics: a
    /// flipped bit, a truncation, or a hostile length field all land
    /// here.
    Corrupt {
        /// Byte offset at which validation failed.
        offset: usize,
        /// What exactly was wrong (checksum mismatch, bad magic, …).
        detail: String,
    },
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            RelalgError::DuplicateRelation(r) => {
                write!(f, "relation `{r}` is already declared")
            }
            RelalgError::UnknownAttribute { attr, header } => {
                write!(f, "attribute `{attr}` not in header {header}")
            }
            RelalgError::ProjectionNotSubset { wanted, header } => {
                write!(f, "projection {wanted} is not a subset of header {header}")
            }
            RelalgError::HeaderMismatch { left, right } => {
                write!(f, "set operation on different headers {left} vs {right}")
            }
            RelalgError::ArityMismatch { expected, got } => {
                write!(f, "tuple arity {got} does not match header arity {expected}")
            }
            RelalgError::BadRename { from, to, header } => {
                write!(f, "cannot rename {from} -> {to} in header {header}")
            }
            RelalgError::BadKey { relation, key, header } => {
                write!(f, "key {key} of `{relation}` is not within its attributes {header}")
            }
            RelalgError::BadInclusionDep { detail } => {
                write!(f, "ill-formed inclusion dependency: {detail}")
            }
            RelalgError::CyclicInclusionDeps { cycle } => {
                write!(f, "inclusion dependencies are cyclic through: ")?;
                for (i, r) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
            RelalgError::KeyViolation { relation, key } => {
                write!(f, "state of `{relation}` violates key {key}")
            }
            RelalgError::InclusionViolation { detail } => {
                write!(f, "inclusion dependency violated: {detail}")
            }
            RelalgError::Parse { position, message } => {
                write!(f, "parse error at offset {position}: {message}")
            }
            RelalgError::Corrupt { offset, detail } => {
                write!(f, "corrupt binary data at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for RelalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelalgError::UnknownRelation(RelName::new("Nope"));
        assert!(e.to_string().contains("Nope"));

        let e = RelalgError::HeaderMismatch {
            left: AttrSet::from_names(&["a"]),
            right: AttrSet::from_names(&["b"]),
        };
        assert!(e.to_string().contains("{a}"));
        assert!(e.to_string().contains("{b}"));

        let e = RelalgError::CyclicInclusionDeps {
            cycle: vec![RelName::new("R"), RelName::new("S"), RelName::new("R")],
        };
        assert!(e.to_string().contains("R -> S -> R"));
    }
}
