//! Sorted attribute sets.
//!
//! Attribute sets are ubiquitous: schema headers, projection lists, join
//! columns, keys, inclusion-dependency columns, and the cover computation
//! of the complement algorithm all manipulate them. [`AttrSet`] stores a
//! sorted, deduplicated `Vec<Attr>`; the sets involved are small (a handful
//! of attributes), so sorted-vector merges beat tree or hash sets and keep
//! iteration order canonical.

use crate::symbol::Attr;
use std::fmt;

/// An immutable-by-convention sorted set of attributes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet(Vec<Attr>);

impl AttrSet {
    /// The empty attribute set.
    pub fn empty() -> AttrSet {
        AttrSet(Vec::new())
    }

    /// Builds a set from any iterable of attributes; sorts and dedups.
    /// (Deliberately shadows the trait method name: `AttrSet::from_iter`
    /// is the crate's idiomatic constructor and the `FromIterator` impl
    /// delegates here.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, A>(iter: I) -> AttrSet
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        let mut v: Vec<Attr> = iter.into_iter().map(Into::into).collect();
        v.sort_unstable();
        v.dedup();
        AttrSet(v)
    }

    /// Builds a set from attribute names.
    pub fn from_names(names: &[&str]) -> AttrSet {
        Self::from_iter(names.iter().map(|n| Attr::new(n)))
    }

    /// A singleton set.
    pub fn singleton(a: Attr) -> AttrSet {
        AttrSet(vec![a])
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, a: Attr) -> bool {
        self.0.binary_search(&a).is_ok()
    }

    /// Position of `a` in sorted order, if present. Tuples are laid out in
    /// this order, so this doubles as the column index.
    pub fn index_of(&self, a: Attr) -> Option<usize> {
        self.0.binary_search(&a).ok()
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut it = other.0.iter();
        'outer: for a in &self.0 {
            for b in it.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// True iff the sets share no attribute.
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        AttrSet(out)
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &AttrSet) -> AttrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        AttrSet(out)
    }

    /// `self ∖ other`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() {
            if j >= other.0.len() {
                out.extend_from_slice(&self.0[i..]);
                break;
            }
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        AttrSet(out)
    }

    /// Adds a single attribute, returning a new set.
    pub fn with(&self, a: Attr) -> AttrSet {
        self.union(&AttrSet::singleton(a))
    }

    /// Iterates attributes in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Attr> + '_ {
        self.0.iter().copied()
    }

    /// The attributes as a sorted slice.
    pub fn as_slice(&self) -> &[Attr] {
        &self.0
    }

    /// For each attribute of `self`, its column index in `outer`
    /// (which must be a superset). Used to compile projections once per
    /// operator instead of once per tuple.
    pub fn positions_in(&self, outer: &AttrSet) -> Option<Vec<usize>> {
        self.0.iter().map(|a| outer.index_of(*a)).collect()
    }
}

impl FromIterator<Attr> for AttrSet {
    fn from_iter<I: IntoIterator<Item = Attr>>(iter: I) -> Self {
        AttrSet::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = Attr;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Attr>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names)
    }

    #[test]
    fn from_names_sorts_and_dedups() {
        let a = s(&["c", "a", "b", "a"]);
        assert_eq!(a.len(), 3);
        let names: Vec<&str> = a.iter().map(|x| x.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn subset_and_disjoint() {
        assert!(s(&["a", "b"]).is_subset(&s(&["a", "b", "c"])));
        assert!(!s(&["a", "d"]).is_subset(&s(&["a", "b", "c"])));
        assert!(s(&[]).is_subset(&s(&["a"])));
        assert!(s(&["a"]).is_disjoint(&s(&["b"])));
        assert!(!s(&["a", "b"]).is_disjoint(&s(&["b", "c"])));
        assert!(s(&[]).is_disjoint(&s(&[])));
    }

    #[test]
    fn set_algebra() {
        let ab = s(&["a", "b"]);
        let bc = s(&["b", "c"]);
        assert_eq!(ab.union(&bc), s(&["a", "b", "c"]));
        assert_eq!(ab.intersect(&bc), s(&["b"]));
        assert_eq!(ab.difference(&bc), s(&["a"]));
        assert_eq!(bc.difference(&ab), s(&["c"]));
        assert_eq!(ab.difference(&ab), AttrSet::empty());
    }

    #[test]
    fn index_and_positions() {
        let abc = s(&["a", "b", "c"]);
        assert_eq!(abc.index_of(Attr::new("b")), Some(1));
        assert_eq!(abc.index_of(Attr::new("z")), None);
        let ac = s(&["a", "c"]);
        assert_eq!(ac.positions_in(&abc), Some(vec![0, 2]));
        assert_eq!(s(&["z"]).positions_in(&abc), None);
    }

    #[test]
    fn display_is_braced_list() {
        assert_eq!(s(&["b", "a"]).to_string(), "{a, b}");
        assert_eq!(AttrSet::empty().to_string(), "{}");
    }
}
