//! CSV and binary import/export for relations.
//!
//! **CSV** — a small, dependency-free CSV dialect for moving data in and
//! out of the engine (examples, the shell, external tooling):
//! comma-separated, double-quote quoting with `""` escapes, first line =
//! header. Values are written in the display syntax of [`Value`] minus
//! the string quotes; on import each cell is parsed as `i64`, then
//! `f64`, then `true`/`false`, falling back to a string — so `export →
//! import` round-trips relations whose strings do not themselves look
//! numeric. For exact round-trips of arbitrary values use
//! [`export_typed`] / [`import_typed`], which tag each cell (`i:`, `d:`,
//! `b:`, `s:`).
//!
//! **Binary** — the canonical checksummed encoding the durability layer
//! (`warehouse::storage`) persists relations in: [`encode_relation`]
//! produces a self-contained blob (magic, version, sorted header, tuple
//! payload, trailing CRC-32) and [`decode_relation`] validates the
//! checksum *before* parsing a single field, so one flipped bit anywhere
//! in the blob is a typed [`RelalgError::Corrupt`], never a panic and
//! never a silently different relation. [`ByteWriter`] / [`ByteReader`]
//! are the little-endian primitives the encoding is built from; the
//! storage layer reuses them for its own framing.

use crate::attrs::AttrSet;
use crate::error::{RelalgError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Serializes a relation as CSV (header = sorted attribute names).
pub fn export_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel.attrs().iter().map(|a| quote(a.as_str())).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in rel.iter() {
        let row: Vec<String> = t.values().iter().map(|v| quote(&plain(v))).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Serializes with type tags for exact round-trips.
pub fn export_typed(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel.attrs().iter().map(|a| quote(a.as_str())).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in rel.iter() {
        let row: Vec<String> = t.values().iter().map(|v| quote(&tagged(v))).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV into a relation; cell types are inferred (see module docs).
pub fn import_csv(text: &str) -> Result<Relation> {
    import_with(text, infer)
}

/// Parses type-tagged CSV (the [`export_typed`] format).
pub fn import_typed(text: &str) -> Result<Relation> {
    import_with(text, untag)
}

fn import_with(text: &str, decode: impl Fn(&str) -> Result<Value>) -> Result<Relation> {
    let mut rows = parse_csv(text)?;
    if rows.is_empty() {
        return Err(RelalgError::Parse {
            position: 0,
            message: "CSV needs a header line".into(),
        });
    }
    let header_cells = rows.remove(0);
    let names: Vec<&str> = header_cells.iter().map(String::as_str).collect();
    let attrs = AttrSet::from_names(&names);
    if attrs.len() != names.len() {
        return Err(RelalgError::Parse {
            position: 0,
            message: "duplicate attribute in CSV header".into(),
        });
    }
    // Column order in the file is the header order; tuples must land in
    // canonical (sorted) order.
    let permutation: Vec<usize> = attrs
        .iter()
        .map(|a| {
            names
                .iter()
                .position(|n| *n == a.as_str())
                .ok_or_else(|| RelalgError::Parse {
                    position: 0,
                    message: format!("attribute {a} missing from CSV header"),
                })
        })
        .collect::<Result<_>>()?;
    let mut tuples: Vec<Tuple> = Vec::with_capacity(rows.len());
    for (lineno, row) in rows.into_iter().enumerate() {
        if row.len() != names.len() {
            return Err(RelalgError::Parse {
                position: lineno + 2,
                message: format!(
                    "row has {} cells, header has {}",
                    row.len(),
                    names.len()
                ),
            });
        }
        let values: Vec<Value> = permutation
            .iter()
            .map(|&i| decode(&row[i]))
            .collect::<Result<_>>()?;
        tuples.push(Tuple::new(values));
    }
    Relation::from_tuples(attrs, tuples)
}

fn plain(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    }
}

fn tagged(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Double(d) => format!("d:{}", d.0),
        Value::Bool(b) => format!("b:{b}"),
        Value::Str(s) => format!("s:{s}"),
    }
}

fn infer(cell: &str) -> Result<Value> {
    if let Ok(i) = cell.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(d) = cell.parse::<f64>() {
        return Ok(Value::double(d));
    }
    match cell {
        "true" => Ok(Value::Bool(true)),
        "false" => Ok(Value::Bool(false)),
        _ => Ok(Value::str(cell)),
    }
}

fn untag(cell: &str) -> Result<Value> {
    let err = || RelalgError::Parse {
        position: 0,
        message: format!("bad typed cell `{cell}`"),
    };
    let (tag, body) = cell.split_once(':').ok_or_else(err)?;
    match tag {
        "i" => body.parse::<i64>().map(Value::Int).map_err(|_| err()),
        "d" => body.parse::<f64>().map(Value::double).map_err(|_| err()),
        "b" => match body {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(err()),
        },
        "s" => Ok(Value::str(body)),
        _ => Err(err()),
    }
}

fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// A minimal RFC-4180-style reader: quoted cells may contain commas,
/// escaped quotes (`""`) and newlines.
fn parse_csv(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                other => cell.push(other),
            }
        } else {
            match c {
                '"' if cell.is_empty() => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {} // tolerate CRLF
                other => cell.push(other),
            }
        }
    }
    if in_quotes {
        return Err(RelalgError::Parse {
            position: text.len(),
            message: "unterminated quoted cell".into(),
        });
    }
    if any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Canonical binary encoding
// ---------------------------------------------------------------------

/// Magic prefix of a binary-encoded relation blob.
pub const REL_MAGIC: [u8; 4] = *b"DWCR";
/// Version byte of the binary relation encoding.
pub const REL_VERSION: u8 = 1;

/// CRC-32 (IEEE 802.3 polynomial) of a byte slice. Detects any burst
/// error up to 32 bits — in particular every single-byte corruption.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Little-endian byte serializer shared by the binary relation encoding
/// and the storage layer's WAL/snapshot framing.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed (`u32`) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends one tagged value (`0` bool, `1` int, `2` double as IEEE
    /// bits, `3` length-prefixed string).
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Bool(b) => {
                self.put_u8(0);
                self.put_u8(u8::from(*b));
            }
            Value::Int(i) => {
                self.put_u8(1);
                self.put_i64(*i);
            }
            Value::Double(d) => {
                self.put_u8(2);
                self.put_u64(d.0.to_bits());
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
        }
    }

    /// Finishes the blob: appends the CRC-32 of everything written so
    /// far and returns the buffer.
    pub fn finish_crc(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.put_u32(crc);
        self.buf
    }

    /// Returns the buffer without a checksum (for callers that frame and
    /// checksum at a higher level).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every `take_*`
/// returns [`RelalgError::Corrupt`] on underrun — hostile lengths cannot
/// cause panics or oversized allocations.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a slice.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// A typed corruption error anchored at the current offset.
    pub fn corrupt(&self, detail: impl Into<String>) -> RelalgError {
        RelalgError::Corrupt { offset: self.pos, detail: detail.into() }
    }

    /// Consumes `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "need {n} byte(s), only {} remain",
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Consumes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Consumes a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64> {
        Ok(self.take_u64()? as i64)
    }

    /// Consumes a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return Err(self.corrupt(format!(
                "string length {len} exceeds {} remaining byte(s)",
                self.remaining()
            )));
        }
        let bytes = self.take_bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| self.corrupt("string is not valid UTF-8"))
    }

    /// Consumes one tagged value (the [`ByteWriter::put_value`] format).
    pub fn take_value(&mut self) -> Result<Value> {
        match self.take_u8()? {
            0 => match self.take_u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                other => Err(self.corrupt(format!("bad bool byte {other}"))),
            },
            1 => Ok(Value::Int(self.take_i64()?)),
            2 => Ok(Value::double(f64::from_bits(self.take_u64()?))),
            3 => Ok(Value::str(&self.take_str()?)),
            other => Err(self.corrupt(format!("unknown value tag {other}"))),
        }
    }

    /// Fails unless every byte was consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!(
                "{} trailing byte(s) after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Validates and strips the trailing CRC-32 of a checksummed blob,
/// returning the covered body. The checksum is verified before any field
/// is parsed.
pub fn check_crc(data: &[u8]) -> Result<&[u8]> {
    if data.len() < 4 {
        return Err(RelalgError::Corrupt {
            offset: data.len(),
            detail: format!("blob of {} byte(s) cannot hold a checksum", data.len()),
        });
    }
    let (body, tail) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(RelalgError::Corrupt {
            offset: data.len() - 4,
            detail: format!("checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"),
        });
    }
    Ok(body)
}

/// Serializes a relation into the canonical checksummed binary form:
/// magic, version, sorted attribute names, tuple count, tuples in set
/// order, trailing CRC-32. Deterministic: equal relations encode to
/// identical bytes.
pub fn encode_relation(rel: &Relation) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&REL_MAGIC);
    w.put_u8(REL_VERSION);
    w.put_u32(rel.attrs().len() as u32);
    for a in rel.attrs().iter() {
        w.put_str(a.as_str());
    }
    w.put_u64(rel.len() as u64);
    for t in rel.iter() {
        for v in t.values() {
            w.put_value(v);
        }
    }
    w.finish_crc()
}

/// Decodes an [`encode_relation`] blob. The trailing checksum is
/// verified first, so any single corrupted byte — header, payload, or
/// checksum itself — yields [`RelalgError::Corrupt`]; structural
/// validation (magic, version, sorted unique attributes, exact length)
/// backstops it.
pub fn decode_relation(data: &[u8]) -> Result<Relation> {
    let body = check_crc(data)?;
    let mut r = ByteReader::new(body);
    if r.take_bytes(4)? != REL_MAGIC {
        return Err(RelalgError::Corrupt {
            offset: 0,
            detail: "bad magic: not a binary relation blob".into(),
        });
    }
    let version = r.take_u8()?;
    if version != REL_VERSION {
        return Err(RelalgError::Corrupt {
            offset: 4,
            detail: format!("unsupported relation encoding version {version}"),
        });
    }
    let nattrs = r.take_u32()? as usize;
    if nattrs > r.remaining() {
        return Err(r.corrupt(format!("attribute count {nattrs} exceeds blob size")));
    }
    let mut names: Vec<String> = Vec::with_capacity(nattrs);
    for _ in 0..nattrs {
        let name = r.take_str()?;
        if let Some(prev) = names.last() {
            if *prev >= name {
                return Err(r.corrupt(format!(
                    "attribute `{name}` out of canonical order after `{prev}`"
                )));
            }
        }
        names.push(name);
    }
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let attrs = AttrSet::from_names(&refs);
    let count = r.take_u64()? as usize;
    let plausible = if nattrs == 0 { 1 } else { r.remaining() };
    if count > plausible {
        return Err(r.corrupt(format!("tuple count {count} exceeds blob size")));
    }
    // Decode straight into the dictionary and canonicalize once — no
    // per-tuple ordered insertion. The bytes themselves are unchanged:
    // encoding still walks canonical order, so encode ∘ decode is the
    // identity on valid blobs.
    let mut flat: Vec<crate::columns::Code> = Vec::with_capacity(count * nattrs);
    for _ in 0..count {
        for _ in 0..nattrs {
            flat.push(crate::columns::intern(&r.take_value()?));
        }
    }
    r.expect_end()?;
    Ok(Relation::from_parts(
        attrs,
        crate::columns::Columns::from_unsorted_rows(nattrs, count, flat),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    #[test]
    fn export_import_roundtrip_inferred() {
        let r = rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25) };
        let csv = export_csv(&r);
        assert!(csv.starts_with("age,clerk\n"));
        let back = import_csv(&csv).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn typed_roundtrip_preserves_ambiguous_values() {
        // The string "42" would infer as Int; typed export keeps it a string.
        let r = rel! { ["x", "y"] => ("42", 42), (true, 2.5) };
        let csv = export_typed(&r);
        let back = import_typed(&csv).unwrap();
        assert_eq!(back, r);
        // plain inference would NOT round-trip this relation
        let lossy = import_csv(&export_csv(&r)).unwrap();
        assert_ne!(lossy, r);
    }

    #[test]
    fn quoting_commas_quotes_newlines() {
        let r = rel! { ["note"] => ("a,b",), ("say \"hi\"",), ("line1\nline2",) };
        let back = import_csv(&export_csv(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn header_only_gives_empty_relation() {
        let r = import_csv("a,b\n").unwrap();
        assert!(r.is_empty());
        assert_eq!(r.attrs(), &AttrSet::from_names(&["a", "b"]));
    }

    #[test]
    fn error_cases() {
        assert!(import_csv("").is_err()); // no header
        assert!(import_csv("a,a\n1,2\n").is_err()); // duplicate header
        assert!(import_csv("a,b\n1\n").is_err()); // ragged row
        assert!(import_csv("a\n\"open").is_err()); // unterminated quote
        assert!(import_typed("a\nz:1\n").is_err()); // unknown tag
        assert!(import_typed("a\nplain\n").is_err()); // missing tag
        assert!(import_typed("a\ni:xyz\n").is_err()); // bad int body
    }

    #[test]
    fn header_permutation_is_respected() {
        // File lists columns out of canonical order.
        let csv = "item,clerk\nTV,Mary\n";
        let r = import_csv(csv).unwrap();
        assert_eq!(r, rel! { ["item", "clerk"] => ("TV", "Mary") });
    }

    #[test]
    fn crlf_tolerated_and_final_line_without_newline() {
        let r = import_csv("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(r, rel! { ["a", "b"] => (1, 2), (3, 4) });
    }

    #[test]
    fn binary_roundtrip_is_exact_and_deterministic() {
        let r = rel! { ["item", "clerk", "n"] =>
            ("TV set", "Mary", 3), ("PC", "John", -7), ("42", "x", 0) };
        let bytes = encode_relation(&r);
        assert_eq!(decode_relation(&bytes).unwrap(), r);
        assert_eq!(encode_relation(&r), bytes, "encoding must be deterministic");
    }

    #[test]
    fn binary_roundtrip_all_value_kinds_and_empty() {
        let r = rel! { ["b", "d", "i", "s"] => (true, 2.5, 42, "x"), (false, -0.0, -1, "") };
        assert_eq!(decode_relation(&encode_relation(&r)).unwrap(), r);
        let empty = Relation::empty(AttrSet::from_names(&["a"]));
        assert_eq!(decode_relation(&encode_relation(&empty)).unwrap(), empty);
        let nullary = Relation::empty(AttrSet::empty());
        assert_eq!(decode_relation(&encode_relation(&nullary)).unwrap(), nullary);
    }

    #[test]
    fn every_single_byte_corruption_is_a_typed_error() {
        let r = rel! { ["clerk", "item"] => ("Mary", "TV"), ("John", "PC") };
        let bytes = encode_relation(&r);
        for i in 0..bytes.len() {
            for bit in [1u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                match decode_relation(&bad) {
                    Err(RelalgError::Corrupt { .. }) => {}
                    other => panic!("byte {i} bit {bit:#x}: expected Corrupt, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn truncations_are_typed_errors() {
        let r = rel! { ["a"] => (1,), (2,) };
        let bytes = encode_relation(&r);
        for len in 0..bytes.len() {
            assert!(
                matches!(decode_relation(&bytes[..len]), Err(RelalgError::Corrupt { .. })),
                "prefix of {len} byte(s) must not decode"
            );
        }
    }

    #[test]
    fn reader_guards_hostile_lengths() {
        // A string length far beyond the buffer must error, not allocate.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_str(), Err(RelalgError::Corrupt { .. })));
    }

    #[test]
    fn writer_reader_primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_str("héllo");
        let bytes = w.finish_crc();
        let body = check_crc(&bytes).unwrap();
        let mut r = ByteReader::new(body);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert_eq!(r.take_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
