//! CSV import/export for relations.
//!
//! A small, dependency-free CSV dialect for moving data in and out of
//! the engine (examples, the shell, external tooling): comma-separated,
//! double-quote quoting with `""` escapes, first line = header. Values
//! are written in the display syntax of [`Value`] minus the string
//! quotes; on import each cell is parsed as `i64`, then `f64`, then
//! `true`/`false`, falling back to a string — so `export → import`
//! round-trips relations whose strings do not themselves look numeric.
//! For exact round-trips of arbitrary values use [`export_typed`] /
//! [`import_typed`], which tag each cell (`i:`, `d:`, `b:`, `s:`).

use crate::attrs::AttrSet;
use crate::error::{RelalgError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Serializes a relation as CSV (header = sorted attribute names).
pub fn export_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel.attrs().iter().map(|a| quote(a.as_str())).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in rel.iter() {
        let row: Vec<String> = t.values().iter().map(|v| quote(&plain(v))).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Serializes with type tags for exact round-trips.
pub fn export_typed(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel.attrs().iter().map(|a| quote(a.as_str())).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in rel.iter() {
        let row: Vec<String> = t.values().iter().map(|v| quote(&tagged(v))).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV into a relation; cell types are inferred (see module docs).
pub fn import_csv(text: &str) -> Result<Relation> {
    import_with(text, infer)
}

/// Parses type-tagged CSV (the [`export_typed`] format).
pub fn import_typed(text: &str) -> Result<Relation> {
    import_with(text, untag)
}

fn import_with(text: &str, decode: impl Fn(&str) -> Result<Value>) -> Result<Relation> {
    let mut rows = parse_csv(text)?;
    if rows.is_empty() {
        return Err(RelalgError::Parse {
            position: 0,
            message: "CSV needs a header line".into(),
        });
    }
    let header_cells = rows.remove(0);
    let names: Vec<&str> = header_cells.iter().map(String::as_str).collect();
    let attrs = AttrSet::from_names(&names);
    if attrs.len() != names.len() {
        return Err(RelalgError::Parse {
            position: 0,
            message: "duplicate attribute in CSV header".into(),
        });
    }
    // Column order in the file is the header order; tuples must land in
    // canonical (sorted) order.
    let permutation: Vec<usize> = attrs
        .iter()
        .map(|a| {
            names
                .iter()
                .position(|n| *n == a.as_str())
                .ok_or_else(|| RelalgError::Parse {
                    position: 0,
                    message: format!("attribute {a} missing from CSV header"),
                })
        })
        .collect::<Result<_>>()?;
    let mut rel = Relation::empty(attrs);
    for (lineno, row) in rows.into_iter().enumerate() {
        if row.len() != names.len() {
            return Err(RelalgError::Parse {
                position: lineno + 2,
                message: format!(
                    "row has {} cells, header has {}",
                    row.len(),
                    names.len()
                ),
            });
        }
        let values: Vec<Value> = permutation
            .iter()
            .map(|&i| decode(&row[i]))
            .collect::<Result<_>>()?;
        rel.insert(Tuple::new(values))?;
    }
    Ok(rel)
}

fn plain(v: &Value) -> String {
    match v {
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    }
}

fn tagged(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        Value::Double(d) => format!("d:{}", d.0),
        Value::Bool(b) => format!("b:{b}"),
        Value::Str(s) => format!("s:{s}"),
    }
}

fn infer(cell: &str) -> Result<Value> {
    if let Ok(i) = cell.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(d) = cell.parse::<f64>() {
        return Ok(Value::double(d));
    }
    match cell {
        "true" => Ok(Value::Bool(true)),
        "false" => Ok(Value::Bool(false)),
        _ => Ok(Value::str(cell)),
    }
}

fn untag(cell: &str) -> Result<Value> {
    let err = || RelalgError::Parse {
        position: 0,
        message: format!("bad typed cell `{cell}`"),
    };
    let (tag, body) = cell.split_once(':').ok_or_else(err)?;
    match tag {
        "i" => body.parse::<i64>().map(Value::Int).map_err(|_| err()),
        "d" => body.parse::<f64>().map(Value::double).map_err(|_| err()),
        "b" => match body {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(err()),
        },
        "s" => Ok(Value::str(body)),
        _ => Err(err()),
    }
}

fn quote(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// A minimal RFC-4180-style reader: quoted cells may contain commas,
/// escaped quotes (`""`) and newlines.
fn parse_csv(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cell.push('"');
                }
                '"' => in_quotes = false,
                other => cell.push(other),
            }
        } else {
            match c {
                '"' if cell.is_empty() => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut cell));
                }
                '\n' => {
                    row.push(std::mem::take(&mut cell));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {} // tolerate CRLF
                other => cell.push(other),
            }
        }
    }
    if in_quotes {
        return Err(RelalgError::Parse {
            position: text.len(),
            message: "unterminated quoted cell".into(),
        });
    }
    if any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    #[test]
    fn export_import_roundtrip_inferred() {
        let r = rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25) };
        let csv = export_csv(&r);
        assert!(csv.starts_with("age,clerk\n"));
        let back = import_csv(&csv).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn typed_roundtrip_preserves_ambiguous_values() {
        // The string "42" would infer as Int; typed export keeps it a string.
        let r = rel! { ["x", "y"] => ("42", 42), (true, 2.5) };
        let csv = export_typed(&r);
        let back = import_typed(&csv).unwrap();
        assert_eq!(back, r);
        // plain inference would NOT round-trip this relation
        let lossy = import_csv(&export_csv(&r)).unwrap();
        assert_ne!(lossy, r);
    }

    #[test]
    fn quoting_commas_quotes_newlines() {
        let r = rel! { ["note"] => ("a,b",), ("say \"hi\"",), ("line1\nline2",) };
        let back = import_csv(&export_csv(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn header_only_gives_empty_relation() {
        let r = import_csv("a,b\n").unwrap();
        assert!(r.is_empty());
        assert_eq!(r.attrs(), &AttrSet::from_names(&["a", "b"]));
    }

    #[test]
    fn error_cases() {
        assert!(import_csv("").is_err()); // no header
        assert!(import_csv("a,a\n1,2\n").is_err()); // duplicate header
        assert!(import_csv("a,b\n1\n").is_err()); // ragged row
        assert!(import_csv("a\n\"open").is_err()); // unterminated quote
        assert!(import_typed("a\nz:1\n").is_err()); // unknown tag
        assert!(import_typed("a\nplain\n").is_err()); // missing tag
        assert!(import_typed("a\ni:xyz\n").is_err()); // bad int body
    }

    #[test]
    fn header_permutation_is_respected() {
        // File lists columns out of canonical order.
        let csv = "item,clerk\nTV,Mary\n";
        let r = import_csv(csv).unwrap();
        assert_eq!(r, rel! { ["item", "clerk"] => ("TV", "Mary") });
    }

    #[test]
    fn crlf_tolerated_and_final_line_without_newline() {
        let r = import_csv("a,b\r\n1,2\r\n3,4").unwrap();
        assert_eq!(r, rel! { ["a", "b"] => (1, 2), (3, 4) });
    }
}
