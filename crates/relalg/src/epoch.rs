//! Atomically swappable state epochs: non-blocking snapshot reads.
//!
//! A long-running warehouse server has two populations with opposite
//! needs: the commit loop mutates the materialized state on every
//! applied report batch, while query clients want a *consistent* state
//! to evaluate translated queries against — and must never stall
//! ingestion to get one. The classic resolution is epoch publication:
//! the writer keeps its working state private, and after each commit
//! swaps an immutable [`Arc`]-shared copy into a shared cell. Readers
//! clone the `Arc` (a reference-count bump under a microscopic lock)
//! and then evaluate entirely lock-free against a state that can never
//! change underneath them — a *torn* read (half of one batch, half of
//! the next) is impossible by construction, because states are only
//! ever swapped whole.
//!
//! [`DbState`] already shares its relations through `Arc`s internally,
//! so publishing an epoch is O(#relations) pointer clones, not a deep
//! copy of tuples.
//!
//! ```
//! use dwc_relalg::epoch::EpochCell;
//! use dwc_relalg::DbState;
//!
//! let cell = EpochCell::new(DbState::new());
//! let reader = cell.reader();
//! let before = reader.load();
//! cell.publish(DbState::new());
//! let after = reader.load();
//! assert_eq!(before.epoch + 1, after.epoch);
//! // `before` is still valid and still consistent: epochs are
//! // immutable once published.
//! assert_eq!(before.epoch, 1);
//! ```

use crate::database::DbState;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// One published, immutable warehouse state: the epoch number and the
/// state as of that epoch's commit. Never mutated after publication.
#[derive(Clone, Debug)]
pub struct StateEpoch {
    /// Monotone publication counter, starting at 1 for the initial
    /// state an [`EpochCell`] is created with.
    pub epoch: u64,
    /// The materialized state as of this epoch.
    pub state: Arc<DbState>,
}

/// The writer's half: holds the current [`StateEpoch`] and swaps in a
/// new one atomically on [`EpochCell::publish`]. Cloning the cell
/// yields another handle to the *same* cell (handles share state).
#[derive(Clone)]
pub struct EpochCell {
    current: Arc<Mutex<Arc<StateEpoch>>>,
}

impl EpochCell {
    /// A cell whose epoch 1 is `initial`.
    pub fn new(initial: DbState) -> EpochCell {
        EpochCell {
            current: Arc::new(Mutex::new(Arc::new(StateEpoch {
                epoch: 1,
                state: Arc::new(initial),
            }))),
        }
    }

    /// Publishes `state` as the next epoch, returning the new epoch
    /// number. The swap is a single pointer store under the lock;
    /// readers holding the previous epoch keep a fully consistent
    /// (merely older) state.
    pub fn publish(&self, state: DbState) -> u64 {
        let mut slot = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = slot.epoch + 1;
        *slot = Arc::new(StateEpoch { epoch, state: Arc::new(state) });
        epoch
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }

    /// Snapshot-loads the current epoch (an `Arc` clone; the returned
    /// epoch never changes even as newer ones are published).
    pub fn load(&self) -> Arc<StateEpoch> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// A read-only handle for query clients.
    pub fn reader(&self) -> EpochReader {
        EpochReader { current: Arc::clone(&self.current) }
    }
}

impl fmt::Debug for EpochCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cur = self.load();
        f.debug_struct("EpochCell")
            .field("epoch", &cur.epoch)
            .field("relations", &cur.state.len())
            .finish()
    }
}

/// The readers' half of an [`EpochCell`]: cheap to clone, safe to hand
/// to any number of concurrent query clients. Each [`EpochReader::load`]
/// observes some *whole* published epoch — never a torn intermediate.
#[derive(Clone)]
pub struct EpochReader {
    current: Arc<Mutex<Arc<StateEpoch>>>,
}

impl EpochReader {
    /// Snapshot-loads the newest published epoch.
    pub fn load(&self) -> Arc<StateEpoch> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// The newest published epoch number (monotone across calls).
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }
}

impl fmt::Debug for EpochReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochReader").field("epoch", &self.epoch()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    fn state_with(n: i64) -> DbState {
        let mut db = DbState::new();
        db.insert_relation("R", rel! { ["a"] => (n,) });
        db
    }

    #[test]
    fn publish_bumps_epoch_and_readers_see_whole_states() {
        let cell = EpochCell::new(state_with(0));
        let reader = cell.reader();
        assert_eq!(reader.epoch(), 1);

        let held = reader.load();
        assert_eq!(cell.publish(state_with(1)), 2);
        assert_eq!(cell.publish(state_with(2)), 3);

        // The held snapshot is immutable: still epoch 1, still state 0.
        assert_eq!(held.epoch, 1);
        assert_eq!(held.state.relation("R".into()).unwrap(), &rel! { ["a"] => (0,) });

        // A fresh load sees the newest whole epoch.
        let now = reader.load();
        assert_eq!(now.epoch, 3);
        assert_eq!(now.state.relation("R".into()).unwrap(), &rel! { ["a"] => (2,) });
    }

    #[test]
    fn cell_clones_share_and_readers_are_cheap() {
        let cell = EpochCell::new(DbState::new());
        let cell2 = cell.clone();
        let r1 = cell.reader();
        let r2 = r1.clone();
        cell2.publish(state_with(7));
        assert_eq!(r1.epoch(), 2);
        assert_eq!(r2.epoch(), 2);
        // Loaded Arcs point at the same epoch object.
        assert!(Arc::ptr_eq(&r1.load(), &r2.load()));
    }

    #[test]
    fn debug_renders() {
        let cell = EpochCell::new(state_with(1));
        let s = format!("{cell:?} {:?}", cell.reader());
        assert!(s.contains("epoch"), "{s}");
    }

    #[test]
    fn epochs_shared_across_threads() {
        let cell = EpochCell::new(state_with(0));
        let reader = cell.reader();
        std::thread::scope(|scope| {
            let h = scope.spawn(move || {
                // Every observation must be a whole published state.
                let mut last = 0;
                for _ in 0..64 {
                    let e = reader.load();
                    assert!(e.epoch >= last);
                    last = e.epoch;
                }
                last
            });
            for i in 1..32 {
                cell.publish(state_with(i));
            }
            h.join().expect("reader thread");
        });
    }
}
