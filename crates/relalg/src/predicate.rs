//! Selection predicates.
//!
//! Selection conditions for `σ` are boolean combinations of comparisons
//! between attributes and constants. Predicates are compiled against a
//! concrete header once per operator evaluation ([`CompiledPred`]), so the
//! per-tuple work is purely positional.

use crate::attrs::AttrSet;
use crate::error::{RelalgError, Result};
use crate::symbol::Attr;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with swapped operands (`a op b ⇔ b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`¬(a op b) ⇔ a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The textual form used by the parser/printer.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One side of a comparison.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An attribute reference.
    Attr(Attr),
    /// A constant value.
    Const(Value),
}

impl Operand {
    /// Convenience constructor for attribute operands.
    pub fn attr(name: &str) -> Operand {
        Operand::Attr(Attr::new(name))
    }

    /// Convenience constructor for constant operands.
    pub fn val(v: impl Into<Value>) -> Operand {
        Operand::Const(v.into())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A selection predicate.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// `lhs op rhs`.
    Cmp(Operand, CmpOp, Operand),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `lhs op rhs` comparison.
    pub fn cmp(lhs: Operand, op: CmpOp, rhs: Operand) -> Predicate {
        Predicate::Cmp(lhs, op, rhs)
    }

    /// `attr = value`, the most common atomic predicate.
    pub fn attr_eq(attr: &str, v: impl Into<Value>) -> Predicate {
        Predicate::Cmp(Operand::attr(attr), CmpOp::Eq, Operand::val(v))
    }

    /// Conjunction, flattening trivial cases.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::False, _) | (_, Predicate::False) => Predicate::False,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction, flattening trivial cases.
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::False, p) | (p, Predicate::False) => p,
            (Predicate::True, _) | (_, Predicate::True) => Predicate::True,
            (a, b) => Predicate::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation, flattening trivial cases (by-value combinator matching
    /// [`Predicate::and`]/[`Predicate::or`], intentionally named like the
    /// logical operation).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            Predicate::Cmp(l, op, r) => Predicate::Cmp(l, op.negate(), r),
            p => Predicate::Not(Box::new(p)),
        }
    }

    /// The attributes referenced by the predicate.
    pub fn attrs(&self) -> AttrSet {
        fn walk(p: &Predicate, out: &mut Vec<Attr>) {
            match p {
                Predicate::True | Predicate::False => {}
                Predicate::Cmp(l, _, r) => {
                    if let Operand::Attr(a) = l {
                        out.push(*a);
                    }
                    if let Operand::Attr(a) = r {
                        out.push(*a);
                    }
                }
                Predicate::And(a, b) | Predicate::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Predicate::Not(a) => walk(a, out),
            }
        }
        let mut v = Vec::new();
        walk(self, &mut v);
        AttrSet::from_iter(v)
    }

    /// Compiles the predicate against a header, resolving attribute
    /// references to column indices.
    pub fn compile(&self, header: &AttrSet) -> Result<CompiledPred> {
        let node = compile_node(self, header)?;
        Ok(CompiledPred { node })
    }

    /// Evaluates directly against a tuple+header (convenience; compiles on
    /// the fly — use [`Predicate::compile`] in loops).
    pub fn eval(&self, tuple: &Tuple, header: &AttrSet) -> Result<bool> {
        Ok(self.compile(header)?.eval(tuple))
    }

    /// Structural constant folding: evaluates ground comparisons and
    /// collapses `True`/`False` through connectives.
    pub fn fold(&self) -> Predicate {
        match self {
            Predicate::Cmp(Operand::Const(l), op, Operand::Const(r)) => {
                if op.test(l.cmp(r)) {
                    Predicate::True
                } else {
                    Predicate::False
                }
            }
            Predicate::Cmp(Operand::Attr(a), op, Operand::Attr(b)) if a == b => {
                // x op x is ground for reflexive-determined operators.
                match op {
                    CmpOp::Eq | CmpOp::Le | CmpOp::Ge => Predicate::True,
                    CmpOp::Ne | CmpOp::Lt | CmpOp::Gt => Predicate::False,
                }
            }
            Predicate::And(a, b) => a.fold().and(b.fold()),
            Predicate::Or(a, b) => a.fold().or(b.fold()),
            Predicate::Not(a) => a.fold().not(),
            p => p.clone(),
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Const(bool),
    Cmp(Slot, CmpOp, Slot),
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Not(Box<Node>),
}

#[derive(Clone, Debug)]
enum Slot {
    Col(usize),
    Lit(Value),
}

fn compile_node(p: &Predicate, header: &AttrSet) -> Result<Node> {
    let slot = |o: &Operand| -> Result<Slot> {
        match o {
            Operand::Attr(a) => header
                .index_of(*a)
                .map(Slot::Col)
                .ok_or(RelalgError::UnknownAttribute {
                    attr: *a,
                    header: header.clone(),
                }),
            Operand::Const(v) => Ok(Slot::Lit(v.clone())),
        }
    };
    Ok(match p {
        Predicate::True => Node::Const(true),
        Predicate::False => Node::Const(false),
        Predicate::Cmp(l, op, r) => Node::Cmp(slot(l)?, *op, slot(r)?),
        Predicate::And(a, b) => Node::And(
            Box::new(compile_node(a, header)?),
            Box::new(compile_node(b, header)?),
        ),
        Predicate::Or(a, b) => Node::Or(
            Box::new(compile_node(a, header)?),
            Box::new(compile_node(b, header)?),
        ),
        Predicate::Not(a) => Node::Not(Box::new(compile_node(a, header)?)),
    })
}

/// A predicate resolved against a fixed header; evaluation is positional.
#[derive(Clone, Debug)]
pub struct CompiledPred {
    node: Node,
}

impl CompiledPred {
    /// Evaluates against a tuple laid out per the compile-time header.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        eval_node(&self.node, &|i| tuple.get(i))
    }

    /// Evaluates against one row given as a value slice in compile-time
    /// header order — the columnar scan path: the evaluator resolves a
    /// relation's rows once and feeds slices, with no per-row tuple
    /// materialization.
    pub fn eval_values(&self, row: &[&Value]) -> bool {
        eval_node(&self.node, &|i| row[i])
    }
}

fn eval_node<'a>(n: &'a Node, get: &impl Fn(usize) -> &'a Value) -> bool {
    match n {
        Node::Const(b) => *b,
        Node::Cmp(l, op, r) => {
            let lv = match l {
                Slot::Col(i) => get(*i),
                Slot::Lit(v) => v,
            };
            let rv = match r {
                Slot::Col(i) => get(*i),
                Slot::Lit(v) => v,
            };
            op.test(lv.cmp(rv))
        }
        Node::And(a, b) => eval_node(a, get) && eval_node(b, get),
        Node::Or(a, b) => eval_node(a, get) || eval_node(b, get),
        Node::Not(a) => !eval_node(a, get),
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Parenthesize children of lower precedence: not > and > or.
        fn prec(p: &Predicate) -> u8 {
            match p {
                Predicate::Or(_, _) => 0,
                Predicate::And(_, _) => 1,
                _ => 2,
            }
        }
        fn write(p: &Predicate, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
            let needs_parens = prec(p) < min;
            if needs_parens {
                write!(f, "(")?;
            }
            match p {
                Predicate::True => write!(f, "true")?,
                Predicate::False => write!(f, "false")?,
                Predicate::Cmp(l, op, r) => write!(f, "{l} {op} {r}")?,
                Predicate::And(a, b) => {
                    write(a, f, 1)?;
                    write!(f, " and ")?;
                    write(b, f, 1)?;
                }
                Predicate::Or(a, b) => {
                    write(a, f, 0)?;
                    write!(f, " or ")?;
                    write(b, f, 0)?;
                }
                Predicate::Not(a) => {
                    write!(f, "not ")?;
                    write(a, f, 2)?;
                }
            }
            if needs_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        write(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> AttrSet {
        AttrSet::from_names(&["age", "clerk"])
    }

    fn mary23() -> Tuple {
        // Canonical order {age, clerk}.
        Tuple::new(vec![Value::int(23), Value::str("Mary")])
    }

    #[test]
    fn atomic_comparisons() {
        let h = header();
        let t = mary23();
        assert!(Predicate::attr_eq("clerk", "Mary").eval(&t, &h).unwrap());
        assert!(!Predicate::attr_eq("clerk", "John").eval(&t, &h).unwrap());
        assert!(Predicate::cmp(Operand::attr("age"), CmpOp::Lt, Operand::val(30))
            .eval(&t, &h)
            .unwrap());
        assert!(Predicate::cmp(Operand::attr("age"), CmpOp::Ge, Operand::val(23))
            .eval(&t, &h)
            .unwrap());
    }

    #[test]
    fn attr_attr_comparison() {
        let h = AttrSet::from_names(&["a", "b"]);
        let t = Tuple::new(vec![Value::int(1), Value::int(2)]);
        let p = Predicate::cmp(Operand::attr("a"), CmpOp::Lt, Operand::attr("b"));
        assert!(p.eval(&t, &h).unwrap());
    }

    #[test]
    fn connectives() {
        let h = header();
        let t = mary23();
        let p = Predicate::attr_eq("clerk", "Mary").and(Predicate::attr_eq("age", 23));
        assert!(p.eval(&t, &h).unwrap());
        let p = Predicate::attr_eq("clerk", "John").or(Predicate::attr_eq("age", 23));
        assert!(p.eval(&t, &h).unwrap());
        let p = Predicate::attr_eq("clerk", "Mary").not();
        assert!(!p.eval(&t, &h).unwrap());
    }

    #[test]
    fn unknown_attr_is_a_compile_error() {
        let p = Predicate::attr_eq("salary", 100);
        assert!(matches!(
            p.compile(&header()),
            Err(RelalgError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn trivial_connective_flattening() {
        let p = Predicate::True.and(Predicate::attr_eq("a", 1));
        assert_eq!(p, Predicate::attr_eq("a", 1));
        assert_eq!(Predicate::False.and(Predicate::attr_eq("a", 1)), Predicate::False);
        assert_eq!(Predicate::True.or(Predicate::attr_eq("a", 1)), Predicate::True);
        assert_eq!(Predicate::attr_eq("a", 1).not().not(), Predicate::attr_eq("a", 1));
    }

    #[test]
    fn fold_ground_comparisons() {
        let p = Predicate::cmp(Operand::val(1), CmpOp::Lt, Operand::val(2));
        assert_eq!(p.fold(), Predicate::True);
        let p = Predicate::cmp(Operand::attr("x"), CmpOp::Eq, Operand::attr("x"));
        assert_eq!(p.fold(), Predicate::True);
        let p = Predicate::cmp(Operand::attr("x"), CmpOp::Lt, Operand::attr("x"));
        assert_eq!(p.fold(), Predicate::False);
        let nested = Predicate::cmp(Operand::val(1), CmpOp::Eq, Operand::val(1))
            .and(Predicate::attr_eq("x", 1));
        assert_eq!(nested.fold(), Predicate::attr_eq("x", 1));
    }

    #[test]
    fn negate_pushes_into_comparison() {
        let p = Predicate::cmp(Operand::attr("age"), CmpOp::Lt, Operand::val(30)).not();
        assert_eq!(
            p,
            Predicate::cmp(Operand::attr("age"), CmpOp::Ge, Operand::val(30))
        );
    }

    #[test]
    fn predicate_attrs() {
        let p = Predicate::attr_eq("clerk", "Mary")
            .and(Predicate::cmp(Operand::attr("age"), CmpOp::Lt, Operand::attr("cap")));
        assert_eq!(p.attrs(), AttrSet::from_names(&["age", "cap", "clerk"]));
        assert_eq!(Predicate::True.attrs(), AttrSet::empty());
    }

    #[test]
    fn display_respects_precedence() {
        let p = Predicate::attr_eq("a", 1)
            .or(Predicate::attr_eq("b", 2))
            .and(Predicate::attr_eq("c", 3));
        assert_eq!(p.to_string(), "(a = 1 or b = 2) and c = 3");
        let q = Predicate::attr_eq("a", 1).and(Predicate::attr_eq("b", 2)).not();
        assert_eq!(q.to_string(), "not (a = 1 and b = 2)");
    }

    #[test]
    fn cmp_op_algebra() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
                assert_eq!(op.test(ord), !op.negate().test(ord));
                assert_eq!(op.test(ord), op.flip().test(ord.reverse()));
            }
        }
    }
}
