//! Relation schemata and the catalog `D`.
//!
//! A [`Catalog`] is the paper's `D = {R1, …, Rn}` together with its
//! declared integrity constraints: at most one key per relation schema and
//! a set of acyclic inclusion dependencies.

use crate::attrs::AttrSet;
use crate::constraints::{topological_order, InclusionDep};
use crate::error::{RelalgError, Result};
use crate::symbol::RelName;
use std::collections::BTreeMap;
use std::fmt;

/// A relation schema: name, attributes and an optional key.
#[derive(Clone, PartialEq, Eq)]
pub struct RelSchema {
    name: RelName,
    attrs: AttrSet,
    key: Option<AttrSet>,
}

impl RelSchema {
    /// Builds a schema; the key, if given, must be a subset of the
    /// attributes.
    pub fn new(name: RelName, attrs: AttrSet, key: Option<AttrSet>) -> Result<RelSchema> {
        if let Some(k) = &key {
            if !k.is_subset(&attrs) || k.is_empty() {
                return Err(RelalgError::BadKey {
                    relation: name,
                    key: k.clone(),
                    header: attrs,
                });
            }
        }
        Ok(RelSchema { name, attrs, key })
    }

    /// The relation name.
    pub fn name(&self) -> RelName {
        self.name
    }

    /// The attribute set (the paper writes `attr(R)`).
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The declared key, if any.
    pub fn key(&self) -> Option<&AttrSet> {
        self.key.as_ref()
    }
}

impl fmt::Debug for RelSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let keyed = self.key.as_ref().is_some_and(|k| k.contains(a));
            if keyed {
                write!(f, "{a}*")?;
            } else {
                write!(f, "{a}")?;
            }
        }
        write!(f, ")")
    }
}

/// The set `D` of base relation schemata plus declared constraints.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    schemas: BTreeMap<RelName, RelSchema>,
    inds: Vec<InclusionDep>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Declares a relation schema without a key.
    pub fn add_schema(&mut self, name: &str, attrs: &[&str]) -> Result<RelName> {
        self.add(RelSchema::new(
            RelName::new(name),
            AttrSet::from_names(attrs),
            None,
        )?)
    }

    /// Declares a relation schema with a key.
    pub fn add_schema_with_key(
        &mut self,
        name: &str,
        attrs: &[&str],
        key: &[&str],
    ) -> Result<RelName> {
        self.add(RelSchema::new(
            RelName::new(name),
            AttrSet::from_names(attrs),
            Some(AttrSet::from_names(key)),
        )?)
    }

    /// Declares a pre-built schema.
    pub fn add(&mut self, schema: RelSchema) -> Result<RelName> {
        let name = schema.name();
        if self.schemas.contains_key(&name) {
            return Err(RelalgError::DuplicateRelation(name));
        }
        self.schemas.insert(name, schema);
        Ok(name)
    }

    /// Declares the inclusion dependency `π_X(from) ⊆ π_X(to)`. Validates
    /// that both relations exist, that `X` is non-empty and within both
    /// attribute sets, and that the dependency set stays acyclic.
    pub fn add_inclusion_dep(&mut self, dep: InclusionDep) -> Result<()> {
        let from = self.schema(dep.from)?;
        let to = self.schema(dep.to)?;
        if dep.attrs.is_empty() {
            return Err(RelalgError::BadInclusionDep {
                detail: format!("{dep}: empty attribute set"),
            });
        }
        if !dep.attrs.is_subset(from.attrs()) || !dep.attrs.is_subset(to.attrs()) {
            return Err(RelalgError::BadInclusionDep {
                detail: format!(
                    "{dep}: attributes must be common to {:?} and {:?}",
                    from.attrs(),
                    to.attrs()
                ),
            });
        }
        let mut candidate = self.inds.clone();
        candidate.push(dep.clone());
        topological_order(self.schemas.keys().copied(), &candidate)?;
        self.inds = candidate;
        Ok(())
    }

    /// Declares a foreign key: a key on `to` over `attrs` (which must
    /// already be declared) plus the inclusion dependency `from ⊆ to`.
    pub fn add_foreign_key(&mut self, from: &str, to: &str, attrs: &[&str]) -> Result<()> {
        let x = AttrSet::from_names(attrs);
        let to_name = RelName::new(to);
        let to_schema = self.schema(to_name)?;
        match to_schema.key() {
            Some(k) if k.is_subset(&x) => {}
            _ => {
                return Err(RelalgError::BadInclusionDep {
                    detail: format!(
                        "foreign key {from} -> {to} over {x} requires the key of {to} to be contained in {x}"
                    ),
                })
            }
        }
        self.add_inclusion_dep(InclusionDep::new(from, to, x))
    }

    /// Looks up a schema.
    pub fn schema(&self, name: RelName) -> Result<&RelSchema> {
        self.schemas
            .get(&name)
            .ok_or(RelalgError::UnknownRelation(name))
    }

    /// True iff the relation is declared.
    pub fn contains(&self, name: RelName) -> bool {
        self.schemas.contains_key(&name)
    }

    /// All declared relation names, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = RelName> + '_ {
        self.schemas.keys().copied()
    }

    /// All declared schemata, sorted by name.
    pub fn schemas(&self) -> impl Iterator<Item = &RelSchema> + '_ {
        self.schemas.values()
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True iff no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// The declared inclusion dependencies.
    pub fn inclusion_deps(&self) -> &[InclusionDep] {
        &self.inds
    }

    /// Inclusion dependencies whose *target* is `to` (these are the ones
    /// Theorem 2.2 exploits when complementing `to`).
    pub fn inclusion_deps_into(&self, to: RelName) -> impl Iterator<Item = &InclusionDep> + '_ {
        self.inds.iter().filter(move |d| d.to == to)
    }

    /// A topological order of the relations such that IND targets precede
    /// IND sources. The catalog's constructors keep the dependency set
    /// acyclic, so this only fails for a catalog whose invariant was
    /// bypassed (e.g. built from raw parts by future code) — the error then
    /// carries the full cycle witness instead of panicking.
    pub fn ind_topological_order(&self) -> Result<Vec<RelName>> {
        topological_order(self.schemas.keys().copied(), &self.inds)
    }

    /// Re-checks every declared constraint from scratch: keys are subsets
    /// of their headers, each IND is well-formed (both endpoints exist,
    /// `X` non-empty and common to both headers), and the IND graph is
    /// acyclic. The incremental constructors already enforce all of this,
    /// so `validate` is cheap insurance for catalogs that cross an API
    /// boundary (parser, shell, spec files) before complement computation.
    pub fn validate(&self) -> Result<()> {
        for s in self.schemas.values() {
            if let Some(k) = s.key() {
                if k.is_empty() || !k.is_subset(s.attrs()) {
                    return Err(RelalgError::BadKey {
                        relation: s.name(),
                        key: k.clone(),
                        header: s.attrs().clone(),
                    });
                }
            }
        }
        for dep in &self.inds {
            let from = self.schema(dep.from)?;
            let to = self.schema(dep.to)?;
            if dep.attrs.is_empty() {
                return Err(RelalgError::BadInclusionDep {
                    detail: format!("{dep}: empty attribute set"),
                });
            }
            if !dep.attrs.is_subset(from.attrs()) || !dep.attrs.is_subset(to.attrs()) {
                return Err(RelalgError::BadInclusionDep {
                    detail: format!(
                        "{dep}: attributes must be common to {:?} and {:?}",
                        from.attrs(),
                        to.attrs()
                    ),
                });
            }
        }
        topological_order(self.schemas.keys().copied(), &self.inds)?;
        Ok(())
    }

    /// The union of all attributes declared anywhere (used by cover
    /// search heuristics and generators).
    pub fn all_attrs(&self) -> AttrSet {
        self.schemas
            .values()
            .fold(AttrSet::empty(), |acc, s| acc.union(s.attrs()))
    }

    /// Attribute helper: `attr(R)` as the paper writes it.
    pub fn attrs_of(&self, name: RelName) -> Result<&AttrSet> {
        Ok(self.schema(name)?.attrs())
    }

    /// The key of `name`, if declared.
    pub fn key_of(&self, name: RelName) -> Result<Option<&AttrSet>> {
        Ok(self.schema(name)?.key())
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "catalog:")?;
        for s in self.schemas.values() {
            writeln!(f, "  {s:?}")?;
        }
        for d in &self.inds {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Iterator support for `for name in &catalog`.
impl<'a> IntoIterator for &'a Catalog {
    type Item = &'a RelSchema;
    type IntoIter = std::collections::btree_map::Values<'a, RelName, RelSchema>;

    fn into_iter(self) -> Self::IntoIter {
        self.schemas.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_23_catalog() -> Catalog {
        // R1(A,B,C), R2(A,C,D), R3(A,B); A key of each;
        // π_AB(R3) ⊆ π_AB(R1), π_AC(R2) ⊆ π_AC(R1).
        let mut c = Catalog::new();
        c.add_schema_with_key("R1", &["A", "B", "C"], &["A"]).unwrap();
        c.add_schema_with_key("R2", &["A", "C", "D"], &["A"]).unwrap();
        c.add_schema_with_key("R3", &["A", "B"], &["A"]).unwrap();
        c.add_inclusion_dep(InclusionDep::new("R3", "R1", AttrSet::from_names(&["A", "B"])))
            .unwrap();
        c.add_inclusion_dep(InclusionDep::new("R2", "R1", AttrSet::from_names(&["A", "C"])))
            .unwrap();
        c
    }

    #[test]
    fn build_and_lookup() {
        let c = example_23_catalog();
        assert_eq!(c.len(), 3);
        let r1 = c.schema(RelName::new("R1")).unwrap();
        assert_eq!(r1.attrs(), &AttrSet::from_names(&["A", "B", "C"]));
        assert_eq!(r1.key(), Some(&AttrSet::from_names(&["A"])));
        assert!(c.schema(RelName::new("R9")).is_err());
    }

    #[test]
    fn duplicate_schema_rejected() {
        let mut c = Catalog::new();
        c.add_schema("R", &["A"]).unwrap();
        assert!(matches!(
            c.add_schema("R", &["B"]),
            Err(RelalgError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn bad_key_rejected() {
        let res = RelSchema::new(
            RelName::new("R"),
            AttrSet::from_names(&["A"]),
            Some(AttrSet::from_names(&["Z"])),
        );
        assert!(matches!(res, Err(RelalgError::BadKey { .. })));
        let res = RelSchema::new(
            RelName::new("R"),
            AttrSet::from_names(&["A"]),
            Some(AttrSet::empty()),
        );
        assert!(res.is_err());
    }

    #[test]
    fn ind_validation() {
        let mut c = Catalog::new();
        c.add_schema("R", &["A", "B"]).unwrap();
        c.add_schema("S", &["B", "C"]).unwrap();
        // A not common to both.
        assert!(c
            .add_inclusion_dep(InclusionDep::new("R", "S", AttrSet::from_names(&["A"])))
            .is_err());
        // Empty attribute set.
        assert!(c
            .add_inclusion_dep(InclusionDep::new("R", "S", AttrSet::empty()))
            .is_err());
        // Unknown relation.
        assert!(c
            .add_inclusion_dep(InclusionDep::new("R", "Z", AttrSet::from_names(&["B"])))
            .is_err());
        // Valid one.
        c.add_inclusion_dep(InclusionDep::new("R", "S", AttrSet::from_names(&["B"])))
            .unwrap();
        // Reverse direction would close a cycle.
        assert!(c
            .add_inclusion_dep(InclusionDep::new("S", "R", AttrSet::from_names(&["B"])))
            .is_err());
        assert_eq!(c.inclusion_deps().len(), 1);
    }

    #[test]
    fn foreign_key_requires_key_on_target() {
        let mut c = Catalog::new();
        c.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
        c.add_schema("Sale", &["item", "clerk"]).unwrap();
        c.add_foreign_key("Sale", "Emp", &["clerk"]).unwrap();
        assert_eq!(c.inclusion_deps().len(), 1);
        // No key on Sale => FK into Sale is rejected.
        let err = c.add_foreign_key("Emp", "Sale", &["clerk"]).unwrap_err();
        assert!(matches!(err, RelalgError::BadInclusionDep { .. }));
    }

    #[test]
    fn ind_topological_order_targets_first() {
        let c = example_23_catalog();
        let order = c.ind_topological_order().unwrap();
        let pos = |n: &str| order.iter().position(|&x| x == RelName::new(n)).unwrap();
        assert!(pos("R1") < pos("R2"));
        assert!(pos("R1") < pos("R3"));
    }

    #[test]
    fn validate_accepts_constructed_catalogs() {
        assert!(example_23_catalog().validate().is_ok());
        assert!(Catalog::new().validate().is_ok());
    }

    #[test]
    fn deps_into() {
        let c = example_23_catalog();
        assert_eq!(c.inclusion_deps_into(RelName::new("R1")).count(), 2);
        assert_eq!(c.inclusion_deps_into(RelName::new("R2")).count(), 0);
    }

    #[test]
    fn all_attrs_union() {
        let c = example_23_catalog();
        assert_eq!(c.all_attrs(), AttrSet::from_names(&["A", "B", "C", "D"]));
    }

    #[test]
    fn debug_marks_key_attrs() {
        let c = example_23_catalog();
        let s = format!("{:?}", c.schema(RelName::new("R1")).unwrap());
        assert_eq!(s, "R1(A*, B, C)");
    }
}
