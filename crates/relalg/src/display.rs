//! Pretty printing of expressions.
//!
//! The printed form is exactly the grammar accepted by [`crate::parse`],
//! so `RaExpr::parse(&expr.to_string())` round-trips (a property test in
//! `parse.rs` pins this down). Binary operators are always parenthesized;
//! unary operators use the `op[args](input)` form:
//!
//! ```text
//! pi[age](sigma[item = 'PC'](Sale join Emp))
//! ```

use crate::expr::RaExpr;
use std::fmt;

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Base(n) => write!(f, "{n}"),
            RaExpr::Empty(attrs) => {
                write!(f, "empty[")?;
                write_attr_list(f, attrs)?;
                write!(f, "]")
            }
            RaExpr::Select(input, pred) => write!(f, "sigma[{pred}]({input})"),
            RaExpr::Project(input, attrs) => {
                write!(f, "pi[")?;
                write_attr_list(f, attrs)?;
                write!(f, "]({input})")
            }
            RaExpr::Join(l, r) => write!(f, "({l} join {r})"),
            RaExpr::Union(l, r) => write!(f, "({l} union {r})"),
            RaExpr::Diff(l, r) => write!(f, "({l} minus {r})"),
            RaExpr::Intersect(l, r) => write!(f, "({l} intersect {r})"),
            RaExpr::Rename(input, pairs) => {
                write!(f, "rho[")?;
                for (i, (from, to)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{from} -> {to}")?;
                }
                write!(f, "]({input})")
            }
        }
    }
}

fn write_attr_list(f: &mut fmt::Formatter<'_>, attrs: &crate::attrs::AttrSet) -> fmt::Result {
    for (i, a) in attrs.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{a}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrSet;
    use crate::predicate::Predicate;
    use crate::symbol::Attr;

    #[test]
    fn display_forms() {
        let sold = RaExpr::base("Sale").join(RaExpr::base("Emp"));
        assert_eq!(sold.to_string(), "(Sale join Emp)");

        let c1 = RaExpr::base("Emp").diff(sold.clone().project_names(&["clerk", "age"]));
        assert_eq!(c1.to_string(), "(Emp minus pi[age, clerk]((Sale join Emp)))");

        let q = RaExpr::base("Sale")
            .select(Predicate::attr_eq("item", "PC"))
            .project_names(&["clerk"]);
        assert_eq!(q.to_string(), "pi[clerk](sigma[item = 'PC'](Sale))");

        let e = RaExpr::empty(AttrSet::from_names(&["b", "a"]));
        assert_eq!(e.to_string(), "empty[a, b]");

        let r = RaExpr::base("Emp").rename(vec![(Attr::new("age"), Attr::new("years"))]);
        assert_eq!(r.to_string(), "rho[age -> years](Emp)");

        let u = RaExpr::base("A").union(RaExpr::base("B")).intersect(RaExpr::base("C"));
        assert_eq!(u.to_string(), "((A union B) intersect C)");
    }
}
