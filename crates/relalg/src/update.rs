//! The update model.
//!
//! The paper treats an update `u` as a state transformer on `D`
//! (Definition 4.1, Figure 3). We represent `u` concretely as a set of
//! per-relation deltas — tuples to delete and tuples to insert — which is
//! exactly what decoupled sources report to the integrator in the
//! warehousing architecture of Figure 1. Applying an update yields
//! `d' = u(d)` with `r' = (r ∖ delete) ∪ insert` per relation.

use crate::database::DbState;
use crate::error::{RelalgError, Result};
use crate::relation::Relation;
use crate::symbol::RelName;
use std::collections::BTreeMap;
use std::fmt;

/// A delta on a single relation: tuples to delete, then tuples to insert.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    insert: Relation,
    delete: Relation,
}

impl Delta {
    /// Builds a delta; both sides must share a header.
    pub fn new(insert: Relation, delete: Relation) -> Result<Delta> {
        if insert.attrs() != delete.attrs() {
            return Err(RelalgError::HeaderMismatch {
                left: insert.attrs().clone(),
                right: delete.attrs().clone(),
            });
        }
        Ok(Delta { insert, delete })
    }

    /// A pure insertion.
    pub fn insert_only(insert: Relation) -> Delta {
        let delete = Relation::empty(insert.attrs().clone());
        Delta { insert, delete }
    }

    /// A pure deletion.
    pub fn delete_only(delete: Relation) -> Delta {
        let insert = Relation::empty(delete.attrs().clone());
        Delta { insert, delete }
    }

    /// The inserted tuples.
    pub fn inserted(&self) -> &Relation {
        &self.insert
    }

    /// The deleted tuples.
    pub fn deleted(&self) -> &Relation {
        &self.delete
    }

    /// True iff the delta changes nothing syntactically.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }

    /// Number of tuples mentioned (insertions + deletions) — the "size of
    /// the reported change" metric used by the experiments.
    pub fn len(&self) -> usize {
        self.insert.len() + self.delete.len()
    }

    /// Applies the delta to an instance: `(current ∖ delete) ∪ insert`.
    pub fn apply(&self, current: &Relation) -> Result<Relation> {
        current.apply_delta(&self.insert, &self.delete)
    }

    /// The *net effect* relative to `current`: deletions restricted to
    /// tuples actually present (and not re-inserted), insertions restricted
    /// to tuples actually new. Normalized deltas satisfy
    /// `delete ⊆ current`, `insert ∩ current = ∅` and
    /// `insert ∩ delete = ∅`, and produce the same next state.
    pub fn normalize(&self, current: &Relation) -> Result<Delta> {
        let next = self.apply(current)?;
        Ok(Delta {
            insert: next.difference(current)?,
            delete: current.difference(&next)?,
        })
    }
}

/// An update `u` over `D`: one delta per touched relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Update {
    deltas: BTreeMap<RelName, Delta>,
    /// Set when [`Update::with`] was asked to compose deltas with
    /// mismatched headers; surfaced as a typed error at application time
    /// so the builder API can stay infallible.
    invalid: Option<RelalgError>,
}

impl Update {
    /// The empty update.
    pub fn new() -> Update {
        Update::default()
    }

    /// Adds (or merges, by sequential composition on the same relation) a
    /// delta for `name`.
    ///
    /// Composing two deltas for the same relation with different headers
    /// is a schema error; the builder records it and every later
    /// [`Update::apply`]/[`Update::normalize`] call reports it as a
    /// [`RelalgError::HeaderMismatch`].
    pub fn with(mut self, name: impl Into<RelName>, delta: Delta) -> Update {
        let name = name.into();
        match self.deltas.remove(&name) {
            None => {
                self.deltas.insert(name, delta);
            }
            Some(first) => {
                // Sequential composition: apply `first`, then `delta`.
                // delete = first.delete ∪ (delta.delete ∖ first.insert)
                // insert = (first.insert ∖ delta.delete) ∪ delta.insert
                let composed = first.delete.union(&delta.delete).and_then(|delete| {
                    let insert = first
                        .insert
                        .difference(&delta.delete)
                        .and_then(|r| r.union(&delta.insert))?;
                    Ok(Delta { insert, delete })
                });
                match composed {
                    Ok(d) => {
                        self.deltas.insert(name, d);
                    }
                    Err(e) => {
                        // Keep the first delta and remember the mismatch.
                        self.deltas.insert(name, first);
                        self.invalid.get_or_insert(e);
                    }
                }
            }
        }
        self
    }

    /// The header-mismatch recorded by [`Update::with`], if any.
    fn check_valid(&self) -> Result<()> {
        match &self.invalid {
            None => Ok(()),
            Some(e) => Err(e.clone()),
        }
    }

    /// Shorthand for an insertion-only update on one relation.
    pub fn inserting(name: impl Into<RelName>, rows: Relation) -> Update {
        Update::new().with(name, Delta::insert_only(rows))
    }

    /// Shorthand for a deletion-only update on one relation.
    pub fn deleting(name: impl Into<RelName>, rows: Relation) -> Update {
        Update::new().with(name, Delta::delete_only(rows))
    }

    /// The delta for `name`, if any.
    pub fn delta(&self, name: RelName) -> Option<&Delta> {
        self.deltas.get(&name)
    }

    /// Iterates `(relation, delta)` pairs sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (RelName, &Delta)> + '_ {
        self.deltas.iter().map(|(&n, d)| (n, d))
    }

    /// Names of the relations touched.
    pub fn touched(&self) -> impl Iterator<Item = RelName> + '_ {
        self.deltas.keys().copied()
    }

    /// True iff no relation is touched.
    pub fn is_empty(&self) -> bool {
        self.deltas.values().all(Delta::is_empty)
    }

    /// Total reported-change size.
    pub fn len(&self) -> usize {
        self.deltas.values().map(Delta::len).sum()
    }

    /// Applies the update, producing the next database state `u(d)`.
    /// Untouched relations are shared unchanged.
    pub fn apply(&self, db: &DbState) -> Result<DbState> {
        let mut next = db.clone();
        self.apply_mut(&mut next)?;
        Ok(next)
    }

    /// In-place application.
    pub fn apply_mut(&self, db: &mut DbState) -> Result<()> {
        self.check_valid()?;
        for (&name, delta) in &self.deltas {
            let current = db.relation(name)?;
            let next = delta.apply(current)?;
            db.insert_relation(name, next);
        }
        Ok(())
    }

    /// Normalizes every delta against `db` (see [`Delta::normalize`]).
    pub fn normalize(&self, db: &DbState) -> Result<Update> {
        self.check_valid()?;
        let mut out = Update::new();
        for (&name, delta) in &self.deltas {
            let normalized = delta.normalize(db.relation(name)?)?;
            if !normalized.is_empty() {
                out.deltas.insert(name, normalized);
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.deltas.is_empty() {
            return write!(f, "(no-op update)");
        }
        for (name, d) in &self.deltas {
            writeln!(f, "{name}: +{} -{}", d.insert.len(), d.delete.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrSet;
    use crate::rel;

    fn emp() -> Relation {
        rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) }
    }

    #[test]
    fn delta_header_check() {
        let ins = rel! { ["a"] => (1,) };
        let del = rel! { ["b"] => (2,) };
        assert!(Delta::new(ins, del).is_err());
    }

    #[test]
    fn apply_delete_then_insert() {
        let d = Delta::new(
            rel! { ["clerk", "age"] => ("Zoe", 40) },
            rel! { ["clerk", "age"] => ("Mary", 23) },
        )
        .unwrap();
        let next = d.apply(&emp()).unwrap();
        assert_eq!(next.len(), 3);
        assert!(next.contains(&rel! { ["clerk", "age"] => ("Zoe", 40) }.iter().next().unwrap().clone()));
    }

    #[test]
    fn overlapping_insert_wins_over_delete() {
        // t in both delete and insert: (r ∖ del) ∪ ins keeps it.
        let t = rel! { ["clerk", "age"] => ("Mary", 23) };
        let d = Delta::new(t.clone(), t.clone()).unwrap();
        let next = d.apply(&emp()).unwrap();
        assert_eq!(next, emp());
    }

    #[test]
    fn normalize_produces_net_effect() {
        let d = Delta::new(
            // "John 25" already present, "Zoe 40" is new
            rel! { ["clerk", "age"] => ("John", 25), ("Zoe", 40) },
            // "Ghost" not present, "Paula 32" is
            rel! { ["clerk", "age"] => ("Ghost", 1), ("Paula", 32) },
        )
        .unwrap();
        let n = d.normalize(&emp()).unwrap();
        assert_eq!(n.inserted(), &rel! { ["clerk", "age"] => ("Zoe", 40) });
        assert_eq!(n.deleted(), &rel! { ["clerk", "age"] => ("Paula", 32) });
        assert_eq!(n.apply(&emp()).unwrap(), d.apply(&emp()).unwrap());
    }

    #[test]
    fn update_apply_and_composition() {
        let mut db = DbState::new();
        db.insert_relation("Emp", emp());
        let u = Update::inserting("Emp", rel! { ["clerk", "age"] => ("Zoe", 40) });
        let db2 = u.apply(&db).unwrap();
        assert_eq!(db2.relation(RelName::new("Emp")).unwrap().len(), 4);

        // Composition on the same relation: insert then delete the same tuple.
        let u = Update::new()
            .with("Emp", Delta::insert_only(rel! { ["clerk", "age"] => ("Zoe", 40) }))
            .with("Emp", Delta::delete_only(rel! { ["clerk", "age"] => ("Zoe", 40) }));
        let db3 = u.apply(&db).unwrap();
        assert_eq!(db3, db);

        // Delete then insert the same tuple keeps it.
        let u = Update::new()
            .with("Emp", Delta::delete_only(rel! { ["clerk", "age"] => ("Mary", 23) }))
            .with("Emp", Delta::insert_only(rel! { ["clerk", "age"] => ("Mary", 23) }));
        let db4 = u.apply(&db).unwrap();
        assert_eq!(db4, db);
    }

    #[test]
    fn mismatched_composition_surfaces_at_apply() {
        let mut db = DbState::new();
        db.insert_relation("Emp", emp());
        let u = Update::new()
            .with("Emp", Delta::insert_only(rel! { ["clerk", "age"] => ("Zoe", 40) }))
            .with("Emp", Delta::insert_only(rel! { ["other"] => (1,) }));
        let err = u.apply(&db).unwrap_err();
        assert!(matches!(err, RelalgError::HeaderMismatch { .. }));
        assert!(u.normalize(&db).is_err());
    }

    #[test]
    fn update_on_unknown_relation_errors() {
        let db = DbState::new();
        let u = Update::inserting("Nope", rel! { ["a"] => (1,) });
        assert!(u.apply(&db).is_err());
    }

    #[test]
    fn update_len_and_emptiness() {
        let u = Update::new();
        assert!(u.is_empty());
        let u = Update::inserting("Emp", Relation::empty(AttrSet::from_names(&["clerk", "age"])));
        assert!(u.is_empty());
        let u = Update::inserting("Emp", rel! { ["clerk", "age"] => ("Zoe", 40) });
        assert!(!u.is_empty());
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn normalize_update_drops_noops() {
        let mut db = DbState::new();
        db.insert_relation("Emp", emp());
        let u = Update::inserting("Emp", rel! { ["clerk", "age"] => ("Mary", 23) });
        let n = u.normalize(&db).unwrap();
        assert!(n.is_empty());
        assert_eq!(n.iter().count(), 0);
    }
}
