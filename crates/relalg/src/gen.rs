//! Deterministic generation of constraint-satisfying database states.
//!
//! The paper's correctness notions quantify over all database states;
//! tests and experiments therefore need a supply of *valid* states —
//! satisfying the declared keys and inclusion dependencies — with enough
//! value collisions to make joins, projections and complements
//! non-trivial. This module builds on `dwc-testkit`'s tiny,
//! dependency-free PRNG (SplitMix64, re-exported here) with a generator
//! that:
//!
//! 1. draws tuples over small integer domains (to force join overlap),
//! 2. for inclusion dependencies `π_X(R_i) ⊆ π_X(R_j)`, draws the `X`
//!    columns of `R_i` from already-generated tuples of `R_j` (targets
//!    are generated first, following the catalog's topological order),
//! 3. repairs any residual violations by deletion: key duplicates first,
//!    then an IND-filter fixpoint (deleting from an IND source never
//!    breaks another constraint; deleting from a target may, hence the
//!    fixpoint).
//!
//! The result is always valid (`check_constraints` holds by
//! construction) and deterministic in the seed.


use crate::database::DbState;
use crate::relation::Relation;
use crate::schema::Catalog;

use crate::tuple::Tuple;
use crate::value::Value;

/// The workspace's deterministic PRNG, re-exported from `dwc-testkit` so
/// existing `gen::SplitMix64` users keep working.
pub use dwc_testkit::SplitMix64;

/// Tuning for [`random_state`].
#[derive(Clone, Debug)]
pub struct StateGenConfig {
    /// Target tuple count per relation (before constraint repair).
    pub tuples_per_relation: usize,
    /// Size of the integer domain values are drawn from; smaller domains
    /// produce more join partners and projection collisions.
    pub domain_size: u64,
}

impl Default for StateGenConfig {
    fn default() -> Self {
        StateGenConfig {
            tuples_per_relation: 24,
            domain_size: 8,
        }
    }
}

impl StateGenConfig {
    /// Convenience constructor.
    pub fn new(tuples_per_relation: usize, domain_size: u64) -> StateGenConfig {
        StateGenConfig {
            tuples_per_relation,
            domain_size,
        }
    }
}

/// Generates a valid random state for `catalog`, deterministic in `seed`.
pub fn random_state(catalog: &Catalog, config: &StateGenConfig, seed: u64) -> DbState {
    let mut rng = SplitMix64::new(seed ^ 0xD1B5_4A32_D192_ED03);
    let mut db = DbState::empty_for(catalog);

    // IND targets first so sources can copy their X-columns.
    for name in catalog.ind_topological_order().expect("catalog is acyclic") {
        let schema = catalog.schema(name).expect("name from catalog");
        let attrs = schema.attrs().clone();
        let deps: Vec<_> = catalog
            .inclusion_deps()
            .iter()
            .filter(|d| d.from == name)
            .cloned()
            .collect();
        let mut rel = Relation::empty(attrs.clone());
        let n = if config.tuples_per_relation == 0 {
            0
        } else {
            // Vary sizes so some relations are sparse.
            1 + rng.index(config.tuples_per_relation)
        };
        'tuples: for _ in 0..n {
            let mut values: Vec<Value> = attrs
                .iter()
                .map(|_| Value::int(rng.below(config.domain_size) as i64))
                .collect();
            // Best-effort IND satisfaction: draw X-columns from a random
            // target tuple (with high probability).
            for dep in &deps {
                if !rng.chance(9, 10) {
                    continue; // leave a few violations for the repair pass
                }
                let target = db.relation(dep.to).expect("target generated first");
                if target.is_empty() {
                    continue 'tuples; // no donor tuple; skip this tuple
                }
                let donor_idx = rng.index(target.len());
                let donor = target.iter().nth(donor_idx).expect("index in range");
                let target_positions = dep
                    .attrs
                    .positions_in(target.attrs())
                    .expect("X within target header");
                for (k, a) in dep.attrs.iter().enumerate() {
                    let i = attrs.index_of(a).expect("X within source header");
                    values[i] = donor.get(target_positions[k]).clone();
                }
            }
            rel.insert(Tuple::new(values)).expect("arity matches header");
        }
        db.insert_relation(name, rel);
    }

    repair(catalog, &mut db);
    debug_assert!(db.check_constraints(catalog).is_ok());
    db
}

/// Generates `count` valid states with distinct seeds derived from `seed`.
pub fn random_states(
    catalog: &Catalog,
    config: &StateGenConfig,
    seed: u64,
    count: usize,
) -> Vec<DbState> {
    (0..count)
        .map(|i| random_state(catalog, config, seed.wrapping_add(i as u64 * 0x9E37)))
        .collect()
}

/// Deletes tuples until all declared constraints hold.
fn repair(catalog: &Catalog, db: &mut DbState) {
    // Keys: keep the first tuple per key value (canonical order).
    for schema in catalog.schemas() {
        let Some(key) = schema.key() else { continue };
        let rel = db.relation(schema.name()).expect("state covers catalog");
        let positions = key
            .positions_in(rel.attrs())
            .expect("key within header");
        let mut seen = std::collections::BTreeSet::new();
        let filtered = rel.filter(|t| seen.insert(t.project(&positions)));
        db.insert_relation(schema.name(), filtered);
    }
    // INDs: delete violating source tuples until fixpoint (shrinking a
    // target can invalidate its own sources, hence the loop).
    loop {
        let mut changed = false;
        for dep in catalog.inclusion_deps() {
            let target_proj = db
                .relation(dep.to)
                .and_then(|r| r.project(&dep.attrs))
                .expect("valid dep");
            let source = db.relation(dep.from).expect("state covers catalog");
            let positions = dep
                .attrs
                .positions_in(source.attrs())
                .expect("X within source header");
            let filtered =
                source.filter(|t| target_proj.contains(&t.project(&positions)));
            if filtered.len() != source.len() {
                db.insert_relation(dep.from, filtered);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrSet;
    use crate::constraints::InclusionDep;

    fn catalog_with_constraints() -> Catalog {
        let mut c = Catalog::new();
        c.add_schema_with_key("R1", &["A", "B", "C"], &["A"]).unwrap();
        c.add_schema_with_key("R2", &["A", "C", "D"], &["A"]).unwrap();
        c.add_schema_with_key("R3", &["A", "B"], &["A"]).unwrap();
        c.add_inclusion_dep(InclusionDep::new("R3", "R1", AttrSet::from_names(&["A", "B"])))
            .unwrap();
        c.add_inclusion_dep(InclusionDep::new("R2", "R1", AttrSet::from_names(&["A", "C"])))
            .unwrap();
        c
    }

    #[test]
    fn generated_states_satisfy_constraints() {
        let c = catalog_with_constraints();
        for seed in 0..50 {
            let d = random_state(&c, &StateGenConfig::default(), seed);
            d.check_constraints(&c).unwrap();
        }
    }

    #[test]
    fn generated_states_are_nontrivial() {
        let c = catalog_with_constraints();
        let states = random_states(&c, &StateGenConfig::default(), 1, 20);
        let total: usize = states.iter().map(DbState::total_tuples).sum();
        assert!(total > 50, "states too sparse: {total} tuples over 20 states");
        // Joins must actually produce tuples somewhere (IND sources copy
        // target columns, so R2 ⋈ R1 is non-empty in most states).
        let join = crate::RaExpr::parse("R1 join R2").unwrap();
        let joined: usize = states.iter().map(|d| join.eval(d).unwrap().len()).sum();
        assert!(joined > 0, "no join partners generated at all");
    }

    #[test]
    fn determinism_in_seed() {
        let c = catalog_with_constraints();
        let a = random_state(&c, &StateGenConfig::default(), 123);
        let b = random_state(&c, &StateGenConfig::default(), 123);
        assert_eq!(a, b);
        let c2 = random_state(&c, &StateGenConfig::default(), 124);
        assert_ne!(a, c2); // overwhelmingly likely
    }

    #[test]
    fn zero_size_config_gives_empty_state() {
        let c = catalog_with_constraints();
        let d = random_state(&c, &StateGenConfig::new(0, 4), 5);
        assert_eq!(d.total_tuples(), 0);
        d.check_constraints(&c).unwrap();
    }

    #[test]
    fn unconstrained_catalog_needs_no_repair() {
        let mut c = Catalog::new();
        c.add_schema("R", &["x", "y"]).unwrap();
        let d = random_state(&c, &StateGenConfig::new(50, 4), 9);
        d.check_constraints(&c).unwrap();
        // Small domain: set semantics dedupe, but plenty of tuples remain.
        assert!(d.total_tuples() > 4);
    }
}
