//! Columnar relation storage: a global value dictionary plus per-relation
//! code columns with cached sorted key indexes.
//!
//! Every [`Value`] that enters a relation is interned once into a global
//! dictionary (the [`crate::symbol`] pattern, extended to full values) and
//! handled as a `u32` [`Code`] thereafter. A [`Columns`] store keeps one
//! `Vec<Code>` per attribute of the sorted header, with rows in *canonical
//! order* — the value-lexicographic order the old `BTreeSet<Tuple>`
//! representation iterated in — so printing, equality, ordering and the
//! binary codec are bit-identical to the row/set representation.
//!
//! Dictionary codes are assigned in interning order, which is *not* value
//! order, so two orderings coexist:
//!
//! * **code order** — arbitrary but consistent; equality of codes is
//!   equality of values (the dictionary is injective). Key indexes sort by
//!   raw code and are probed with code keys: any consistent order works
//!   for equality probes and it needs no dictionary access at all.
//! * **value order** — required wherever canonical order is observable.
//!   A lazily rebuilt `code → rank` table ([`ranks`]) maps codes into the
//!   total [`Value`] order; batch sorts compare small `u32` ranks instead
//!   of resolved values.
//!
//! Rank tables are only *appended to* conceptually: a table built when the
//! dictionary had `V` values stays correct for every code `< V` (new
//! interns cannot reorder old values relative to each other), so a view
//! acquired after the codes it will compare were interned is always safe.
//!
//! Interned values are leaked ([`Box::leak`]) just like symbols: the
//! distinct-value population of a warehouse is bounded by its data, and a
//! `&'static Value` can be handed out and retained *after* the dictionary
//! guard is dropped — resolving a whole relation up front means no lock is
//! held while user closures (filters, callbacks) run, which is what makes
//! re-entrant interning from inside an iteration deadlock-free.
//!
//! Each `Columns` carries a lazily-built cache of sorted key indexes keyed
//! by column positions. Mutation goes through `&mut` methods that clear
//! the cache (or through `Arc::make_mut`, whose clone starts with an empty
//! cache), so a stale index can never be observed; sharing the `Arc` —
//! epoch snapshot readers, the eval cache, the database map — shares the
//! warm index.

use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockReadGuard};

/// A dictionary code standing for one interned [`Value`].
pub(crate) type Code = u32;

struct DictInner {
    map: HashMap<&'static Value, Code>,
    vals: Vec<&'static Value>,
    /// `ranks[code]` = position of `code`'s value in the total value
    /// order over all interned values; valid iff `ranks.len() ==
    /// vals.len()`, lazily rebuilt by [`ranks`] after new interns.
    ranks: Vec<u32>,
}

fn dict() -> &'static RwLock<DictInner> {
    static DICT: OnceLock<RwLock<DictInner>> = OnceLock::new();
    DICT.get_or_init(|| {
        RwLock::new(DictInner {
            map: HashMap::new(),
            vals: Vec::new(),
            ranks: Vec::new(),
        })
    })
}

// The dictionary never panics while holding its lock, but recover from
// poisoning anyway: the table is append-only (ranks are replaced whole),
// so a poisoned guard still holds a consistent table.
fn read_dict() -> RwLockReadGuard<'static, DictInner> {
    dict().read().unwrap_or_else(|p| p.into_inner())
}

/// Interns `v`, returning its code. Repeated calls with equal values
/// return the same code.
pub(crate) fn intern(v: &Value) -> Code {
    {
        let d = read_dict();
        if let Some(&c) = d.map.get(v) {
            return c;
        }
    }
    let mut d = dict().write().unwrap_or_else(|p| p.into_inner());
    if let Some(&c) = d.map.get(v) {
        return c;
    }
    let code = u32::try_from(d.vals.len()).expect("value dictionary overflow"); // lint:allow expect -- overflowing u32 needs 4 billion distinct values
    let leaked: &'static Value = Box::leak(Box::new(v.clone()));
    d.vals.push(leaked);
    d.map.insert(leaked, code);
    code
}

/// A read view resolving codes to their interned values. The returned
/// references are `'static` (interned values are leaked), so they may be
/// retained after the view — and its read guard — are dropped.
pub(crate) struct ValueView(RwLockReadGuard<'static, DictInner>);

impl ValueView {
    /// The value behind `c`.
    #[inline]
    pub(crate) fn value(&self, c: Code) -> &'static Value {
        self.0.vals[c as usize]
    }
}

/// Acquires a resolve view. Keep it short-lived and never across a user
/// callback; copy the `&'static Value`s out instead.
pub(crate) fn values() -> ValueView {
    ValueView(read_dict())
}

/// A read view mapping codes into the total value order: comparing
/// `rank(a)` with `rank(b)` is exactly comparing the underlying values.
pub(crate) struct RankView(RwLockReadGuard<'static, DictInner>);

impl RankView {
    /// The value-order rank of `c`.
    #[inline]
    pub(crate) fn rank(&self, c: Code) -> u32 {
        self.0.ranks[c as usize]
    }
}

/// Acquires a rank view, rebuilding the rank table if interning has
/// outgrown it (`O(V log V)` amortized over batches). The view is valid
/// for every code interned before this call; codes interned concurrently
/// afterwards are not in the caller's data.
pub(crate) fn ranks() -> RankView {
    {
        let d = read_dict();
        if d.ranks.len() == d.vals.len() {
            return RankView(d);
        }
    }
    {
        let mut d = dict().write().unwrap_or_else(|p| p.into_inner());
        if d.ranks.len() != d.vals.len() {
            let mut by_value: Vec<Code> = (0..d.vals.len() as u32).collect();
            by_value.sort_unstable_by(|&a, &b| d.vals[a as usize].cmp(d.vals[b as usize]));
            let mut table = vec![0u32; d.vals.len()];
            for (r, &c) in by_value.iter().enumerate() {
                table[c as usize] = r as u32;
            }
            d.ranks = table;
        }
    }
    RankView(read_dict())
}

/// A sorted key index over a [`Columns`] store: row ids ordered by the
/// raw codes of the key columns (ties broken by row id, so the order is
/// deterministic). Probes are pure `u32` comparisons — no dictionary
/// access — and return the contiguous run of rows matching a key.
pub(crate) struct KeyIndex {
    positions: Box<[usize]>,
    order: Box<[u32]>,
}

impl KeyIndex {
    fn build(cols: &Columns, positions: &[usize]) -> KeyIndex {
        let mut order: Vec<u32> = (0..cols.nrows as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            for &p in positions {
                match cols.cols[p][a as usize].cmp(&cols.cols[p][b as usize]) {
                    Ordering::Equal => {}
                    o => return o,
                }
            }
            a.cmp(&b)
        });
        KeyIndex {
            positions: positions.into(),
            order: order.into_boxed_slice(),
        }
    }

    #[inline]
    fn cmp_key(&self, cols: &Columns, row: u32, key: &[Code]) -> Ordering {
        for (&p, &k) in self.positions.iter().zip(key) {
            match cols.cols[p][row as usize].cmp(&k) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// All rows of `cols` whose key columns equal `key` (codes aligned
    /// with the index's positions). `cols` must be the store the index
    /// was built over — the cache in [`Columns::index_for`] guarantees it.
    pub(crate) fn probe(&self, cols: &Columns, key: &[Code]) -> &[u32] {
        let lo = self
            .order
            .partition_point(|&r| self.cmp_key(cols, r, key) == Ordering::Less);
        let hi = self
            .order
            .partition_point(|&r| self.cmp_key(cols, r, key) != Ordering::Greater);
        &self.order[lo..hi]
    }
}

/// One cached key index: the column positions it covers, and the index.
type CachedIndex = (Box<[usize]>, Arc<KeyIndex>);

/// Column-major storage of one relation instance: `cols[j][i]` is the
/// code of row `i`'s value in header column `j`, with rows in canonical
/// (value-lexicographic) order and no duplicates. Nullary relations
/// (empty header) have no columns and `nrows ∈ {0, 1}`.
pub(crate) struct Columns {
    nrows: usize,
    cols: Box<[Vec<Code>]>,
    /// Lazily-built sorted key indexes, keyed by their column positions.
    /// Never cloned and cleared on mutation: a stale index is unobservable.
    index_cache: Mutex<Vec<CachedIndex>>,
}

impl Clone for Columns {
    fn clone(&self) -> Columns {
        Columns {
            nrows: self.nrows,
            cols: self.cols.clone(),
            index_cache: Mutex::new(Vec::new()),
        }
    }
}

impl PartialEq for Columns {
    fn eq(&self, other: &Columns) -> bool {
        self.nrows == other.nrows && self.cols == other.cols
    }
}

impl Eq for Columns {}

impl std::fmt::Debug for Columns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Columns")
            .field("nrows", &self.nrows)
            .field("cols", &self.cols)
            .finish()
    }
}

/// Compares row `ia` of `a` with row `ib` of `b` in value order (equal
/// arity required). Code equality short-circuits without a rank load.
#[inline]
fn cmp_rows(a: &Columns, ia: usize, b: &Columns, ib: usize, rv: &RankView) -> Ordering {
    for (ca, cb) in a.cols.iter().zip(b.cols.iter()) {
        let (x, y) = (ca[ia], cb[ib]);
        if x != y {
            return rv.rank(x).cmp(&rv.rank(y));
        }
    }
    Ordering::Equal
}

/// Appends row `row` of `src` to the output buffers.
#[inline]
fn push_row(out: &mut [Vec<Code>], src: &Columns, row: usize) {
    for (o, c) in out.iter_mut().zip(src.cols.iter()) {
        o.push(c[row]);
    }
}

fn out_buffers(arity: usize, capacity: usize) -> Vec<Vec<Code>> {
    (0..arity).map(|_| Vec::with_capacity(capacity)).collect()
}

impl Columns {
    /// An empty store of the given arity.
    pub(crate) fn empty(arity: usize) -> Columns {
        Columns::from_sorted(0, vec![Vec::new(); arity])
    }

    /// Wraps buffers already in canonical order with no duplicates.
    pub(crate) fn from_sorted(nrows: usize, cols: Vec<Vec<Code>>) -> Columns {
        Columns {
            nrows,
            cols: cols.into_boxed_slice(),
            index_cache: Mutex::new(Vec::new()),
        }
    }

    /// Canonicalizes `nrows` row-major rows (`flat.len() == nrows *
    /// arity`, any order, duplicates allowed): rank-maps the codes once,
    /// sorts a row permutation by rank, drops adjacent duplicates and
    /// scatters into columns.
    pub(crate) fn from_unsorted_rows(arity: usize, nrows: usize, flat: Vec<Code>) -> Columns {
        if arity == 0 {
            return Columns::from_sorted(nrows.min(1), Vec::new());
        }
        debug_assert_eq!(flat.len(), nrows * arity);
        let rv = ranks();
        let krows: Vec<u32> = flat.iter().map(|&c| rv.rank(c)).collect();
        drop(rv);
        let key = |r: u32| &krows[r as usize * arity..r as usize * arity + arity];
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        perm.sort_unstable_by(|&x, &y| key(x).cmp(key(y)));
        perm.dedup_by(|x, y| key(*x) == key(*y));
        let mut cols = out_buffers(arity, perm.len());
        for &r in &perm {
            for (j, col) in cols.iter_mut().enumerate() {
                col.push(flat[r as usize * arity + j]);
            }
        }
        Columns::from_sorted(perm.len(), cols)
    }

    /// Number of rows.
    pub(crate) fn len(&self) -> usize {
        self.nrows
    }

    /// True iff there are no rows.
    pub(crate) fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Number of columns.
    pub(crate) fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The code vector of column `j`.
    #[inline]
    pub(crate) fn col(&self, j: usize) -> &[Code] {
        &self.cols[j]
    }

    /// Resolves all rows, row-major, under one dictionary guard. The
    /// `'static` references outlive the guard, so callers can iterate and
    /// run arbitrary closures without holding any lock.
    pub(crate) fn resolve_rows(&self) -> Vec<&'static Value> {
        let vv = values();
        let mut out = Vec::with_capacity(self.nrows * self.cols.len());
        for i in 0..self.nrows {
            for c in self.cols.iter() {
                out.push(vv.value(c[i]));
            }
        }
        out
    }

    /// Binary-searches canonical order for the row equal to `probe`
    /// (values aligned with the header). `Ok(row)` on a hit, `Err(slot)`
    /// with the insertion position otherwise. Compares resolved values
    /// directly — no interning, no rank rebuild — so negative membership
    /// probes never grow the dictionary.
    pub(crate) fn find_row(&self, probe: &[Value]) -> std::result::Result<usize, usize> {
        let vv = values();
        let (mut lo, mut hi) = (0usize, self.nrows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut ord = Ordering::Equal;
            for (col, pv) in self.cols.iter().zip(probe) {
                match vv.value(col[mid]).cmp(pv) {
                    Ordering::Equal => {}
                    o => {
                        ord = o;
                        break;
                    }
                }
            }
            match ord {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Inserts a row (codes in header order) at canonical position `at`,
    /// invalidating cached indexes.
    pub(crate) fn insert_row(&mut self, at: usize, codes: &[Code]) {
        self.clear_cache();
        for (col, &c) in self.cols.iter_mut().zip(codes) {
            col.insert(at, c);
        }
        self.nrows += 1;
    }

    /// Removes the row at `at`, invalidating cached indexes.
    pub(crate) fn remove_row(&mut self, at: usize) {
        self.clear_cache();
        for col in self.cols.iter_mut() {
            col.remove(at);
        }
        self.nrows -= 1;
    }

    fn clear_cache(&mut self) {
        self.index_cache
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// The sorted key index over `positions`, built on first use and
    /// cached on this store — shared by everyone holding the same `Arc`.
    pub(crate) fn index_for(&self, positions: &[usize]) -> Arc<KeyIndex> {
        let mut cache = self.index_cache.lock().unwrap_or_else(|p| p.into_inner());
        if let Some((_, idx)) = cache.iter().find(|(p, _)| **p == *positions) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(KeyIndex::build(self, positions));
        cache.push((positions.into(), Arc::clone(&idx)));
        idx
    }

    /// Number of distinct values of the given column combination, counted
    /// as group boundaries along the cached sorted key index — O(n)
    /// comparisons after the (cached, shared) index build.
    pub(crate) fn distinct_on(&self, positions: &[usize]) -> usize {
        if positions.is_empty() {
            return self.nrows.min(1);
        }
        let idx = self.index_for(positions);
        let mut count = 0usize;
        let mut prev: Option<u32> = None;
        for &row in idx.order.iter() {
            let boundary = match prev {
                None => true,
                Some(p) => positions
                    .iter()
                    .any(|&j| self.cols[j][row as usize] != self.cols[j][p as usize]),
            };
            if boundary {
                count += 1;
            }
            prev = Some(row);
        }
        count
    }

    /// Number of key indexes currently cached (test helper).
    #[cfg(test)]
    pub(crate) fn cached_indexes(&self) -> usize {
        self.index_cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// Keeps the rows listed in `keep` (ascending, distinct), preserving
    /// canonical order — a subset of sorted unique rows is sorted unique.
    pub(crate) fn gather_sorted(&self, keep: &[u32]) -> Columns {
        let cols: Vec<Vec<Code>> = self
            .cols
            .iter()
            .map(|c| keep.iter().map(|&r| c[r as usize]).collect())
            .collect();
        Columns::from_sorted(keep.len(), cols)
    }

    /// Projects onto `positions` (strictly increasing). A prefix of the
    /// header preserves canonical order, so it only needs an adjacent
    /// dedup scan; any other shape gathers row-major and re-canonicalizes.
    pub(crate) fn project(&self, positions: &[usize]) -> Columns {
        let k = positions.len();
        if k == 0 {
            return Columns::from_sorted(self.nrows.min(1), Vec::new());
        }
        if positions.iter().enumerate().all(|(i, &p)| i == p) {
            let mut keep: Vec<u32> = Vec::with_capacity(self.nrows);
            for i in 0..self.nrows {
                if i == 0 || positions.iter().any(|&p| self.cols[p][i] != self.cols[p][i - 1]) {
                    keep.push(i as u32);
                }
            }
            let cols: Vec<Vec<Code>> = positions
                .iter()
                .map(|&p| keep.iter().map(|&r| self.cols[p][r as usize]).collect())
                .collect();
            return Columns::from_sorted(keep.len(), cols);
        }
        let mut flat = Vec::with_capacity(self.nrows * k);
        for i in 0..self.nrows {
            for &p in positions {
                flat.push(self.cols[p][i]);
            }
        }
        Columns::from_unsorted_rows(k, self.nrows, flat)
    }
}

/// `a ∪ b` by sorted merge; the output buffers are allocated once at the
/// combined capacity, never re-sorted.
pub(crate) fn union(a: &Columns, b: &Columns) -> Columns {
    if b.nrows == 0 {
        return a.clone();
    }
    if a.nrows == 0 {
        return b.clone();
    }
    let rv = ranks();
    let mut out = out_buffers(a.cols.len(), a.nrows + b.nrows);
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.nrows && j < b.nrows {
        match cmp_rows(a, i, b, j, &rv) {
            Ordering::Less => {
                push_row(&mut out, a, i);
                i += 1;
            }
            Ordering::Greater => {
                push_row(&mut out, b, j);
                j += 1;
            }
            Ordering::Equal => {
                push_row(&mut out, a, i);
                i += 1;
                j += 1;
            }
        }
        n += 1;
    }
    while i < a.nrows {
        push_row(&mut out, a, i);
        i += 1;
        n += 1;
    }
    while j < b.nrows {
        push_row(&mut out, b, j);
        j += 1;
        n += 1;
    }
    Columns::from_sorted(n, out)
}

/// `a ∖ b` by sorted merge.
pub(crate) fn difference(a: &Columns, b: &Columns) -> Columns {
    if a.nrows == 0 || b.nrows == 0 {
        return a.clone();
    }
    let rv = ranks();
    let mut out = out_buffers(a.cols.len(), a.nrows);
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.nrows {
        let keep = loop {
            if j >= b.nrows {
                break true;
            }
            match cmp_rows(b, j, a, i, &rv) {
                Ordering::Less => j += 1,
                Ordering::Equal => break false,
                Ordering::Greater => break true,
            }
        };
        if keep {
            push_row(&mut out, a, i);
            n += 1;
        }
        i += 1;
    }
    Columns::from_sorted(n, out)
}

/// `a ∩ b` by sorted merge.
pub(crate) fn intersect(a: &Columns, b: &Columns) -> Columns {
    if a.nrows == 0 {
        return a.clone();
    }
    if b.nrows == 0 {
        return Columns::empty(a.cols.len());
    }
    let rv = ranks();
    let mut out = out_buffers(a.cols.len(), a.nrows.min(b.nrows));
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.nrows && j < b.nrows {
        match cmp_rows(a, i, b, j, &rv) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                push_row(&mut out, a, i);
                i += 1;
                j += 1;
                n += 1;
            }
        }
    }
    Columns::from_sorted(n, out)
}

/// `(base ∖ del) ∪ ins` in one three-way merge pass — the delta identity
/// every maintenance path ends with. Inserts win over deletes, matching
/// the remove-then-extend semantics of the row/set representation.
pub(crate) fn apply_delta(base: &Columns, ins: &Columns, del: &Columns) -> Columns {
    if ins.nrows == 0 && del.nrows == 0 {
        return base.clone();
    }
    let rv = ranks();
    let mut out = out_buffers(base.cols.len(), base.nrows + ins.nrows);
    let (mut i, mut d, mut k, mut n) = (0usize, 0usize, 0usize, 0usize);
    while i < base.nrows || k < ins.nrows {
        if i < base.nrows {
            while d < del.nrows && cmp_rows(del, d, base, i, &rv) == Ordering::Less {
                d += 1;
            }
            if d < del.nrows && cmp_rows(del, d, base, i, &rv) == Ordering::Equal {
                i += 1;
                continue;
            }
        }
        if i >= base.nrows {
            push_row(&mut out, ins, k);
            k += 1;
        } else if k >= ins.nrows {
            push_row(&mut out, base, i);
            i += 1;
        } else {
            match cmp_rows(base, i, ins, k, &rv) {
                Ordering::Less => {
                    push_row(&mut out, base, i);
                    i += 1;
                }
                Ordering::Greater => {
                    push_row(&mut out, ins, k);
                    k += 1;
                }
                Ordering::Equal => {
                    push_row(&mut out, base, i);
                    i += 1;
                    k += 1;
                }
            }
        }
        n += 1;
    }
    Columns::from_sorted(n, out)
}

/// True iff every row of `a` occurs in `b` (sorted two-pointer walk).
pub(crate) fn is_subset(a: &Columns, b: &Columns) -> bool {
    if a.nrows > b.nrows {
        return false;
    }
    let rv = ranks();
    let mut j = 0usize;
    'rows: for i in 0..a.nrows {
        while j < b.nrows {
            match cmp_rows(b, j, a, i, &rv) {
                Ordering::Less => j += 1,
                Ordering::Equal => {
                    j += 1;
                    continue 'rows;
                }
                Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Lexicographic comparison of two stores in canonical row order — the
/// order `BTreeSet<Tuple>` would compare in (row by row, then length).
pub(crate) fn cmp_lex(a: &Columns, b: &Columns) -> Ordering {
    let rv = ranks();
    for i in 0..a.nrows.min(b.nrows) {
        match cmp_rows(a, i, b, i, &rv) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    a.nrows.cmp(&b.nrows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(vals: &[Value]) -> Vec<Code> {
        vals.iter().map(intern).collect()
    }

    #[test]
    fn intern_is_idempotent_and_injective() {
        let a = intern(&Value::int(42));
        let b = intern(&Value::int(42));
        let c = intern(&Value::str("42"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(values().value(a), &Value::int(42));
    }

    #[test]
    fn ranks_follow_value_order_across_interning_order() {
        // Intern out of value order; ranks must still compare correctly.
        let hi = intern(&Value::str("zzz-colrank"));
        let lo = intern(&Value::from(false));
        let rv = ranks();
        assert!(rv.rank(lo) < rv.rank(hi), "Bool < Str in the value order");
    }

    #[test]
    fn from_unsorted_rows_sorts_and_dedups() {
        let flat = codes(&[
            Value::int(2),
            Value::str("b"),
            Value::int(1),
            Value::str("a"),
            Value::int(2),
            Value::str("b"),
        ]);
        let c = Columns::from_unsorted_rows(2, 3, flat);
        assert_eq!(c.len(), 2);
        let vv = values();
        assert_eq!(vv.value(c.col(0)[0]), &Value::int(1));
        assert_eq!(vv.value(c.col(0)[1]), &Value::int(2));
    }

    #[test]
    fn nullary_rows_collapse_to_dee() {
        let c = Columns::from_unsorted_rows(0, 3, Vec::new());
        assert_eq!(c.len(), 1);
        assert_eq!(c.arity(), 0);
        let empty = Columns::from_unsorted_rows(0, 0, Vec::new());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn find_row_hits_and_slots() {
        let flat = codes(&[Value::int(10), Value::int(30)]);
        let c = Columns::from_unsorted_rows(1, 2, flat);
        assert_eq!(c.find_row(&[Value::int(10)]), Ok(0));
        assert_eq!(c.find_row(&[Value::int(30)]), Ok(1));
        assert_eq!(c.find_row(&[Value::int(20)]), Err(1));
        // Probing a value that was never interned must still work.
        assert!(c.find_row(&[Value::str("never-interned-find-row")]).is_err());
    }

    #[test]
    fn key_index_probe_returns_matching_rows() {
        let flat = codes(&[
            Value::int(1),
            Value::int(100),
            Value::int(2),
            Value::int(100),
            Value::int(3),
            Value::int(200),
        ]);
        let c = Columns::from_unsorted_rows(2, 3, flat);
        let idx = c.index_for(&[1]);
        let k100 = intern(&Value::int(100));
        let k200 = intern(&Value::int(200));
        assert_eq!(idx.probe(&c, &[k100]).len(), 2);
        assert_eq!(idx.probe(&c, &[k200]).len(), 1);
        assert_eq!(idx.probe(&c, &[intern(&Value::int(999))]).len(), 0);
        // Cached: same positions, same index.
        assert_eq!(c.cached_indexes(), 1);
        let again = c.index_for(&[1]);
        assert!(Arc::ptr_eq(&idx, &again));
    }

    #[test]
    fn mutation_invalidates_cached_indexes() {
        let flat = codes(&[Value::int(1), Value::int(2)]);
        let mut c = Columns::from_unsorted_rows(1, 2, flat);
        c.index_for(&[0]);
        assert_eq!(c.cached_indexes(), 1);
        c.insert_row(0, &[intern(&Value::int(0))]);
        assert_eq!(c.cached_indexes(), 0, "insert must clear the cache");
        assert_eq!(c.len(), 3);
        c.remove_row(0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clones_do_not_share_the_cache() {
        let flat = codes(&[Value::int(7)]);
        let c = Columns::from_unsorted_rows(1, 1, flat);
        c.index_for(&[0]);
        let d = c.clone();
        assert_eq!(d.cached_indexes(), 0);
        assert_eq!(c, d);
    }

    #[test]
    fn merges_match_naive_sets() {
        let a = Columns::from_unsorted_rows(1, 3, codes(&[Value::int(1), Value::int(2), Value::int(3)]));
        let b = Columns::from_unsorted_rows(1, 2, codes(&[Value::int(2), Value::int(4)]));
        assert_eq!(union(&a, &b).len(), 4);
        assert_eq!(difference(&a, &b).len(), 2);
        assert_eq!(intersect(&a, &b).len(), 1);
        // (a ∖ {2,4}) ∪ {2,4} = {1, 2, 3, 4}: inserts win over deletes.
        let d = apply_delta(&a, &b, &b);
        assert_eq!(d.len(), 4);
        assert!(is_subset(&intersect(&a, &b), &a));
        assert!(!is_subset(&a, &b));
        assert_eq!(cmp_lex(&a, &a), Ordering::Equal);
        assert_eq!(cmp_lex(&b, &a), Ordering::Greater);
    }
}
