//! Database states.
//!
//! A [`DbState`] is the paper's `d = ⟨r1, …, rn⟩`: one relation instance
//! per (known) relation name. The same type also stores *warehouse*
//! states, since a warehouse state is just a set of materialized views —
//! relations under view names.

use crate::attrs::AttrSet;
use crate::error::{RelalgError, Result};
use crate::relation::Relation;
use crate::schema::Catalog;
use crate::symbol::RelName;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A database (or warehouse) state: named relation instances.
///
/// Instances are reference-counted: cloning a state (which the
/// maintenance machinery does to snapshot warehouse states and build
/// evaluation environments) shares the relations instead of deep-copying
/// their tuples. States are modified only by *replacing* whole instances
/// ([`DbState::insert_relation`]), which fits the functional style of the
/// paper's state transformers.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct DbState {
    relations: BTreeMap<RelName, Arc<Relation>>,
}

impl DbState {
    /// An empty state.
    pub fn new() -> DbState {
        DbState::default()
    }

    /// A state with one empty instance per catalog relation.
    pub fn empty_for(catalog: &Catalog) -> DbState {
        let mut s = DbState::new();
        for schema in catalog.schemas() {
            s.relations
                .insert(schema.name(), Arc::new(Relation::empty(schema.attrs().clone())));
        }
        s
    }

    /// Adds or replaces a relation instance.
    pub fn insert_relation(&mut self, name: impl Into<RelName>, rel: Relation) {
        self.relations.insert(name.into(), Arc::new(rel));
    }

    /// Adds or replaces a relation instance without re-wrapping (shares
    /// the instance with other states holding the same `Arc`).
    pub fn insert_shared(&mut self, name: impl Into<RelName>, rel: Arc<Relation>) {
        self.relations.insert(name.into(), rel);
    }

    /// Looks up a relation instance.
    pub fn relation(&self, name: RelName) -> Result<&Relation> {
        self.relations
            .get(&name)
            .map(Arc::as_ref)
            .ok_or(RelalgError::UnknownRelation(name))
    }

    /// Looks up a relation instance as a shareable handle.
    pub fn relation_shared(&self, name: RelName) -> Result<Arc<Relation>> {
        self.relations
            .get(&name)
            .cloned()
            .ok_or(RelalgError::UnknownRelation(name))
    }

    /// True iff `name` has an instance in this state.
    pub fn contains(&self, name: RelName) -> bool {
        self.relations.contains_key(&name)
    }

    /// Iterates `(name, instance)` pairs sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (RelName, &Relation)> + '_ {
        self.relations.iter().map(|(&n, r)| (n, r.as_ref()))
    }

    /// Number of relation instances.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff the state holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations (used as a crude but
    /// faithful storage-size measure in the experiments).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Restriction of the state to the given relation names.
    pub fn restrict_to(&self, names: impl IntoIterator<Item = RelName>) -> DbState {
        let mut out = DbState::new();
        for n in names {
            if let Some(r) = self.relations.get(&n) {
                out.relations.insert(n, r.clone());
            }
        }
        out
    }

    /// Merges another state in; right-hand instances win on name clashes.
    pub fn merged_with(&self, other: &DbState) -> DbState {
        let mut out = self.clone();
        for (n, r) in &other.relations {
            out.relations.insert(*n, Arc::clone(r));
        }
        out
    }

    /// Checks that every catalog relation has an instance with the correct
    /// header (extra instances — e.g. materialized views — are allowed).
    pub fn check_headers(&self, catalog: &Catalog) -> Result<()> {
        for schema in catalog.schemas() {
            let rel = self.relation(schema.name())?;
            if rel.attrs() != schema.attrs() {
                return Err(RelalgError::HeaderMismatch {
                    left: rel.attrs().clone(),
                    right: schema.attrs().clone(),
                });
            }
        }
        Ok(())
    }

    /// Validates the declared key constraints and inclusion dependencies
    /// of `catalog` against this state.
    pub fn check_constraints(&self, catalog: &Catalog) -> Result<()> {
        self.check_headers(catalog)?;
        for schema in catalog.schemas() {
            if let Some(key) = schema.key() {
                let rel = self.relation(schema.name())?;
                if !key_holds(rel, key) {
                    return Err(RelalgError::KeyViolation {
                        relation: schema.name(),
                        key: key.clone(),
                    });
                }
            }
        }
        for dep in catalog.inclusion_deps() {
            let from = self.relation(dep.from)?.project(&dep.attrs)?;
            let to = self.relation(dep.to)?.project(&dep.attrs)?;
            if !from.is_subset(&to)? {
                return Err(RelalgError::InclusionViolation {
                    detail: dep.to_string(),
                });
            }
        }
        Ok(())
    }
}

/// True iff `key` functionally determines the tuples of `rel`, i.e. no two
/// distinct tuples agree on the key attributes.
pub fn key_holds(rel: &Relation, key: &AttrSet) -> bool {
    let Some(positions) = key.positions_in(rel.attrs()) else {
        return false;
    };
    let mut seen = std::collections::BTreeSet::new();
    for t in rel.iter() {
        if !seen.insert(t.project(&positions)) {
            return false;
        }
    }
    true
}

impl fmt::Debug for DbState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, r) in &self.relations {
            writeln!(f, "{n}: {} tuples over {}", r.len(), r.attrs())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    fn fig1_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_schema("Sale", &["item", "clerk"]).unwrap();
        c.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
        c
    }

    fn fig1_state() -> DbState {
        let mut d = DbState::new();
        d.insert_relation(
            "Sale",
            rel! { ["item", "clerk"] => ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") },
        );
        d.insert_relation(
            "Emp",
            rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
        );
        d
    }

    #[test]
    fn lookup_and_iteration() {
        let d = fig1_state();
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_tuples(), 6);
        assert_eq!(d.relation(RelName::new("Sale")).unwrap().len(), 3);
        assert!(d.relation(RelName::new("Nope")).is_err());
        let names: Vec<RelName> = d.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec![RelName::new("Emp"), RelName::new("Sale")]);
    }

    #[test]
    fn header_check() {
        let c = fig1_catalog();
        let d = fig1_state();
        d.check_headers(&c).unwrap();

        let mut bad = d.clone();
        bad.insert_relation("Emp", rel! { ["clerk"] => ("Mary",) });
        assert!(bad.check_headers(&c).is_err());

        let missing = DbState::new();
        assert!(missing.check_headers(&c).is_err());
    }

    #[test]
    fn key_constraint_check() {
        let c = fig1_catalog();
        let mut d = fig1_state();
        d.check_constraints(&c).unwrap();
        // Two ages for Mary violate the key.
        d.insert_relation(
            "Emp",
            rel! { ["clerk", "age"] => ("Mary", 23), ("Mary", 24) },
        );
        assert!(matches!(
            d.check_constraints(&c),
            Err(RelalgError::KeyViolation { .. })
        ));
    }

    #[test]
    fn inclusion_dep_check() {
        let mut c = fig1_catalog();
        c.add_foreign_key("Sale", "Emp", &["clerk"]).unwrap();
        let mut d = fig1_state();
        d.check_constraints(&c).unwrap();
        // A sale by an unknown clerk violates referential integrity.
        let mut sale = d.relation(RelName::new("Sale")).unwrap().clone();
        sale = sale
            .union(&rel! { ["item", "clerk"] => ("Modem", "Ghost") })
            .unwrap();
        d.insert_relation("Sale", sale);
        assert!(matches!(
            d.check_constraints(&c),
            Err(RelalgError::InclusionViolation { .. })
        ));
    }

    #[test]
    fn empty_for_catalog() {
        let c = fig1_catalog();
        let d = DbState::empty_for(&c);
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_tuples(), 0);
        d.check_constraints(&c).unwrap();
    }

    #[test]
    fn key_holds_helper() {
        let r = rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25) };
        assert!(key_holds(&r, &AttrSet::from_names(&["clerk"])));
        let r2 = rel! { ["clerk", "age"] => ("Mary", 23), ("Mary", 25) };
        assert!(!key_holds(&r2, &AttrSet::from_names(&["clerk"])));
        assert!(key_holds(&r2, &AttrSet::from_names(&["clerk", "age"])));
        // Key attrs outside the header never hold.
        assert!(!key_holds(&r, &AttrSet::from_names(&["zzz"])));
    }

    #[test]
    fn restrict_and_merge() {
        let d = fig1_state();
        let only_sale = d.restrict_to([RelName::new("Sale")]);
        assert_eq!(only_sale.len(), 1);
        let merged = only_sale.merged_with(&d.restrict_to([RelName::new("Emp")]));
        assert_eq!(merged.len(), 2);
        assert_eq!(merged, d);
    }
}
