//! PSJ views: `π_Z(σ_cond(R_{i1} ⋈ … ⋈ R_{ik}))`.
//!
//! The paper's complement constructions are defined for
//! projection–selection–join views over the base schemata `D`. This
//! module provides the normal form ([`PsjView`]), named views
//! ([`NamedView`]) as the warehouse definition `V = {V1, …, Vk}`, and a
//! normalizer that brings general algebra expressions of PSJ shape into
//! the normal form.

use crate::error::{CoreError, Result};
use dwc_relalg::expr::HeaderResolver;
use dwc_relalg::{AttrSet, Catalog, Predicate, RaExpr, RelName};
use std::collections::BTreeMap;
use std::fmt;

/// A view in PSJ normal form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PsjView {
    /// The joined base relations `R_{i1}, …, R_{ik}` (sorted, distinct).
    relations: Vec<RelName>,
    /// The selection condition (over the join attributes).
    selection: Predicate,
    /// The final projection `Z` (a subset of the join attributes).
    projection: AttrSet,
}

impl PsjView {
    /// Builds and validates a PSJ view against the catalog.
    pub fn new(
        catalog: &Catalog,
        relations: Vec<RelName>,
        selection: Predicate,
        projection: AttrSet,
    ) -> Result<PsjView> {
        if relations.is_empty() {
            return Err(CoreError::NotPsj {
                detail: "a PSJ view must join at least one base relation".into(),
            });
        }
        let mut sorted = relations;
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                return Err(CoreError::DuplicateRelationInView { relation: pair[0] });
            }
        }
        let mut join_attrs = AttrSet::empty();
        for &r in &sorted {
            let schema = catalog
                .schema(r)
                .map_err(|_| CoreError::UnknownBase(r))?;
            join_attrs = join_attrs.union(schema.attrs());
        }
        if !selection.attrs().is_subset(&join_attrs) {
            return Err(CoreError::NotPsj {
                detail: format!(
                    "selection references {} outside join attributes {join_attrs}",
                    selection.attrs()
                ),
            });
        }
        if projection.is_empty() || !projection.is_subset(&join_attrs) {
            return Err(CoreError::NotPsj {
                detail: format!(
                    "projection {projection} must be a non-empty subset of join attributes {join_attrs}"
                ),
            });
        }
        Ok(PsjView {
            relations: sorted,
            selection,
            projection,
        })
    }

    /// The identity view on a single base relation.
    pub fn of_base(catalog: &Catalog, name: &str) -> Result<PsjView> {
        let r = RelName::new(name);
        let attrs = catalog
            .schema(r)
            .map_err(|_| CoreError::UnknownBase(r))?
            .attrs()
            .clone();
        PsjView::new(catalog, vec![r], Predicate::True, attrs)
    }

    /// The SJ view joining the named relations with no selection and full
    /// projection.
    pub fn join_of(catalog: &Catalog, names: &[&str]) -> Result<PsjView> {
        let relations: Vec<RelName> = names.iter().map(|n| RelName::new(n)).collect();
        let mut attrs = AttrSet::empty();
        for &r in &relations {
            attrs = attrs.union(
                catalog
                    .schema(r)
                    .map_err(|_| CoreError::UnknownBase(r))?
                    .attrs(),
            );
        }
        PsjView::new(catalog, relations, Predicate::True, attrs)
    }

    /// A projection view `π_Z(R)` of a single base relation.
    pub fn project_of(catalog: &Catalog, name: &str, attrs: &[&str]) -> Result<PsjView> {
        PsjView::new(
            catalog,
            vec![RelName::new(name)],
            Predicate::True,
            AttrSet::from_names(attrs),
        )
    }

    /// A selection view `σ_pred(R)` of a single base relation.
    pub fn select_of(catalog: &Catalog, name: &str, pred: Predicate) -> Result<PsjView> {
        let r = RelName::new(name);
        let attrs = catalog
            .schema(r)
            .map_err(|_| CoreError::UnknownBase(r))?
            .attrs()
            .clone();
        PsjView::new(catalog, vec![r], pred, attrs)
    }

    /// The joined base relations, sorted.
    pub fn relations(&self) -> &[RelName] {
        &self.relations
    }

    /// The selection condition.
    pub fn selection(&self) -> &Predicate {
        &self.selection
    }

    /// The projected attribute set `Z` — also the view's output header.
    pub fn projection(&self) -> &AttrSet {
        &self.projection
    }

    /// True iff the view's definition involves base relation `r`
    /// (membership in the paper's `V_R`).
    pub fn involves(&self, r: RelName) -> bool {
        self.relations.binary_search(&r).is_ok()
    }

    /// The union of the attributes of all joined relations.
    pub fn join_attrs(&self, catalog: &Catalog) -> AttrSet {
        self.relations.iter().fold(AttrSet::empty(), |acc, &r| {
            catalog
                .schema(r)
                .map(|s| acc.union(s.attrs()))
                .unwrap_or(acc)
        })
    }

    /// True iff the view is an SJ view: the final projection keeps *all*
    /// attributes of the joined relations (Theorem 2.1's precondition).
    pub fn is_sj(&self, catalog: &Catalog) -> bool {
        self.projection == self.join_attrs(catalog)
    }

    /// The defining algebra expression over base relation names.
    pub fn to_expr(&self) -> RaExpr {
        // PSJ views join at least one relation by construction; an empty
        // list would make the view the empty relation over its projection.
        let join = match RaExpr::join_all(self.relations.iter().map(|&r| RaExpr::Base(r))) {
            Some(j) => j,
            None => return RaExpr::Empty(self.projection.clone()),
        };
        let selected = match &self.selection {
            Predicate::True => join,
            p => join.select(p.clone()),
        };
        // For SJ views this projection is the identity; the simplifier
        // removes it when expressions are post-processed.
        selected.project(self.projection.clone())
    }

    /// Brings an arbitrary expression of PSJ shape (selections,
    /// projections and joins over base relations) into normal form.
    /// Returns [`CoreError::NotPsj`] for unions, differences, renamings,
    /// or join/projection nestings that do not commute (a projection that
    /// hides an attribute shared with the other join input).
    pub fn from_expr(catalog: &Catalog, expr: &RaExpr) -> Result<PsjView> {
        let raw = normalize(catalog, expr)?;
        PsjView::new(catalog, raw.relations, raw.selection, raw.projection)
    }
}

struct Raw {
    relations: Vec<RelName>,
    selection: Predicate,
    projection: AttrSet,
}

fn normalize(catalog: &Catalog, expr: &RaExpr) -> Result<Raw> {
    match expr {
        RaExpr::Base(r) => {
            let attrs = catalog
                .schema(*r)
                .map_err(|_| CoreError::UnknownBase(*r))?
                .attrs()
                .clone();
            Ok(Raw {
                relations: vec![*r],
                selection: Predicate::True,
                projection: attrs,
            })
        }
        RaExpr::Select(input, pred) => {
            let inner = normalize(catalog, input)?;
            if !pred.attrs().is_subset(&inner.projection) {
                return Err(CoreError::NotPsj {
                    detail: format!(
                        "selection {pred} uses attributes hidden by an inner projection"
                    ),
                });
            }
            Ok(Raw {
                relations: inner.relations,
                selection: inner.selection.and(pred.clone()),
                projection: inner.projection,
            })
        }
        RaExpr::Project(input, wanted) => {
            let inner = normalize(catalog, input)?;
            if !wanted.is_subset(&inner.projection) {
                return Err(CoreError::NotPsj {
                    detail: format!(
                        "projection {wanted} is not a subset of the inner projection {}",
                        inner.projection
                    ),
                });
            }
            Ok(Raw {
                relations: inner.relations,
                selection: inner.selection,
                projection: wanted.clone(),
            })
        }
        RaExpr::Join(l, r) => {
            let left = normalize(catalog, l)?;
            let right = normalize(catalog, r)?;
            for lr in &left.relations {
                if right.relations.contains(lr) {
                    return Err(CoreError::DuplicateRelationInView { relation: *lr });
                }
            }
            // A projection below a join commutes with the join only when
            // the hidden attributes do not occur on the other side.
            let left_join_attrs = join_attrs_of(catalog, &left.relations);
            let right_join_attrs = join_attrs_of(catalog, &right.relations);
            let left_hidden = left_join_attrs.difference(&left.projection);
            let right_hidden = right_join_attrs.difference(&right.projection);
            if !left_hidden.is_disjoint(&right_join_attrs)
                || !right_hidden.is_disjoint(&left_join_attrs)
            {
                return Err(CoreError::NotPsj {
                    detail: "a projection hides attributes shared with the other join input"
                        .into(),
                });
            }
            let mut relations = left.relations;
            relations.extend(right.relations);
            Ok(Raw {
                relations,
                selection: left.selection.and(right.selection),
                projection: left.projection.union(&right.projection),
            })
        }
        other => Err(CoreError::NotPsj {
            detail: format!("operator not allowed in PSJ views: {other}"),
        }),
    }
}

fn join_attrs_of(catalog: &Catalog, relations: &[RelName]) -> AttrSet {
    relations.iter().fold(AttrSet::empty(), |acc, &r| {
        catalog
            .schema(r)
            .map(|s| acc.union(s.attrs()))
            .unwrap_or(acc)
    })
}

impl fmt::Display for PsjView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_expr())
    }
}

/// A named PSJ view: one element of the warehouse definition `V`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedView {
    name: RelName,
    view: PsjView,
}

impl NamedView {
    /// Names a view.
    pub fn new(name: impl Into<RelName>, view: PsjView) -> NamedView {
        NamedView {
            name: name.into(),
            view,
        }
    }

    /// The view name.
    pub fn name(&self) -> RelName {
        self.name
    }

    /// The underlying PSJ definition.
    pub fn view(&self) -> &PsjView {
        &self.view
    }

    /// The view's output header (its projection `Z`).
    pub fn header(&self) -> &AttrSet {
        self.view.projection()
    }

    /// The defining expression over base relations.
    pub fn to_expr(&self) -> RaExpr {
        self.view.to_expr()
    }
}

/// The map `view name → defining expression over D`, used to inline view
/// definitions when materializing complements.
pub fn definitions(views: &[NamedView]) -> BTreeMap<RelName, RaExpr> {
    views
        .iter()
        .map(|v| (v.name(), v.to_expr()))
        .collect()
}

/// A header resolver that knows the catalog's base relations *and* the
/// named views (a view's header is its projection set). Used to
/// type-check expressions that mix base and view references.
pub struct ViewResolver<'a> {
    catalog: &'a Catalog,
    views: &'a [NamedView],
}

impl<'a> ViewResolver<'a> {
    /// Builds a resolver over a catalog and a set of named views.
    pub fn new(catalog: &'a Catalog, views: &'a [NamedView]) -> ViewResolver<'a> {
        ViewResolver { catalog, views }
    }
}

impl HeaderResolver for ViewResolver<'_> {
    fn header_of(&self, name: RelName) -> dwc_relalg::Result<AttrSet> {
        if let Some(v) = self.views.iter().find(|v| v.name() == name) {
            return Ok(v.header().clone());
        }
        self.catalog.header_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_schema("Sale", &["item", "clerk"]).unwrap();
        c.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
        c.add_schema("T", &["clerk", "region"]).unwrap();
        c
    }

    #[test]
    fn join_of_builds_sj_view() {
        let c = catalog();
        let sold = PsjView::join_of(&c, &["Sale", "Emp"]).unwrap();
        assert!(sold.is_sj(&c));
        assert_eq!(sold.projection(), &AttrSet::from_names(&["item", "clerk", "age"]));
        assert_eq!(sold.relations().len(), 2);
        assert!(sold.involves(RelName::new("Sale")));
        assert!(!sold.involves(RelName::new("T")));
    }

    #[test]
    fn to_expr_round_trips_through_eval() {
        use dwc_relalg::{rel, DbState};
        let c = catalog();
        let mut db = DbState::new();
        db.insert_relation("Sale", rel! { ["item", "clerk"] => ("PC", "John") });
        db.insert_relation("Emp", rel! { ["clerk", "age"] => ("John", 25), ("Paula", 32) });
        let sold = PsjView::join_of(&c, &["Sale", "Emp"]).unwrap();
        let r = sold.to_expr().eval(&db).unwrap();
        assert_eq!(r, rel! { ["item", "clerk", "age"] => ("PC", "John", 25) });
    }

    #[test]
    fn validation_rejects_bad_views() {
        let c = catalog();
        // empty relation list
        assert!(PsjView::new(&c, vec![], Predicate::True, AttrSet::from_names(&["a"])).is_err());
        // duplicate relation
        let err = PsjView::new(
            &c,
            vec![RelName::new("Emp"), RelName::new("Emp")],
            Predicate::True,
            AttrSet::from_names(&["clerk"]),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateRelationInView { .. }));
        // unknown base
        assert!(matches!(
            PsjView::of_base(&c, "Nope"),
            Err(CoreError::UnknownBase(_))
        ));
        // selection out of scope
        assert!(PsjView::select_of(&c, "Sale", Predicate::attr_eq("age", 1)).is_err());
        // projection out of scope
        assert!(PsjView::project_of(&c, "Sale", &["age"]).is_err());
        // empty projection
        assert!(PsjView::new(
            &c,
            vec![RelName::new("Sale")],
            Predicate::True,
            AttrSet::empty()
        )
        .is_err());
    }

    #[test]
    fn from_expr_normalizes_psj_shapes() {
        let c = catalog();
        let e = RaExpr::parse("pi[age](sigma[item = 'PC'](Sale join Emp))").unwrap();
        let v = PsjView::from_expr(&c, &e).unwrap();
        assert_eq!(v.projection(), &AttrSet::from_names(&["age"]));
        assert_eq!(v.selection(), &Predicate::attr_eq("item", "PC"));
        assert_eq!(v.relations().len(), 2);

        // selection below projection merges via conjunction
        let e = RaExpr::parse("sigma[age = 25](pi[clerk, age](sigma[item = 'PC'](Sale join Emp)))")
            .unwrap();
        let v = PsjView::from_expr(&c, &e).unwrap();
        assert_eq!(
            v.selection(),
            &Predicate::attr_eq("item", "PC").and(Predicate::attr_eq("age", 25))
        );
    }

    #[test]
    fn from_expr_join_of_projections_when_disjoint_hidden() {
        let c = catalog();
        // π hides `item` on the left; `item` does not occur in Emp, fine.
        let e = RaExpr::parse("pi[clerk](Sale) join Emp").unwrap();
        let v = PsjView::from_expr(&c, &e).unwrap();
        assert_eq!(v.projection(), &AttrSet::from_names(&["clerk", "age"]));
    }

    #[test]
    fn from_expr_rejects_non_commuting_projection() {
        let c = catalog();
        // π hides `clerk` which is the join attribute with Emp — the
        // projected join is NOT equivalent to a PSJ normal form.
        let e = RaExpr::parse("pi[item](Sale) join Emp").unwrap();
        assert!(matches!(
            PsjView::from_expr(&c, &e),
            Err(CoreError::NotPsj { .. })
        ));
    }

    #[test]
    fn from_expr_rejects_non_psj_operators() {
        let c = catalog();
        for text in [
            "Sale union Sale",
            "Emp minus pi[clerk, age](Sale join Emp)",
            "rho[age -> years](Emp)",
            "empty[a]",
            "Sale join Sale",
            "sigma[region = 'x'](pi[clerk](T)) join Emp", // selection on hidden attr? no — region hidden
        ] {
            let e = RaExpr::parse(text).unwrap();
            assert!(PsjView::from_expr(&c, &e).is_err(), "{text} should not normalize");
        }
    }

    #[test]
    fn named_view_and_definitions() {
        let c = catalog();
        let sold = NamedView::new("Sold", PsjView::join_of(&c, &["Sale", "Emp"]).unwrap());
        assert_eq!(sold.name(), RelName::new("Sold"));
        let defs = definitions(std::slice::from_ref(&sold));
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[&RelName::new("Sold")], sold.to_expr());
    }

    #[test]
    fn view_resolver_layers_views_over_catalog() {
        let c = catalog();
        let views = vec![NamedView::new(
            "Sold",
            PsjView::join_of(&c, &["Sale", "Emp"]).unwrap(),
        )];
        let r = ViewResolver::new(&c, &views);
        let q = RaExpr::parse("pi[clerk](Sold) union pi[clerk](Emp)").unwrap();
        assert!(q.attrs(&r).is_ok());
        assert!(RaExpr::base("Nope").attrs(&r).is_err());
    }
}
