//! Error types of the complement layer.

use dwc_relalg::{RelName, RelalgError};
use std::fmt;

/// Convenience alias.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors raised by the complement-computation layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A substrate error (schema/typing/evaluation).
    Relalg(RelalgError),
    /// An expression could not be brought into PSJ normal form.
    NotPsj {
        /// Which operator or shape broke the normal form.
        detail: String,
    },
    /// A PSJ view joins the same base relation twice; the paper's
    /// constructions assume each `R_i` occurs at most once per view.
    DuplicateRelationInView {
        /// The relation that occurs more than once.
        relation: RelName,
    },
    /// A view or complement name collides with an existing name.
    NameCollision(RelName),
    /// Cover enumeration would explode: more candidate sources than the
    /// configured limit (the search is exponential in this number).
    TooManyCoverSources {
        /// The relation whose cover was requested.
        relation: RelName,
        /// How many candidate source views exist.
        count: usize,
        /// The configured enumeration limit.
        limit: usize,
    },
    /// A view definition references a base relation missing from the
    /// catalog.
    UnknownBase(RelName),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Relalg(e) => write!(f, "{e}"),
            CoreError::NotPsj { detail } => write!(f, "not a PSJ expression: {detail}"),
            CoreError::DuplicateRelationInView { relation } => {
                write!(f, "view joins `{relation}` more than once")
            }
            CoreError::NameCollision(n) => write!(f, "name `{n}` is already in use"),
            CoreError::TooManyCoverSources { relation, count, limit } => write!(
                f,
                "cover enumeration for `{relation}` over {count} sources exceeds limit {limit}"
            ),
            CoreError::UnknownBase(n) => write!(f, "view references unknown base `{n}`"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelalgError> for CoreError {
    fn from(e: RelalgError) -> Self {
        CoreError::Relalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::NotPsj { detail: "union at top level".into() };
        assert!(e.to_string().contains("union"));
        assert!(e.source().is_none());

        let inner = RelalgError::UnknownRelation(RelName::new("X"));
        let e: CoreError = inner.clone().into();
        assert_eq!(e.to_string(), inner.to_string());
        assert!(e.source().is_some());
    }
}
