//! Minimal attribute covers (the paper's `C_R^ind`).
//!
//! A *cover* of a base relation `R` is a subset `Y` of the candidate
//! sources `V_K^ind` such that every attribute of `R` is present in some
//! source of `Y`, and `Y` is minimal with that property (Definition in
//! Section 2). Because "is a cover" is upward closed, a cover is minimal
//! iff removing any single element destroys coverage — so enumeration can
//! check minimality locally.
//!
//! The number of candidate sources is the exponent of the search; the
//! paper's examples have at most a handful. [`minimal_covers`] enforces a
//! caller-supplied limit and reports [`CoreError::TooManyCoverSources`]
//! beyond it.

use crate::analysis::CoverSource;
use crate::error::{CoreError, Result};
use crate::psj::NamedView;
use dwc_relalg::{AttrSet, RelName};

/// Upper bound on candidate sources accepted by default (2^20 subsets).
pub const DEFAULT_MAX_SOURCES: usize = 20;

/// Enumerates all minimal covers of `target` by the given coverage sets.
/// Returns each cover as a sorted list of source indices. Sources whose
/// coverage is empty can never occur in a minimal cover and are skipped.
pub fn minimal_covers(target: &AttrSet, coverages: &[AttrSet]) -> Vec<Vec<usize>> {
    assert!(
        coverages.len() < usize::BITS as usize,
        "cover enumeration limited to {} sources",
        usize::BITS - 1
    );
    if target.is_empty() {
        return Vec::new();
    }
    let useful: Vec<usize> = (0..coverages.len())
        .filter(|&i| !coverages[i].intersect(target).is_empty())
        .collect();
    let n = useful.len();
    let covered = |mask: usize| -> bool {
        let mut acc = AttrSet::empty();
        for (bit, &src) in useful.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                acc = acc.union(&coverages[src]);
            }
        }
        target.is_subset(&acc)
    };
    let mut out = Vec::new();
    for mask in 1usize..(1 << n) {
        if !covered(mask) {
            continue;
        }
        // Minimal iff dropping any single member breaks coverage.
        let minimal = (0..n)
            .filter(|bit| mask & (1 << bit) != 0)
            .all(|bit| !covered(mask & !(1 << bit)));
        if minimal {
            out.push(
                (0..n)
                    .filter(|bit| mask & (1 << bit) != 0)
                    .map(|bit| useful[bit])
                    .collect(),
            );
        }
    }
    out
}

/// Enumerates the minimal covers of base relation `target` by the cover
/// sources `sources` (the paper's `C_{target}^ind`), respecting the
/// source-count `limit`.
pub fn covers_of(
    views: &[NamedView],
    target: RelName,
    target_attrs: &AttrSet,
    sources: &[CoverSource],
    limit: usize,
) -> Result<Vec<Vec<usize>>> {
    if sources.len() > limit {
        return Err(CoreError::TooManyCoverSources {
            relation: target,
            count: sources.len(),
            limit,
        });
    }
    let coverages: Vec<AttrSet> = sources
        .iter()
        .map(|s| s.coverage(views, target_attrs))
        .collect();
    Ok(minimal_covers(target_attrs, &coverages))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names)
    }

    #[test]
    fn example_23_covers() {
        // Sources (Example 2.3): V1{A,B,C,D}→ABC, V3{A,B}, V4{A,C},
        // π_AB(R3){A,B}, π_AC(R2){A,C}; target R1 = {A,B,C}.
        // Paper: C_R1^ind = {{V1},{V3,V4},{π_AB(R3),V4},{V3,π_AC(R2)},
        //                    {π_AB(R3),π_AC(R2)}}.
        let target = s(&["A", "B", "C"]);
        let coverages = vec![
            s(&["A", "B", "C"]), // 0: V1 (coverage of R1's attrs)
            s(&["A", "B"]),      // 1: V3
            s(&["A", "C"]),      // 2: V4
            s(&["A", "B"]),      // 3: π_AB(R3)
            s(&["A", "C"]),      // 4: π_AC(R2)
        ];
        let mut covers = minimal_covers(&target, &coverages);
        covers.sort();
        assert_eq!(
            covers,
            vec![vec![0], vec![1, 2], vec![1, 4], vec![2, 3], vec![3, 4]]
        );
    }

    #[test]
    fn no_cover_when_attribute_unreachable() {
        let target = s(&["A", "B"]);
        let coverages = vec![s(&["A"]), s(&["A"])];
        assert!(minimal_covers(&target, &coverages).is_empty());
    }

    #[test]
    fn empty_coverage_sources_are_skipped() {
        let target = s(&["A", "B"]);
        let coverages = vec![s(&["Z"]), s(&["A", "B"]), s(&[])];
        let covers = minimal_covers(&target, &coverages);
        assert_eq!(covers, vec![vec![1]]);
    }

    #[test]
    fn supersets_of_covers_are_not_minimal() {
        let target = s(&["A", "B"]);
        let coverages = vec![s(&["A", "B"]), s(&["A"]), s(&["B"])];
        let mut covers = minimal_covers(&target, &coverages);
        covers.sort();
        // {0} and {1,2}; {0,1} etc are non-minimal.
        assert_eq!(covers, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn empty_target_has_no_covers() {
        assert!(minimal_covers(&AttrSet::empty(), &[s(&["A"])]).is_empty());
    }

    #[test]
    fn single_source_exact_match() {
        let covers = minimal_covers(&s(&["A"]), &[s(&["A"])]);
        assert_eq!(covers, vec![vec![0]]);
    }

    #[test]
    fn duplicate_sources_both_enumerate() {
        // Two identical sources give two singleton minimal covers — the
        // complement construction unions them, so duplicates are harmless.
        let covers = minimal_covers(&s(&["A"]), &[s(&["A"]), s(&["A"])]);
        assert_eq!(covers, vec![vec![0], vec![1]]);
    }

    #[test]
    fn covers_of_respects_limit() {
        use crate::analysis::CoverSource;
        let sources: Vec<CoverSource> = (0..3).map(CoverSource::View).collect();
        let err = covers_of(&[], RelName::new("R"), &s(&["A"]), &sources, 2).unwrap_err();
        assert!(matches!(err, CoreError::TooManyCoverSources { count: 3, limit: 2, .. }));
    }
}
