//! Containment of PSJ views (Definition 2.1, decided where possible).
//!
//! The sampled ordering of [`crate::ordering`] can only *refute*
//! `U ≤ V`. For the natural-join PSJ fragment a sound syntactic proof is
//! available, connecting to the answering-queries-using-views line the
//! paper cites ([16, 19]): a PSJ view is a conjunctive query whose
//! variables are the (globally shared) attribute names, so a containment
//! homomorphism is forced to be the identity, and
//!
//! ```text
//! π_Z(σ_p(⋈ R_a)) ⊆ π_Z(σ_q(⋈ R_b))   if  R_b ⊆ R_a  and  p ⟹ q
//! ```
//!
//! (dropping relations only loses join filters; the surviving witness
//! still satisfies `q` because `p` did). The implication `p ⟹ q` is
//! decided for conjunctions of attribute-vs-constant comparisons via
//! interval entailment — sound and conservative (`None` = don't know).
//!
//! [`view_le`] combines the proof attempt with the refutation search:
//! `Proven`, `Disproven` (with a witness state index), or `Unknown`.

use crate::error::{CoreError, Result};
use crate::psj::PsjView;
use dwc_relalg::{Attr, CmpOp, DbState, Operand, Predicate, Value};
use std::collections::BTreeMap;

/// Outcome of a containment check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Containment {
    /// Syntactically proven: holds on *every* state.
    Proven,
    /// Refuted by the probe state at this index.
    Disproven(usize),
    /// Neither proven nor refuted (predicates outside the decidable
    /// fragment, or no separating state found).
    Unknown,
}

/// Per-attribute constraint extracted from a conjunction.
#[derive(Clone, Debug, Default)]
struct Range {
    eq: Option<Value>,
    ne: Vec<Value>,
    /// `(bound, inclusive)`
    lower: Option<(Value, bool)>,
    upper: Option<(Value, bool)>,
}

impl Range {
    fn add(&mut self, op: CmpOp, v: Value) {
        match op {
            CmpOp::Eq => self.eq = Some(v),
            CmpOp::Ne => self.ne.push(v),
            CmpOp::Lt => tighten_upper(&mut self.upper, v, false),
            CmpOp::Le => tighten_upper(&mut self.upper, v, true),
            CmpOp::Gt => tighten_lower(&mut self.lower, v, false),
            CmpOp::Ge => tighten_lower(&mut self.lower, v, true),
        }
    }

    /// Does this range entail `attr op v`? Conservative (`false` = don't
    /// know, not "entails the negation").
    fn entails(&self, op: CmpOp, v: &Value) -> bool {
        if let Some(eq) = &self.eq {
            // A pinned value decides every comparison exactly.
            return op.test(eq.cmp(v));
        }
        match op {
            CmpOp::Eq => false, // only a pin can entail equality
            CmpOp::Ne => {
                self.ne.contains(v)
                    || matches!(&self.upper, Some((u, inc)) if u < v || (u == v && !inc))
                    || matches!(&self.lower, Some((l, inc)) if l > v || (l == v && !inc))
            }
            CmpOp::Lt => matches!(&self.upper, Some((u, inc)) if u < v || (u == v && !inc)),
            CmpOp::Le => matches!(&self.upper, Some((u, _)) if u <= v),
            CmpOp::Gt => matches!(&self.lower, Some((l, inc)) if l > v || (l == v && !inc)),
            CmpOp::Ge => matches!(&self.lower, Some((l, _)) if l >= v),
        }
    }
}

fn tighten_upper(slot: &mut Option<(Value, bool)>, v: Value, inclusive: bool) {
    let replace = match slot {
        None => true,
        Some((u, inc)) => v < *u || (v == *u && *inc && !inclusive),
    };
    if replace {
        *slot = Some((v, inclusive));
    }
}

fn tighten_lower(slot: &mut Option<(Value, bool)>, v: Value, inclusive: bool) {
    let replace = match slot {
        None => true,
        Some((l, inc)) => v > *l || (v == *l && *inc && !inclusive),
    };
    if replace {
        *slot = Some((v, inclusive));
    }
}

/// Flattens a predicate into attribute-vs-constant conjuncts; `None` when
/// the predicate leaves the decidable fragment (disjunction, negation,
/// attribute-attribute comparison).
fn conjuncts(p: &Predicate) -> Option<Vec<(Attr, CmpOp, Value)>> {
    let mut out = Vec::new();
    fn walk(p: &Predicate, out: &mut Vec<(Attr, CmpOp, Value)>) -> bool {
        match p {
            Predicate::True => true,
            Predicate::And(a, b) => walk(a, out) && walk(b, out),
            Predicate::Cmp(Operand::Attr(a), op, Operand::Const(v)) => {
                out.push((*a, *op, v.clone()));
                true
            }
            Predicate::Cmp(Operand::Const(v), op, Operand::Attr(a)) => {
                out.push((*a, op.flip(), v.clone()));
                true
            }
            _ => false,
        }
    }
    walk(p, &mut out).then_some(out)
}

/// Decides `p ⟹ q` for conjunctive constant comparisons. `Some(true)`
/// is a proof; `Some(false)` means some conjunct of `q` is not entailed
/// (not necessarily falsifiable); `None` means outside the fragment.
pub fn predicate_implies(p: &Predicate, q: &Predicate) -> Option<bool> {
    let p_atoms = conjuncts(p)?;
    let q_atoms = conjuncts(q)?;
    let mut ranges: BTreeMap<Attr, Range> = BTreeMap::new();
    for (a, op, v) in p_atoms {
        ranges.entry(a).or_default().add(op, v);
    }
    for (a, op, v) in q_atoms {
        let entailed = ranges.get(&a).map(|r| r.entails(op, &v)).unwrap_or(false);
        if !entailed {
            return Some(false);
        }
    }
    Some(true)
}

/// Checks `a ≤ b` (i.e. `a(d) ⊆ b(d)` for all `d`) for two PSJ views
/// with equal headers: first the syntactic proof, then refutation on the
/// probe states.
pub fn view_le(a: &PsjView, b: &PsjView, probe_states: &[DbState]) -> Result<Containment> {
    if a.projection() != b.projection() {
        return Err(CoreError::NotPsj {
            detail: format!(
                "containment needs equal headers, got {} vs {}",
                a.projection(),
                b.projection()
            ),
        });
    }
    // Syntactic proof: b's relations a subset of a's, and a's selection
    // implies b's.
    let rels_subset = b.relations().iter().all(|r| a.relations().contains(r));
    if rels_subset && predicate_implies(a.selection(), b.selection()) == Some(true) {
        return Ok(Containment::Proven);
    }
    // Refutation on the probe states.
    let ea = a.to_expr();
    let eb = b.to_expr();
    for (i, d) in probe_states.iter().enumerate() {
        let ra = ea.eval(d).map_err(CoreError::from)?;
        let rb = eb.eval(d).map_err(CoreError::from)?;
        if !ra.is_subset(&rb).map_err(CoreError::from)? {
            return Ok(Containment::Disproven(i));
        }
    }
    Ok(Containment::Unknown)
}

/// Checks view equivalence: `≤` in both directions.
pub fn view_equiv(a: &PsjView, b: &PsjView, probe_states: &[DbState]) -> Result<Containment> {
    match (view_le(a, b, probe_states)?, view_le(b, a, probe_states)?) {
        (Containment::Proven, Containment::Proven) => Ok(Containment::Proven),
        (Containment::Disproven(i), _) | (_, Containment::Disproven(i)) => {
            Ok(Containment::Disproven(i))
        }
        _ => Ok(Containment::Unknown),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_relalg::gen::{random_states, StateGenConfig};
    use dwc_relalg::{AttrSet, Catalog};

    fn pred(text: &str) -> Predicate {
        dwc_relalg::parse::parse_predicate(text).unwrap()
    }

    #[test]
    fn implication_basics() {
        assert_eq!(predicate_implies(&pred("a = 5"), &pred("a >= 5")), Some(true));
        assert_eq!(predicate_implies(&pred("a = 5"), &pred("a > 5")), Some(false));
        assert_eq!(predicate_implies(&pred("a > 5"), &pred("a >= 5")), Some(true));
        assert_eq!(predicate_implies(&pred("a >= 5"), &pred("a > 5")), Some(false));
        assert_eq!(predicate_implies(&pred("a < 3"), &pred("a <= 3")), Some(true));
        assert_eq!(predicate_implies(&pred("a < 3"), &pred("a != 3")), Some(true));
        assert_eq!(predicate_implies(&pred("a > 3"), &pred("a != 3")), Some(true));
        assert_eq!(predicate_implies(&pred("a != 3"), &pred("a != 3")), Some(true));
        assert_eq!(predicate_implies(&pred("a = 2"), &pred("a != 3")), Some(true));
        assert_eq!(predicate_implies(&pred("true"), &pred("a = 1")), Some(false));
        assert_eq!(predicate_implies(&pred("a = 1"), &pred("true")), Some(true));
    }

    #[test]
    fn implication_conjunctions_and_multiple_attrs() {
        assert_eq!(
            predicate_implies(&pred("a = 5 and b < 2"), &pred("a >= 5 and b <= 2")),
            Some(true)
        );
        assert_eq!(
            predicate_implies(&pred("a = 5"), &pred("a = 5 and b = 1")),
            Some(false)
        );
        // tightening across conjuncts of p
        assert_eq!(
            predicate_implies(&pred("a >= 3 and a <= 3"), &pred("a >= 3")),
            Some(true)
        );
        assert_eq!(
            predicate_implies(&pred("a < 5 and a < 3"), &pred("a < 4")),
            Some(true)
        );
        assert_eq!(
            predicate_implies(&pred("a > 5 and a > 7"), &pred("a >= 6")),
            Some(true)
        );
    }

    #[test]
    fn implication_fragment_limits() {
        // disjunction / negation / attr-attr leave the fragment
        assert_eq!(predicate_implies(&pred("a = 1 or a = 2"), &pred("a <= 2")), None);
        assert_eq!(predicate_implies(&pred("not a = 1"), &pred("true")), None);
        assert_eq!(predicate_implies(&pred("a = b"), &pred("true")), None);
        // constant-on-the-left is normalized into the fragment
        assert_eq!(predicate_implies(&pred("5 <= a"), &pred("a >= 4")), Some(true));
    }

    fn chain() -> (Catalog, Vec<DbState>) {
        let mut c = Catalog::new();
        c.add_schema("R", &["X", "Y"]).unwrap();
        c.add_schema("S", &["Y", "Z"]).unwrap();
        c.add_schema("T", &["Z"]).unwrap();
        let states = random_states(&c, &StateGenConfig::new(20, 5), 11, 8);
        (c, states)
    }

    #[test]
    fn join_filters_prove_containment() {
        // π_XY(R ⋈ S ⋈ T) ⊆ π_XY(R ⋈ S) ⊆ π_XY(R): proven syntactically.
        let (c, states) = chain();
        let z = AttrSet::from_names(&["X", "Y"]);
        let mk = |rels: &[&str]| {
            PsjView::new(
                &c,
                rels.iter().map(|r| (*r).into()).collect(),
                Predicate::True,
                z.clone(),
            )
            .unwrap()
        };
        let rst = mk(&["R", "S", "T"]);
        let rs = mk(&["R", "S"]);
        let r = mk(&["R"]);
        assert_eq!(view_le(&rst, &rs, &states).unwrap(), Containment::Proven);
        assert_eq!(view_le(&rs, &r, &states).unwrap(), Containment::Proven);
        assert_eq!(view_le(&rst, &r, &states).unwrap(), Containment::Proven);
        // The converse is refuted by some probe state.
        assert!(matches!(
            view_le(&r, &rst, &states).unwrap(),
            Containment::Disproven(_)
        ));
    }

    #[test]
    fn selection_strength_proves_containment() {
        let (c, states) = chain();
        let narrow = PsjView::select_of(&c, "R", pred("X = 2")).unwrap();
        let wide = PsjView::select_of(&c, "R", pred("X >= 1 and X <= 3")).unwrap();
        assert_eq!(view_le(&narrow, &wide, &states).unwrap(), Containment::Proven);
        assert!(matches!(
            view_le(&wide, &narrow, &states).unwrap(),
            Containment::Disproven(_)
        ));
        // identical views are provably equivalent
        assert_eq!(view_equiv(&narrow, &narrow, &states).unwrap(), Containment::Proven);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let (c, states) = chain();
        let a = PsjView::project_of(&c, "R", &["X"]).unwrap();
        let b = PsjView::project_of(&c, "R", &["Y"]).unwrap();
        assert!(view_le(&a, &b, &states).is_err());
    }

    #[test]
    fn unknown_when_fragment_exceeded_and_no_witness() {
        let (c, _) = chain();
        // Disjunctive selection: proof unavailable; with no probe states
        // the check must answer Unknown, not guess.
        let a = PsjView::select_of(&c, "R", pred("X = 1 or X = 2")).unwrap();
        let b = PsjView::select_of(&c, "R", pred("X <= 2 and X >= 1")).unwrap();
        assert_eq!(view_le(&a, &b, &[]).unwrap(), Containment::Unknown);
    }

    #[test]
    fn proofs_hold_on_probes() {
        // Every Proven answer must be consistent with every probe state —
        // cross-validate the syntactic criterion against evaluation.
        let (c, states) = chain();
        let z = AttrSet::from_names(&["Y"]);
        let views = vec![
            PsjView::new(&c, vec!["R".into()], pred("X <= 3"), z.clone()).unwrap(),
            PsjView::new(&c, vec!["R".into()], pred("X <= 5"), z.clone()).unwrap(),
            PsjView::new(&c, vec!["R".into(), "S".into()], pred("X <= 3"), z.clone()).unwrap(),
            PsjView::new(&c, vec!["R".into(), "S".into(), "T".into()], Predicate::True, z.clone())
                .unwrap(),
        ];
        for a in &views {
            for b in &views {
                if view_le(a, b, &[]).unwrap() == Containment::Proven {
                    for (i, d) in states.iter().enumerate() {
                        let ra = a.to_expr().eval(d).unwrap();
                        let rb = b.to_expr().eval(d).unwrap();
                        assert!(
                            ra.is_subset(&rb).unwrap(),
                            "proof contradicted on state {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}
