//! Complements without integrity constraints (Proposition 2.2).
//!
//! For every base relation `R_i`:
//!
//! ```text
//! R̄_i = ⋃ { π_{attr(R_i)}(V_j) | V_j ∈ V_{R_i} }    (Equation (1); π = ∅ when
//!                                                    attr(R_i) ⊄ Z_j)
//! C_i = R_i ∖ R̄_i
//! R_i = C_i ∪ R̄_i                                    (Equation (2))
//! ```
//!
//! By Theorem 2.1 this complement is *minimal* when every view in `V` is
//! an SJ view (no final projection). For proper PSJ views it need not be
//! (Example 2.2, see [`crate::minimality`]).

use crate::complement::Complement;
use crate::constrained::{complement_with, ComplementOptions};
use crate::error::Result;
use crate::psj::NamedView;
use dwc_relalg::Catalog;

/// Computes the Proposition 2.2 complement (keys and inclusion
/// dependencies ignored).
pub fn complement_of(catalog: &Catalog, views: &[NamedView]) -> Result<Complement> {
    complement_with(catalog, views, &ComplementOptions::unconstrained())
}

/// True iff Theorem 2.1 applies: every view is an SJ view, making the
/// Proposition 2.2 complement minimal.
pub fn theorem_21_applies(catalog: &Catalog, views: &[NamedView]) -> bool {
    views.iter().all(|v| v.view().is_sj(catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psj::PsjView;
    use dwc_relalg::{rel, DbState, RaExpr, RelName};

    /// Example 2.1: D = {R(X,Y), S(Y,Z), T(Z)}, V1 = R ⋈ S ⋈ T.
    fn example_21() -> (Catalog, DbState) {
        let mut c = Catalog::new();
        c.add_schema("R", &["X", "Y"]).unwrap();
        c.add_schema("S", &["Y", "Z"]).unwrap();
        c.add_schema("T", &["Z"]).unwrap();
        let mut d = DbState::new();
        d.insert_relation("R", rel! { ["X", "Y"] => (1, 10), (2, 20), (3, 30) });
        d.insert_relation("S", rel! { ["Y", "Z"] => (10, 100), (20, 200), (40, 400) });
        d.insert_relation("T", rel! { ["Z"] => (100,), (300,) });
        (c, d)
    }

    #[test]
    fn example_21_single_view() {
        // C = {C_R, C_S, C_T} with C_R = R ∖ π_XY(V1), etc.
        let (c, d) = example_21();
        let views = vec![NamedView::new("V1", PsjView::join_of(&c, &["R", "S", "T"]).unwrap())];
        assert!(theorem_21_applies(&c, &views));
        let comp = complement_of(&c, &views).unwrap();
        let m = comp.materialize(&d).unwrap();
        // V1 = {(1,10,100)}: only that chain survives to T.
        assert_eq!(
            m.relation(RelName::new("C_R")).unwrap(),
            &rel! { ["X", "Y"] => (2, 20), (3, 30) }
        );
        assert_eq!(
            m.relation(RelName::new("C_S")).unwrap(),
            &rel! { ["Y", "Z"] => (20, 200), (40, 400) }
        );
        assert_eq!(m.relation(RelName::new("C_T")).unwrap(), &rel! { ["Z"] => (300,) });
        assert_eq!(comp.verify_on(&c, &views, &d).unwrap(), Ok(()));
    }

    #[test]
    fn example_21_adding_v2_shrinks_cs_to_empty() {
        // V = {V1, V2 = S}: C'_S = S ∖ (π_YZ(V1) ∪ π_YZ(V2)) = ∅ always.
        let (c, d) = example_21();
        let views = vec![
            NamedView::new("V1", PsjView::join_of(&c, &["R", "S", "T"]).unwrap()),
            NamedView::new("V2", PsjView::of_base(&c, "S").unwrap()),
        ];
        let comp = complement_of(&c, &views).unwrap();
        let m = comp.materialize(&d).unwrap();
        assert!(m.relation(RelName::new("C_S")).unwrap().is_empty());
        // C_R and C_T unchanged from the single-view case.
        assert_eq!(m.relation(RelName::new("C_R")).unwrap().len(), 2);
        assert_eq!(m.relation(RelName::new("C_T")).unwrap().len(), 1);
        assert_eq!(comp.verify_on(&c, &views, &d).unwrap(), Ok(()));
    }

    #[test]
    fn no_constraints_means_no_ir_terms() {
        // Even with a key declared, basic::complement_of ignores it: the
        // complement definition only subtracts R̄ (Prop 2.2), never covers.
        let mut c = Catalog::new();
        c.add_schema_with_key("R", &["A", "B"], &["A"]).unwrap();
        let views = vec![
            NamedView::new("VA", PsjView::project_of(&c, "R", &["A"]).unwrap()),
            NamedView::new("VB", PsjView::project_of(&c, "R", &["B"]).unwrap()),
        ];
        let comp = complement_of(&c, &views).unwrap();
        // Neither view contains all of R's attrs: R̄ = ∅, C_R = R.
        assert_eq!(
            comp.entry_for(RelName::new("R")).unwrap().definition,
            RaExpr::base("R")
        );
    }

    #[test]
    fn theorem_21_detects_proper_projection() {
        let (c, _) = example_21();
        let views = vec![NamedView::new(
            "V",
            PsjView::project_of(&c, "R", &["X"]).unwrap(),
        )];
        assert!(!theorem_21_applies(&c, &views));
    }
}
