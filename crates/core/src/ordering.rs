//! The information-content ordering on views (Definition 2.1).
//!
//! `U ≤ V` iff `U(d) ⊆ V(d)` for *every* state `d`, and `U < V` iff
//! additionally some state witnesses a proper inclusion. The universal
//! quantifier is not decidable by evaluation, so this module decides the
//! ordering *relative to a family of states*: testing enough
//! (randomly generated, constraint-satisfying) states refutes false
//! orderings and corroborates true ones. All callers document this
//! sampled semantics.

use crate::error::{CoreError, Result};
use dwc_relalg::{DbState, RaExpr};
use std::cmp::Ordering;

/// Outcome of comparing two views on a family of states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewOrder {
    /// `U(d) = V(d)` on every state checked.
    Equal,
    /// `U(d) ⊆ V(d)` everywhere, properly on at least one state.
    Less,
    /// `V(d) ⊆ U(d)` everywhere, properly on at least one state.
    Greater,
    /// Both directions fail on some state.
    Incomparable,
}

impl ViewOrder {
    /// `≤` in the sense of Definition 2.1 (on the states checked).
    pub fn is_le(self) -> bool {
        matches!(self, ViewOrder::Equal | ViewOrder::Less)
    }

    /// Converts to a partial `Ordering` where possible.
    pub fn as_ordering(self) -> Option<Ordering> {
        match self {
            ViewOrder::Equal => Some(Ordering::Equal),
            ViewOrder::Less => Some(Ordering::Less),
            ViewOrder::Greater => Some(Ordering::Greater),
            ViewOrder::Incomparable => None,
        }
    }
}

/// Compares `u` and `v` (which must share a header) on the given states.
pub fn compare_on_states<'a>(
    u: &RaExpr,
    v: &RaExpr,
    states: impl IntoIterator<Item = &'a DbState>,
) -> Result<ViewOrder> {
    let mut u_le_v = true;
    let mut v_le_u = true;
    let mut proper = false;
    for d in states {
        let ru = u.eval(d).map_err(CoreError::from)?;
        let rv = v.eval(d).map_err(CoreError::from)?;
        let le = ru.is_subset(&rv).map_err(CoreError::from)?;
        let ge = rv.is_subset(&ru).map_err(CoreError::from)?;
        u_le_v &= le;
        v_le_u &= ge;
        proper |= le != ge;
        if !u_le_v && !v_le_u {
            return Ok(ViewOrder::Incomparable);
        }
    }
    Ok(match (u_le_v, v_le_u) {
        (true, true) => ViewOrder::Equal,
        (true, false) => ViewOrder::Less,
        (false, true) => ViewOrder::Greater,
        // Already returned inside the loop; harmless to repeat here.
        (false, false) => ViewOrder::Incomparable,
    })
    .inspect(|&o| {
        // `proper` is implied by the flags, but make Equal explicit when
        // no state separated the views.
        debug_assert!(o != ViewOrder::Equal || !proper);
    })
}

/// `u ≤ v` on the given states.
pub fn le_on_states<'a>(
    u: &RaExpr,
    v: &RaExpr,
    states: impl IntoIterator<Item = &'a DbState>,
) -> Result<bool> {
    Ok(compare_on_states(u, v, states)?.is_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_relalg::rel;

    fn states() -> Vec<DbState> {
        let mut a = DbState::new();
        a.insert_relation("R", rel! { ["x"] => (1,), (2,) });
        let mut b = DbState::new();
        b.insert_relation("R", rel! { ["x"] => (2,), (3,), (4,) });
        let mut c = DbState::new();
        c.insert_relation("R", rel! { ["x"] => });
        vec![a, b, c]
    }

    #[test]
    fn selection_is_less_than_base() {
        let s = states();
        let sel = RaExpr::parse("sigma[x >= 3](R)").unwrap();
        let base = RaExpr::parse("R").unwrap();
        assert_eq!(compare_on_states(&sel, &base, &s).unwrap(), ViewOrder::Less);
        assert_eq!(compare_on_states(&base, &sel, &s).unwrap(), ViewOrder::Greater);
        assert!(le_on_states(&sel, &base, &s).unwrap());
        assert!(!le_on_states(&base, &sel, &s).unwrap());
    }

    #[test]
    fn equal_expressions() {
        let s = states();
        let a = RaExpr::parse("sigma[x >= 1](R)").unwrap();
        let b = RaExpr::parse("R").unwrap();
        // On these states every x ≥ 1, so the views coincide.
        assert_eq!(compare_on_states(&a, &b, &s).unwrap(), ViewOrder::Equal);
    }

    #[test]
    fn incomparable_selections() {
        let s = states();
        let a = RaExpr::parse("sigma[x <= 2](R)").unwrap();
        let b = RaExpr::parse("sigma[x >= 2](R)").unwrap();
        assert_eq!(compare_on_states(&a, &b, &s).unwrap(), ViewOrder::Incomparable);
        assert_eq!(
            compare_on_states(&a, &b, &s).unwrap().as_ordering(),
            None
        );
    }

    #[test]
    fn header_mismatch_is_error() {
        let mut d = DbState::new();
        d.insert_relation("R", rel! { ["x"] => (1,) });
        d.insert_relation("S", rel! { ["y"] => (1,) });
        let a = RaExpr::base("R");
        let b = RaExpr::base("S");
        assert!(compare_on_states(&a, &b, [&d]).is_err());
    }

    #[test]
    fn empty_state_family_says_equal() {
        let a = RaExpr::base("R");
        let b = RaExpr::base("S");
        // Vacuously equal — callers must supply states.
        assert_eq!(compare_on_states(&a, &b, []).unwrap(), ViewOrder::Equal);
    }
}
