//! Union-integrated fact tables (Section 5).
//!
//! Multi-site businesses integrate per-site fact extractions by union:
//! `U = σ_{sel=v₁}(E₁) ∪ … ∪ σ_{sel=vₖ}(Eₖ)`, one PSJ branch per site.
//! Views containing union cannot carry the complement machinery in
//! general, *but* — the paper's observation — when a dimension attribute
//! (the *selector*) determines each tuple's origin, selecting on it
//! recovers every branch exactly:
//!
//! ```text
//! σ_{sel=vᵢ}(U) = branchᵢ        (branches with other selector values
//!                                  contribute nothing to the selection)
//! ```
//!
//! So the complement computation can treat the branches as ordinary PSJ
//! views, and the resulting inverse expressions just need every branch
//! reference replaced by `σ_{sel=vᵢ}(U)` — which is what
//! [`complement_for`] does. Only `U` itself is stored at the warehouse.

use crate::complement::{Complement, ComplementResolver};
use crate::constrained::{complement_with, ComplementOptions};
use crate::error::{CoreError, Result};
use crate::psj::{NamedView, PsjView};
use dwc_relalg::expr::HeaderResolver;
use dwc_relalg::{Attr, AttrSet, Catalog, Predicate, RaExpr, RelName, Value};
use std::collections::BTreeMap;

/// A fact table integrated by union over selector-disjoint PSJ branches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnionFactView {
    name: RelName,
    selector: Attr,
    branches: Vec<(Value, PsjView)>,
}

impl UnionFactView {
    /// Builds and validates a union fact table. Every branch view must
    /// project the selector attribute, all branches must share one
    /// header, and the selector values must be pairwise distinct. Each
    /// branch's effective definition conjoins `selector = value` onto the
    /// branch's selection (so branch tuples *provably* carry their
    /// origin).
    pub fn new(
        catalog: &Catalog,
        name: impl Into<RelName>,
        selector: &str,
        branches: Vec<(Value, PsjView)>,
    ) -> Result<UnionFactView> {
        let name = name.into();
        let selector = Attr::new(selector);
        if branches.is_empty() {
            return Err(CoreError::NotPsj {
                detail: format!("union fact `{name}` needs at least one branch"),
            });
        }
        let header = branches[0].1.projection().clone();
        let mut tagged = Vec::with_capacity(branches.len());
        for (i, (value, view)) in branches.into_iter().enumerate() {
            if view.projection() != &header {
                return Err(CoreError::NotPsj {
                    detail: format!(
                        "branch {i} of `{name}` has header {} instead of {header}",
                        view.projection()
                    ),
                });
            }
            if !header.contains(selector) {
                return Err(CoreError::NotPsj {
                    detail: format!("branches of `{name}` must project the selector `{selector}`"),
                });
            }
            if tagged.iter().any(|(v, _)| v == &value) {
                return Err(CoreError::NotPsj {
                    detail: format!("duplicate selector value {value} in `{name}`"),
                });
            }
            // Conjoin the origin condition.
            let effective = PsjView::new(
                catalog,
                view.relations().to_vec(),
                view.selection().clone().and(Predicate::Cmp(
                    dwc_relalg::Operand::Attr(selector),
                    dwc_relalg::CmpOp::Eq,
                    dwc_relalg::Operand::Const(value.clone()),
                )),
                header.clone(),
            )?;
            tagged.push((value, effective));
        }
        Ok(UnionFactView {
            name,
            selector,
            branches: tagged,
        })
    }

    /// The fact table's name (the only stored relation).
    pub fn name(&self) -> RelName {
        self.name
    }

    /// The selector attribute.
    pub fn selector(&self) -> Attr {
        self.selector
    }

    /// The common branch header (= the fact table's header).
    pub fn header(&self) -> &AttrSet {
        self.branches[0].1.projection()
    }

    /// The branches with their selector values (selection already
    /// conjoined with `selector = value`).
    pub fn branches(&self) -> &[(Value, PsjView)] {
        &self.branches
    }

    /// The defining expression over `D`: the union of the branches.
    pub fn to_expr(&self) -> RaExpr {
        // The constructor requires at least one branch; degrade to the
        // empty relation rather than panicking if that is ever bypassed.
        RaExpr::union_all(self.branches.iter().map(|(_, v)| v.to_expr()))
            .unwrap_or_else(|| RaExpr::Empty(AttrSet::empty()))
    }

    /// The synthetic per-branch views fed to the complement computation.
    pub fn branch_views(&self) -> Vec<NamedView> {
        self.branches
            .iter()
            .enumerate()
            .map(|(i, (_, view))| NamedView::new(self.branch_name(i), view.clone()))
            .collect()
    }

    /// The substitution mapping each branch reference back onto the
    /// stored union: `branchᵢ ↦ σ_{sel=vᵢ}(U)`.
    pub fn fold_map(&self) -> BTreeMap<RelName, RaExpr> {
        self.branches
            .iter()
            .enumerate()
            .map(|(i, (value, _))| {
                (
                    self.branch_name(i),
                    RaExpr::Base(self.name).select(Predicate::Cmp(
                        dwc_relalg::Operand::Attr(self.selector),
                        dwc_relalg::CmpOp::Eq,
                        dwc_relalg::Operand::Const(value.clone()),
                    )),
                )
            })
            .collect()
    }

    fn branch_name(&self, i: usize) -> RelName {
        RelName::new(&format!("{}@b{i}", self.name))
    }
}

/// Computes a complement for a warehouse mixing plain PSJ views and
/// union fact tables: the branches participate in the Theorem 2.2
/// computation as ordinary views; the inverse expressions are then folded
/// back onto selections of the stored union.
pub fn complement_for(
    catalog: &Catalog,
    plain_views: &[NamedView],
    union_facts: &[UnionFactView],
    opts: &ComplementOptions,
) -> Result<Complement> {
    let mut views_all = plain_views.to_vec();
    let mut fold: BTreeMap<RelName, RaExpr> = BTreeMap::new();
    for uf in union_facts {
        views_all.extend(uf.branch_views());
        fold.extend(uf.fold_map());
    }
    let comp = complement_with(catalog, &views_all, opts)?;
    let inverse: BTreeMap<RelName, RaExpr> = comp
        .inverse()
        .iter()
        .map(|(base, expr)| {
            let folded = expr.substitute(&fold);
            let resolver = UnionResolver {
                inner: comp.resolver(catalog, &views_all),
                union_facts,
            };
            Ok((*base, folded.simplified(&resolver)?))
        })
        .collect::<Result<_>>()?;
    Ok(Complement::new(comp.entries().to_vec(), inverse))
}

/// Resolver covering union-fact names on top of the complement resolver.
pub struct UnionResolver<'a> {
    inner: ComplementResolver<'a>,
    union_facts: &'a [UnionFactView],
}

impl HeaderResolver for UnionResolver<'_> {
    fn header_of(&self, name: RelName) -> dwc_relalg::Result<AttrSet> {
        if let Some(uf) = self.union_facts.iter().find(|u| u.name() == name) {
            return Ok(uf.header().clone());
        }
        self.inner.header_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_relalg::{rel, DbState};

    /// Two-site business: per-site order extractions integrated by union,
    /// origin determined by the `site` dimension attribute.
    fn two_sites() -> (Catalog, Vec<NamedView>, UnionFactView) {
        let mut c = Catalog::new();
        c.add_schema_with_key("OrdParis", &["okey", "site", "amount"], &["okey"]).unwrap();
        c.add_schema_with_key("OrdLyon", &["okey", "site", "amount"], &["okey"]).unwrap();
        let uf = UnionFactView::new(
            &c,
            "AllOrders",
            "site",
            vec![
                (Value::str("paris"), PsjView::of_base(&c, "OrdParis").unwrap()),
                (Value::str("lyon"), PsjView::of_base(&c, "OrdLyon").unwrap()),
            ],
        )
        .unwrap();
        (c, vec![], uf)
    }

    fn two_sites_state() -> DbState {
        let mut d = DbState::new();
        d.insert_relation(
            "OrdParis",
            rel! { ["okey", "site", "amount"] => (1, "paris", 10), (2, "paris", 20) },
        );
        d.insert_relation(
            "OrdLyon",
            rel! { ["okey", "site", "amount"] => (7, "lyon", 70) },
        );
        d
    }

    #[test]
    fn validation() {
        let (c, _, _) = two_sites();
        // missing selector in projection
        let narrow = PsjView::project_of(&c, "OrdParis", &["okey", "amount"]).unwrap();
        assert!(UnionFactView::new(&c, "U", "site", vec![(Value::str("p"), narrow)]).is_err());
        // mismatched branch headers
        let full = PsjView::of_base(&c, "OrdParis").unwrap();
        let partial = PsjView::project_of(&c, "OrdLyon", &["okey", "site"]).unwrap();
        assert!(UnionFactView::new(
            &c,
            "U",
            "site",
            vec![(Value::str("p"), full.clone()), (Value::str("l"), partial)]
        )
        .is_err());
        // duplicate selector values
        let lyon = PsjView::of_base(&c, "OrdLyon").unwrap();
        assert!(UnionFactView::new(
            &c,
            "U",
            "site",
            vec![(Value::str("x"), full), (Value::str("x"), lyon)]
        )
        .is_err());
        // no branches
        assert!(UnionFactView::new(&c, "U", "site", vec![]).is_err());
    }

    #[test]
    fn selection_recovers_branches() {
        let (_, _, uf) = two_sites();
        let db = two_sites_state();
        let u = uf.to_expr().eval(&db).unwrap();
        assert_eq!(u.len(), 3);
        let fold = uf.fold_map();
        // Evaluate σ_{site=paris}(U) against a state storing U.
        let mut w = DbState::new();
        w.insert_relation("AllOrders", u);
        let paris = fold[&RelName::new("AllOrders@b0")].eval(&w).unwrap();
        assert_eq!(
            paris,
            rel! { ["okey", "site", "amount"] => (1, "paris", 10), (2, "paris", 20) }
        );
    }

    #[test]
    fn complement_for_union_fact_verifies() {
        let (c, plain, uf) = two_sites();
        let comp =
            complement_for(&c, &plain, std::slice::from_ref(&uf), &ComplementOptions::default())
                .unwrap();
        // Inverses reference only the union name and complements.
        for (base, inv) in comp.inverse() {
            for r in inv.base_relations() {
                assert!(
                    r == uf.name() || r.as_str().starts_with("C_"),
                    "inverse of {base} references {r}"
                );
            }
        }
        // Recompute bases from the materialized warehouse.
        let db = two_sites_state();
        let mut w = comp.materialize(&db).unwrap();
        w.insert_relation("AllOrders", uf.to_expr().eval(&db).unwrap());
        for base in c.relation_names() {
            let rebuilt = comp.inverse_of(base).unwrap().eval(&w).unwrap();
            assert_eq!(&rebuilt, db.relation(base).unwrap(), "base {base}");
        }
    }

    #[test]
    fn branches_with_dangling_tuples_fall_into_complement() {
        // A Paris order with the wrong site tag is NOT in the union's
        // paris-branch (its effective selection filters it) and must be
        // stored in the complement.
        let (c, plain, uf) = two_sites();
        let comp =
            complement_for(&c, &plain, std::slice::from_ref(&uf), &ComplementOptions::default())
                .unwrap();
        let mut db = two_sites_state();
        let paris = db.relation(RelName::new("OrdParis")).unwrap().clone();
        db.insert_relation(
            "OrdParis",
            paris
                .union(&rel! { ["okey", "site", "amount"] => (3, "mislabeled", 5) })
                .unwrap(),
        );
        let m = comp.materialize(&db).unwrap();
        let c_paris = comp.entry_for(RelName::new("OrdParis")).unwrap();
        assert_eq!(
            m.relation(c_paris.name).unwrap(),
            &rel! { ["okey", "site", "amount"] => (3, "mislabeled", 5) }
        );
        // And recomputation still works.
        let mut w = m;
        w.insert_relation("AllOrders", uf.to_expr().eval(&db).unwrap());
        for base in c.relation_names() {
            let rebuilt = comp.inverse_of(base).unwrap().eval(&w).unwrap();
            assert_eq!(&rebuilt, db.relation(base).unwrap());
        }
    }
}
