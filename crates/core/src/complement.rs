//! The complement artifact.
//!
//! A [`Complement`] packages what the paper's algorithms produce:
//!
//! * one complement view `C_i` per base relation `R_i`, defined over `D`
//!   (Equations (1) and (3)) — these are the auxiliary views to
//!   materialize at the warehouse, and
//! * the inverse expressions `R_i = …` over warehouse names (views ∪
//!   complements; Equations (2) and (4)) — the mapping `W⁻¹` used for
//!   query translation (Theorem 3.1) and maintenance (Theorem 4.1).
//!
//! [`Complement::verify_on`] checks the complement property of
//! Definition 2.2 directly on a state: evaluating every inverse
//! expression against the materialized warehouse must reproduce the base
//! relations. By Proposition 2.1 this is equivalent to injectivity of
//! `d ↦ (V(d), C(d))` on the states checked.

use crate::error::Result;
use crate::psj::NamedView;
use dwc_relalg::eval::{eval_cached, EvalCache};
use dwc_relalg::expr::HeaderResolver;
use dwc_relalg::{exec, AttrSet, Catalog, DbState, RaExpr, RelName};
use std::collections::BTreeMap;
use std::fmt;

/// One complement view `C_i` for base relation `R_i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComplementEntry {
    /// The base relation this entry complements.
    pub base: RelName,
    /// The complement view's name (e.g. `C_Emp`).
    pub name: RelName,
    /// The definition of the complement view over `D`.
    pub definition: RaExpr,
}

impl ComplementEntry {
    /// True iff the definition is syntactically the empty relation — the
    /// algorithm proved the complement empty (as in Examples 2.3/2.4).
    pub fn is_provably_empty(&self) -> bool {
        matches!(self.definition, RaExpr::Empty(_))
    }
}

/// A complement of a warehouse: complement views plus inverse expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Complement {
    entries: Vec<ComplementEntry>,
    /// `R_i → expression over warehouse names` (Equation (4)).
    inverse: BTreeMap<RelName, RaExpr>,
}

impl Complement {
    /// Packages entries and inverse expressions.
    pub fn new(entries: Vec<ComplementEntry>, inverse: BTreeMap<RelName, RaExpr>) -> Complement {
        Complement { entries, inverse }
    }

    /// The complement views, one per base relation, sorted by base name.
    pub fn entries(&self) -> &[ComplementEntry] {
        &self.entries
    }

    /// The entry complementing `base`.
    pub fn entry_for(&self, base: RelName) -> Option<&ComplementEntry> {
        self.entries.iter().find(|e| e.base == base)
    }

    /// The inverse map `R_i → expression over warehouse names`.
    pub fn inverse(&self) -> &BTreeMap<RelName, RaExpr> {
        &self.inverse
    }

    /// The inverse expression for one base relation.
    pub fn inverse_of(&self, base: RelName) -> Option<&RaExpr> {
        self.inverse.get(&base)
    }

    /// Names of all complement views that are not provably empty (the
    /// ones that actually need storage).
    pub fn stored_names(&self) -> impl Iterator<Item = RelName> + '_ {
        self.entries
            .iter()
            .filter(|e| !e.is_provably_empty())
            .map(|e| e.name)
    }

    /// Materializes the complement views against a base state. Each `C_i`
    /// is an independent expression over `db` (Proposition 2.2: one
    /// difference per base relation), so they evaluate in parallel.
    pub fn materialize(&self, db: &DbState) -> Result<DbState> {
        self.materialize_cached(db, &EvalCache::new())
    }

    /// [`Complement::materialize`] sharing an evaluation cache: the `C_i`
    /// definitions embed the view expressions (Equations (1)/(3) subtract
    /// projections of the views), so a cache primed with the views — or
    /// shared between the `C_i` themselves — evaluates each repeated
    /// subtree once.
    pub fn materialize_cached(&self, db: &DbState, cache: &EvalCache) -> Result<DbState> {
        let materialized = exec::try_par_map(&self.entries, |e| {
            eval_cached(&e.definition, db, cache).map_err(crate::error::CoreError::from)
        })?;
        let mut out = DbState::new();
        for (e, rel) in self.entries.iter().zip(materialized) {
            out.insert_shared(e.name, rel);
        }
        Ok(out)
    }

    /// Total number of tuples the complement stores on `db` — the
    /// auxiliary-storage metric of the experiments.
    pub fn materialized_size(&self, db: &DbState) -> Result<usize> {
        Ok(self.materialize(db)?.total_tuples())
    }

    /// Materializes the full warehouse state `W(d) = (V(d), C(d))`; the
    /// views, like the complements, evaluate concurrently.
    pub fn warehouse_state(&self, views: &[NamedView], db: &DbState) -> Result<DbState> {
        self.warehouse_state_cached(views, db, &EvalCache::new())
    }

    /// [`Complement::warehouse_state`] sharing an evaluation cache. The
    /// views evaluate first so the complement definitions — which embed
    /// the view expressions — find those subtrees already cached.
    pub fn warehouse_state_cached(
        &self,
        views: &[NamedView],
        db: &DbState,
        cache: &EvalCache,
    ) -> Result<DbState> {
        let evaluated = exec::try_par_map(views, |v| {
            eval_cached(&v.to_expr(), db, cache).map_err(crate::error::CoreError::from)
        })?;
        let mut w = self.materialize_cached(db, cache)?;
        for (v, rel) in views.iter().zip(evaluated) {
            w.insert_shared(v.name(), rel);
        }
        Ok(w)
    }

    /// Verifies the complement property (Definition 2.2) on one state:
    /// every base relation must be recomputable from the warehouse state
    /// via its inverse expression. Returns the offending base relation on
    /// failure.
    pub fn verify_on(
        &self,
        catalog: &Catalog,
        views: &[NamedView],
        db: &DbState,
    ) -> Result<std::result::Result<(), RelName>> {
        let w = self.warehouse_state(views, db)?;
        for name in catalog.relation_names() {
            let Some(inv) = self.inverse.get(&name) else {
                return Ok(Err(name));
            };
            let recomputed = inv.eval(&w).map_err(crate::error::CoreError::from)?;
            if &recomputed != db.relation(name).map_err(crate::error::CoreError::from)? {
                return Ok(Err(name));
            }
        }
        Ok(Ok(()))
    }

    /// Verifies the complement property on many states; returns the first
    /// failing `(state index, base relation)` if any.
    pub fn verify_all<'a>(
        &self,
        catalog: &Catalog,
        views: &[NamedView],
        states: impl IntoIterator<Item = &'a DbState>,
    ) -> Result<std::result::Result<(), (usize, RelName)>> {
        for (i, db) in states.into_iter().enumerate() {
            if let Err(base) = self.verify_on(catalog, views, db)? {
                return Ok(Err((i, base)));
            }
        }
        Ok(Ok(()))
    }

    /// A header resolver for warehouse-name expressions: view names map
    /// to their projections, complement names to their base relation's
    /// attributes, and base names resolve through the catalog (useful for
    /// intermediate expressions during construction).
    pub fn resolver<'a>(
        &'a self,
        catalog: &'a Catalog,
        views: &'a [NamedView],
    ) -> ComplementResolver<'a> {
        ComplementResolver {
            catalog,
            views,
            complement: self,
        }
    }
}

/// See [`Complement::resolver`].
pub struct ComplementResolver<'a> {
    catalog: &'a Catalog,
    views: &'a [NamedView],
    complement: &'a Complement,
}

impl HeaderResolver for ComplementResolver<'_> {
    fn header_of(&self, name: RelName) -> dwc_relalg::Result<AttrSet> {
        if let Some(v) = self.views.iter().find(|v| v.name() == name) {
            return Ok(v.header().clone());
        }
        if let Some(e) = self.complement.entries.iter().find(|e| e.name == name) {
            return Ok(self.catalog.schema(e.base)?.attrs().clone());
        }
        self.catalog.header_of(name)
    }
}

impl fmt::Display for Complement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{} = {}", e.name, e.definition)?;
        }
        for (base, inv) in &self.inverse {
            writeln!(f, "{base} = {inv}")?;
        }
        Ok(())
    }
}

/// Derives a fresh complement-view name `{prefix}{base}` and checks it
/// against existing names.
pub fn complement_name(
    prefix: &str,
    base: RelName,
    taken: &mut std::collections::BTreeSet<RelName>,
) -> Result<RelName> {
    let name = RelName::new(&format!("{prefix}{base}"));
    if !taken.insert(name) {
        return Err(crate::error::CoreError::NameCollision(name));
    }
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psj::PsjView;
    use dwc_relalg::rel;

    /// Hand-built complement for the Figure 1 warehouse (Example 1.1):
    /// C1 = Emp ∖ π_{clerk,age}(Sold), C2 = Sale ∖ π_{item,clerk}(Sold),
    /// with inverses Emp = π(Sold) ∪ C1 and Sale = π(Sold) ∪ C2.
    fn fig1() -> (Catalog, Vec<NamedView>, Complement, DbState) {
        let mut c = Catalog::new();
        c.add_schema("Sale", &["item", "clerk"]).unwrap();
        c.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
        let views = vec![NamedView::new(
            "Sold",
            PsjView::join_of(&c, &["Sale", "Emp"]).unwrap(),
        )];
        let sold_d = views[0].to_expr();
        let entries = vec![
            ComplementEntry {
                base: RelName::new("Emp"),
                name: RelName::new("C1"),
                definition: RaExpr::base("Emp")
                    .diff(sold_d.clone().project_names(&["clerk", "age"])),
            },
            ComplementEntry {
                base: RelName::new("Sale"),
                name: RelName::new("C2"),
                definition: RaExpr::base("Sale")
                    .diff(sold_d.clone().project_names(&["item", "clerk"])),
            },
        ];
        let inverse: BTreeMap<RelName, RaExpr> = [
            (
                RelName::new("Emp"),
                RaExpr::base("Sold")
                    .project_names(&["clerk", "age"])
                    .union(RaExpr::base("C1")),
            ),
            (
                RelName::new("Sale"),
                RaExpr::base("Sold")
                    .project_names(&["item", "clerk"])
                    .union(RaExpr::base("C2")),
            ),
        ]
        .into();
        let comp = Complement::new(entries, inverse);
        let mut db = DbState::new();
        db.insert_relation(
            "Sale",
            rel! { ["item", "clerk"] => ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") },
        );
        db.insert_relation(
            "Emp",
            rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
        );
        (c, views, comp, db)
    }

    #[test]
    fn materialize_matches_example_11() {
        let (_, _, comp, db) = fig1();
        let m = comp.materialize(&db).unwrap();
        // C1 = {(Paula, 32)}: Paula sells nothing.
        assert_eq!(
            m.relation(RelName::new("C1")).unwrap(),
            &rel! { ["clerk", "age"] => ("Paula", 32) }
        );
        // C2 = ∅: every sale's clerk is in Emp.
        assert!(m.relation(RelName::new("C2")).unwrap().is_empty());
        assert_eq!(comp.materialized_size(&db).unwrap(), 1);
    }

    #[test]
    fn verify_on_fig1_state_succeeds() {
        let (c, views, comp, db) = fig1();
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));
    }

    #[test]
    fn verify_detects_broken_inverse() {
        let (c, views, mut comp, db) = fig1();
        // Sabotage: claim Emp can be recomputed from Sold alone.
        comp.inverse.insert(
            RelName::new("Emp"),
            RaExpr::base("Sold").project_names(&["clerk", "age"]),
        );
        assert_eq!(
            comp.verify_on(&c, &views, &db).unwrap(),
            Err(RelName::new("Emp"))
        );
        let states = [db];
        assert_eq!(
            comp.verify_all(&c, &views, states.iter()).unwrap(),
            Err((0, RelName::new("Emp")))
        );
    }

    #[test]
    fn verify_reports_missing_inverse() {
        let (c, views, mut comp, db) = fig1();
        comp.inverse.remove(&RelName::new("Sale"));
        assert_eq!(
            comp.verify_on(&c, &views, &db).unwrap(),
            Err(RelName::new("Sale"))
        );
    }

    #[test]
    fn warehouse_state_contains_views_and_complements() {
        let (_, views, comp, db) = fig1();
        let w = comp.warehouse_state(&views, &db).unwrap();
        assert!(w.contains(RelName::new("Sold")));
        assert!(w.contains(RelName::new("C1")));
        assert!(w.contains(RelName::new("C2")));
        assert_eq!(w.relation(RelName::new("Sold")).unwrap().len(), 3);
    }

    #[test]
    fn resolver_resolves_all_name_kinds() {
        let (c, views, comp, _) = fig1();
        let r = comp.resolver(&c, &views);
        assert_eq!(
            r.header_of(RelName::new("Sold")).unwrap(),
            AttrSet::from_names(&["item", "clerk", "age"])
        );
        assert_eq!(
            r.header_of(RelName::new("C1")).unwrap(),
            AttrSet::from_names(&["clerk", "age"])
        );
        assert_eq!(
            r.header_of(RelName::new("Emp")).unwrap(),
            AttrSet::from_names(&["clerk", "age"])
        );
        assert!(r.header_of(RelName::new("ZZZ")).is_err());
    }

    #[test]
    fn complement_name_collision() {
        let mut taken = std::collections::BTreeSet::new();
        taken.insert(RelName::new("C_Emp"));
        let err = complement_name("C_", RelName::new("Emp"), &mut taken).unwrap_err();
        assert!(matches!(err, crate::error::CoreError::NameCollision(_)));
        let ok = complement_name("C_", RelName::new("Sale"), &mut taken).unwrap();
        assert_eq!(ok, RelName::new("C_Sale"));
    }

    #[test]
    fn stored_names_skip_empty() {
        let (_, _, mut comp, _) = fig1();
        comp.entries[1].definition = RaExpr::empty(AttrSet::from_names(&["item", "clerk"]));
        let names: Vec<RelName> = comp.stored_names().collect();
        assert_eq!(names, vec![RelName::new("C1")]);
    }
}
