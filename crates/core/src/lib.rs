#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # dwc-core — view complements for data warehouses
//!
//! This crate implements the central contribution of *Complements for
//! Data Warehouses* (Laurent, Lechtenbörger, Spyratos, Vossen; ICDE
//! 1999): computing a **complement** of a set of PSJ views — auxiliary
//! views that, together with the warehouse views, let every base relation
//! be recomputed (Definition 2.2) — and the corresponding **inverse
//! expressions** (Equation (4)) which render the warehouse query- and
//! update-independent.
//!
//! * [`psj`] — PSJ view normal form `π_Z(σ_c(R1 ⋈ … ⋈ Rk))` and
//!   normalization of algebra expressions into it,
//! * [`analysis`] — the paper's notation: `V_R`, `V_K`, IND-derived
//!   pseudo-views, `V_K^ind`,
//! * [`covers`] — minimal attribute covers `C_R^ind`,
//! * [`basic`] — Proposition 2.2 (complements without constraints),
//! * [`constrained`] — Theorem 2.2 (complements under key constraints and
//!   acyclic inclusion dependencies, with extension joins),
//! * [`complement`] — the [`Complement`](complement::Complement) artifact:
//!   complement view definitions plus inverse expressions, and randomized
//!   verification of the complement property (Proposition 2.1),
//! * [`ordering`] — the information-content ordering `U ≤ V` on views
//!   (Definition 2.1), decided on sampled states,
//! * [`containment`] — sound syntactic containment proofs for the
//!   natural-join PSJ fragment (cf. answering queries using views
//!   [16, 19]),
//! * [`minimality`] — complement comparison and the improved complement
//!   of Example 2.2,
//! * [`unionfact`] — union-integrated fact tables whose origin is
//!   determined by a dimension selector (Section 5).
//!
//! ## Quick example (Figure 1 / Example 1.1)
//!
//! ```
//! use dwc_relalg::Catalog;
//! use dwc_core::psj::{NamedView, PsjView};
//! use dwc_core::constrained::complement_of;
//!
//! let mut catalog = Catalog::new();
//! catalog.add_schema("Sale", &["item", "clerk"]).unwrap();
//! catalog.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
//!
//! // Sold = Sale ⋈ Emp
//! let sold = NamedView::new(
//!     "Sold",
//!     PsjView::join_of(&catalog, &["Sale", "Emp"]).unwrap(),
//! );
//!
//! let complement = complement_of(&catalog, &[sold]).unwrap();
//! // One complement view per base relation: C_Sale and C_Emp
//! assert_eq!(complement.entries().len(), 2);
//! ```

pub mod analysis;
pub mod basic;
pub mod complement;
pub mod constrained;
pub mod containment;
pub mod covers;
pub mod error;
pub mod minimality;
pub mod ordering;
pub mod psj;
pub mod unionfact;

pub use complement::{Complement, ComplementEntry};
pub use error::{CoreError, Result};
pub use psj::{NamedView, PsjView};
