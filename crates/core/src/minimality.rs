//! Complement comparison and the improved complement of Example 2.2.
//!
//! Theorem 2.1 states that for SJ views the Proposition 2.2 complement is
//! minimal; Example 2.2 shows that for proper PSJ views it need not be,
//! by exhibiting a strictly smaller complement for
//! `D = {R(A,B,C)}`, `V1 = π_AB(R)`, `V2 = π_BC(R)`, `V3 = σ_{B=b}(R)`.
//!
//! ## A note on the paper's printed formula
//!
//! The paper prints the improved complement as
//! `C'_R = (R ⋈ π_AB((V1 ⋈ V2) ∖ R)) ∖ V3`. As printed, the recomputation
//! equation fails on the state `R = {(a,b,c), (a,b,e), (a2,b,e)}` with
//! `V3 = ∅`: the spurious join tuple `(a2,b,c)` puts only `(a2,b,e)` into
//! `C'_R`, the recomputation then removes `(b,e)` from the `V2` side and
//! never recovers `(a,b,e)`. Projecting the ambiguity witness onto the
//! *shared* (join) attributes `B` instead —
//! `C'_R = (R ⋈ π_B((V1 ⋈ V2) ∖ R)) ∖ V3` — repairs the construction:
//! every `B`-group is either fully ambiguous (stored in `C'_R`), or
//! reconstructed exactly by `V1 ⋈ V2`. This module implements the
//! repaired formula (the selection of `V3` must range over the shared
//! attributes, as in the paper's `σ_{B=b}`); `C'_R` remains strictly
//! smaller than the Proposition 2.2 complement `C_R = R ∖ V3` in general,
//! which is the point of the example (experiment E5 quantifies the gap).

use crate::complement::{Complement, ComplementEntry};
use crate::error::{CoreError, Result};
use crate::ordering::{compare_on_states, ViewOrder};
use crate::psj::NamedView;
use dwc_relalg::{Catalog, DbState, Predicate, RaExpr, RelName};
use std::collections::BTreeMap;

/// Compares two complements of the same warehouse pointwise (entry by
/// entry, matched on the complemented base relation) on the given states.
/// `Less` means `a` stores less information than `b` — i.e. `a` is the
/// smaller complement (the ordering of Section 2 extended to sets).
pub fn compare_complements(
    a: &Complement,
    b: &Complement,
    states: &[DbState],
) -> Result<ViewOrder> {
    let mut all_le = true;
    let mut all_ge = true;
    let mut strict = false;
    for ea in a.entries() {
        let Some(eb) = b.entry_for(ea.base) else {
            return Err(CoreError::UnknownBase(ea.base));
        };
        match compare_on_states(&ea.definition, &eb.definition, states)? {
            ViewOrder::Equal => {}
            ViewOrder::Less => {
                all_ge = false;
                strict = true;
            }
            ViewOrder::Greater => {
                all_le = false;
                strict = true;
            }
            ViewOrder::Incomparable => {
                all_le = false;
                all_ge = false;
            }
        }
        if !all_le && !all_ge {
            return Ok(ViewOrder::Incomparable);
        }
    }
    Ok(match (all_le, all_ge, strict) {
        (true, true, _) => ViewOrder::Equal,
        (true, false, _) => ViewOrder::Less,
        (false, true, _) => ViewOrder::Greater,
        (false, false, _) => ViewOrder::Incomparable,
    })
}

/// Randomized minimality refutation: `candidate` is *not* minimal if some
/// other complement in `alternatives` is strictly smaller on the states.
/// Returns the index of a strictly smaller alternative, if any. (True
/// minimality quantifies over all complements and all states; this is the
/// refutation direction, which is the checkable one.)
pub fn find_smaller_complement(
    candidate: &Complement,
    alternatives: &[Complement],
    states: &[DbState],
) -> Result<Option<usize>> {
    for (i, alt) in alternatives.iter().enumerate() {
        if compare_complements(alt, candidate, states)? == ViewOrder::Less {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

/// Builds the Example 2.2 improved complement (repaired formula, see the
/// module docs) for a single-relation database `D = {R}` and views
/// `V1 = π_{Z1}(R)`, `V2 = π_{Z2}(R)`, `V3 = σ_cond(R)` where
/// `Z1 ∪ Z2 = attr(R)` and `cond` ranges over `Z1 ∩ Z2`.
///
/// The returned complement contains the single entry
/// `C'_R = (R ⋈ π_{Z1∩Z2}((V1 ⋈ V2) ∖ R)) ∖ V3` and the inverse
/// `R = C'_R ∪ V3 ∪ ((V1 ∖ π_{Z1}(C'_R ∪ V3)) ⋈ (V2 ∖ π_{Z2}(C'_R ∪ V3)))`.
pub fn example_22_complement(
    catalog: &Catalog,
    v1: &NamedView,
    v2: &NamedView,
    v3: &NamedView,
) -> Result<Complement> {
    let base = check_single_base(v1)?;
    if check_single_base(v2)? != base || check_single_base(v3)? != base {
        return Err(CoreError::NotPsj {
            detail: "all three views must range over the same single base relation".into(),
        });
    }
    let schema = catalog.schema(base).map_err(CoreError::from)?;
    let z1 = v1.header().clone();
    let z2 = v2.header().clone();
    if z1.union(&z2) != *schema.attrs() {
        return Err(CoreError::NotPsj {
            detail: format!("projections {z1} and {z2} must cover attr({base})"),
        });
    }
    let shared = z1.intersect(&z2);
    if shared.is_empty() {
        return Err(CoreError::NotPsj {
            detail: "the two projection views must share join attributes".into(),
        });
    }
    if !matches!(v1.view().selection(), Predicate::True)
        || !matches!(v2.view().selection(), Predicate::True)
    {
        return Err(CoreError::NotPsj {
            detail: "V1 and V2 must be pure projections".into(),
        });
    }
    if v3.header() != schema.attrs() || !v3.view().selection().attrs().is_subset(&shared) {
        return Err(CoreError::NotPsj {
            detail: format!(
                "V3 must be a full-width selection of {base} over the shared attributes {shared}"
            ),
        });
    }

    let name = RelName::new(&format!("Cx_{base}"));
    // Over warehouse names.
    let spurious =
        RaExpr::Base(v1.name()).join(RaExpr::Base(v2.name())); // V1 ⋈ V2 (reconstruction)
    let cv3 = RaExpr::Base(name).union(RaExpr::Base(v3.name()));
    let inverse_r = RaExpr::Base(name)
        .union(RaExpr::Base(v3.name()))
        .union(
            RaExpr::Base(v1.name())
                .diff(cv3.clone().project(z1.clone()))
                .join(RaExpr::Base(v2.name()).diff(cv3.project(z2.clone()))),
        );
    // Over D (for materialization).
    let defs: BTreeMap<RelName, RaExpr> = crate::psj::definitions(&[
        v1.clone(),
        v2.clone(),
        v3.clone(),
    ]);
    let spurious_d = spurious.substitute(&defs).diff(RaExpr::Base(base));
    let definition = RaExpr::Base(base)
        .join(spurious_d.project(shared))
        .diff(v3.to_expr())
        .simplified(catalog)?;

    let entries = vec![ComplementEntry {
        base,
        name,
        definition,
    }];
    let inverse: BTreeMap<RelName, RaExpr> = [(base, inverse_r)].into();
    Ok(Complement::new(entries, inverse))
}

fn check_single_base(v: &NamedView) -> Result<RelName> {
    match v.view().relations() {
        [r] => Ok(*r),
        _ => Err(CoreError::NotPsj {
            detail: format!("view {} must range over a single base relation", v.name()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic;
    use crate::psj::PsjView;
    use dwc_relalg::{rel, AttrSet};

    /// Example 2.2 setting: D = {R(A,B,C)}, V1 = π_AB(R), V2 = π_BC(R),
    /// V3 = σ_{B=5}(R).
    fn example_22() -> (Catalog, Vec<NamedView>) {
        let mut c = Catalog::new();
        c.add_schema("R", &["A", "B", "C"]).unwrap();
        let views = vec![
            NamedView::new("V1", PsjView::project_of(&c, "R", &["A", "B"]).unwrap()),
            NamedView::new("V2", PsjView::project_of(&c, "R", &["B", "C"]).unwrap()),
            NamedView::new(
                "V3",
                PsjView::select_of(&c, "R", Predicate::attr_eq("B", 5)).unwrap(),
            ),
        ];
        (c, views)
    }

    fn states() -> Vec<DbState> {
        let mk = |rows: Vec<(i64, i64, i64)>| {
            let mut d = DbState::new();
            d.insert_relation(
                "R",
                dwc_relalg::Relation::from_rows(
                    &["A", "B", "C"],
                    rows.into_iter().map(|(a, b, c)| {
                        vec![
                            dwc_relalg::Value::int(a),
                            dwc_relalg::Value::int(b),
                            dwc_relalg::Value::int(c),
                        ]
                    }),
                )
                .unwrap(),
            );
            d
        };
        vec![
            mk(vec![]),
            mk(vec![(1, 5, 1)]),
            mk(vec![(1, 2, 3)]),
            mk(vec![(1, 2, 3), (1, 2, 4)]),
            mk(vec![(1, 2, 3), (4, 2, 3)]),
            // the counterexample to the paper's printed formula:
            mk(vec![(1, 2, 3), (1, 2, 5), (9, 2, 5)]),
            mk(vec![(1, 5, 1), (1, 2, 3), (7, 2, 3), (7, 2, 8), (1, 9, 9)]),
            mk(vec![(1, 2, 3), (4, 5, 6), (4, 5, 7), (8, 5, 6)]),
        ]
    }

    #[test]
    fn improved_complement_is_a_complement() {
        let (c, views) = example_22();
        let comp = example_22_complement(&c, &views[0], &views[1], &views[2]).unwrap();
        for (i, d) in states().iter().enumerate() {
            assert_eq!(
                comp.verify_on(&c, &views, d).unwrap(),
                Ok(()),
                "failed on state #{i}"
            );
        }
    }

    #[test]
    fn papers_printed_formula_fails_on_counterexample() {
        // Demonstrates why the repaired formula projects onto B: with the
        // printed π_AB the recomputation loses (1,2,5).
        let (_c, views) = example_22();
        let defs = crate::psj::definitions(&views);
        let spurious_d = RaExpr::base("V1")
            .join(RaExpr::base("V2"))
            .substitute(&defs)
            .diff(RaExpr::base("R"));
        let printed = RaExpr::base("R")
            .join(spurious_d.project(AttrSet::from_names(&["A", "B"])))
            .diff(views[2].to_expr());
        let d = &states()[5];
        let cr = printed.eval(d).unwrap();
        // C'_R (printed) = {(9,2,5)} only.
        assert_eq!(cr, rel! { ["A", "B", "C"] => (9, 2, 5) });
        // Recomputation per the paper:
        let mut w = DbState::new();
        w.insert_relation("Cx", cr);
        w.insert_relation("V1", views[0].to_expr().eval(d).unwrap());
        w.insert_relation("V2", views[1].to_expr().eval(d).unwrap());
        w.insert_relation("V3", views[2].to_expr().eval(d).unwrap());
        let cv3 = RaExpr::base("Cx").union(RaExpr::base("V3"));
        let recomputed = RaExpr::base("Cx")
            .union(RaExpr::base("V3"))
            .union(
                RaExpr::base("V1")
                    .diff(cv3.clone().project_names(&["A", "B"]))
                    .join(RaExpr::base("V2").diff(cv3.project_names(&["B", "C"]))),
            )
            .eval(&w)
            .unwrap();
        let original = d.relation(RelName::new("R")).unwrap();
        assert_ne!(&recomputed, original, "the printed formula should fail here");
        assert!(recomputed.is_subset(original).unwrap());
        assert_eq!(original.len() - recomputed.len(), 1); // (1,2,5) is lost
    }

    #[test]
    fn improved_is_strictly_smaller_than_prop_22() {
        let (c, views) = example_22();
        let improved = example_22_complement(&c, &views[0], &views[1], &views[2]).unwrap();
        let prop22 = basic::complement_of(&c, &views).unwrap();
        let sts = states();
        assert_eq!(
            compare_complements(&improved, &prop22, &sts).unwrap(),
            ViewOrder::Less
        );
        assert_eq!(
            find_smaller_complement(&prop22, &[improved], &sts).unwrap(),
            Some(0)
        );
    }

    #[test]
    fn prop22_has_no_smaller_rival_among_trivial_ones() {
        let (c, views) = example_22();
        let prop22 = basic::complement_of(&c, &views).unwrap();
        // The trivial complement (copy R) is larger, not smaller.
        let trivial = Complement::new(
            vec![ComplementEntry {
                base: RelName::new("R"),
                name: RelName::new("CT_R"),
                definition: RaExpr::base("R"),
            }],
            [(RelName::new("R"), RaExpr::base("CT_R"))].into(),
        );
        let sts = states();
        assert_eq!(
            find_smaller_complement(&prop22, std::slice::from_ref(&trivial), &sts).unwrap(),
            None
        );
        assert_eq!(
            compare_complements(&trivial, &prop22, &sts).unwrap(),
            ViewOrder::Greater
        );
    }

    #[test]
    fn shape_validation() {
        let (c, views) = example_22();
        // V3 selection over non-shared attribute A is rejected.
        let bad_v3 = NamedView::new(
            "V3b",
            PsjView::select_of(&c, "R", Predicate::attr_eq("A", 1)).unwrap(),
        );
        assert!(example_22_complement(&c, &views[0], &views[1], &bad_v3).is_err());
        // Projections not covering attr(R) are rejected.
        let narrow = NamedView::new("Vn", PsjView::project_of(&c, "R", &["A"]).unwrap());
        assert!(example_22_complement(&c, &narrow, &views[1], &views[2]).is_err());
        // V1 with a selection is rejected.
        let mut c2 = Catalog::new();
        c2.add_schema("R", &["A", "B", "C"]).unwrap();
        let sel_view = NamedView::new(
            "Vs",
            PsjView::new(
                &c2,
                vec![RelName::new("R")],
                Predicate::attr_eq("B", 1),
                AttrSet::from_names(&["A", "B"]),
            )
            .unwrap(),
        );
        assert!(example_22_complement(&c2, &sel_view, &views[1], &views[2]).is_err());
    }
}
