//! The paper's view analysis notation.
//!
//! For a warehouse `V` over `D` and a base relation `R` with key `K`:
//!
//! * `V_R` — the views whose definition involves `R`,
//! * `V_K` — the views of `V_R` whose projection contains `K`,
//! * pseudo-views — for every inclusion dependency `π_X(R_i) ⊆ π_X(R)`
//!   with `K ⊆ X`, the expression `π_X(R_i)` acts as a view over `R`
//!   whose schema contains `R`'s key,
//! * `V_K^ind = V_K ∪ {pseudo-views}` — the candidate sources for
//!   extension-join covers (Theorem 2.2).

use crate::psj::NamedView;
use dwc_relalg::{AttrSet, Catalog, InclusionDep, RaExpr, RelName};
use std::fmt;

/// One candidate source for covering the attributes of a base relation:
/// either a warehouse view containing the key, or an IND-derived
/// pseudo-view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverSource {
    /// Index into the warehouse view slice.
    View(usize),
    /// `π_X(dep.from)` justified by `π_X(dep.from) ⊆ π_X(dep.to)`.
    Pseudo(InclusionDep),
}

impl CoverSource {
    /// The schema of the source: the view's projection `Z_i`, or the
    /// pseudo-view's attribute set `X`.
    pub fn attrs(&self, views: &[NamedView]) -> AttrSet {
        match self {
            CoverSource::View(i) => views[*i].header().clone(),
            CoverSource::Pseudo(dep) => dep.attrs.clone(),
        }
    }

    /// The attributes of `target` this source can contribute.
    pub fn coverage(&self, views: &[NamedView], target_attrs: &AttrSet) -> AttrSet {
        self.attrs(views).intersect(target_attrs)
    }

    /// An expression for the source over *names*: warehouse view names
    /// for views, the base relation name for pseudo-views. The inverse
    /// builder later substitutes the pseudo-view's base reference by that
    /// base's own inverse (footnote 3 of the paper).
    pub fn to_name_expr(&self, views: &[NamedView]) -> RaExpr {
        match self {
            CoverSource::View(i) => RaExpr::Base(views[*i].name()),
            CoverSource::Pseudo(dep) => RaExpr::Base(dep.from).project(dep.attrs.clone()),
        }
    }

    /// An expression for the source over `D`: the view's definition for
    /// views, `π_X(R_i)` for pseudo-views. Used when *materializing*
    /// complements directly against base data.
    pub fn to_d_expr(&self, views: &[NamedView]) -> RaExpr {
        match self {
            CoverSource::View(i) => views[*i].to_expr(),
            CoverSource::Pseudo(dep) => RaExpr::Base(dep.from).project(dep.attrs.clone()),
        }
    }

    /// A short label for diagnostics.
    pub fn label(&self, views: &[NamedView]) -> String {
        match self {
            CoverSource::View(i) => views[*i].name().as_str().to_owned(),
            CoverSource::Pseudo(dep) => format!("pi_{}({})", dep.attrs, dep.from),
        }
    }
}

impl fmt::Display for CoverSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverSource::View(i) => write!(f, "V#{i}"),
            CoverSource::Pseudo(dep) => write!(f, "pi_{}({})", dep.attrs, dep.from),
        }
    }
}

/// `V_R`: indices of the views whose definition involves `r`.
pub fn views_involving(views: &[NamedView], r: RelName) -> Vec<usize> {
    views
        .iter()
        .enumerate()
        .filter(|(_, v)| v.view().involves(r))
        .map(|(i, _)| i)
        .collect()
}

/// `V_K`: indices of the views of `V_R` whose projection contains `r`'s
/// key. Empty when `r` has no declared key.
pub fn vk(catalog: &Catalog, views: &[NamedView], r: RelName) -> Vec<usize> {
    let Ok(schema) = catalog.schema(r) else {
        return Vec::new();
    };
    let Some(key) = schema.key() else {
        return Vec::new();
    };
    views_involving(views, r)
        .into_iter()
        .filter(|&i| key.is_subset(views[i].header()))
        .collect()
}

/// The IND-derived pseudo-views usable for `r`: dependencies
/// `π_X(R_i) ⊆ π_X(r)` whose `X` contains `r`'s key.
pub fn pseudo_views(catalog: &Catalog, r: RelName) -> Vec<InclusionDep> {
    let Ok(schema) = catalog.schema(r) else {
        return Vec::new();
    };
    let Some(key) = schema.key() else {
        return Vec::new();
    };
    catalog
        .inclusion_deps_into(r)
        .filter(|d| key.is_subset(&d.attrs))
        .cloned()
        .collect()
}

/// `V_K^ind`: all cover sources for `r` — key-containing views plus
/// IND-derived pseudo-views.
pub fn vk_ind(catalog: &Catalog, views: &[NamedView], r: RelName) -> Vec<CoverSource> {
    let mut out: Vec<CoverSource> = vk(catalog, views, r)
        .into_iter()
        .map(CoverSource::View)
        .collect();
    out.extend(pseudo_views(catalog, r).into_iter().map(CoverSource::Pseudo));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psj::PsjView;
    use dwc_relalg::Predicate;

    /// Example 2.3: R1(A,B,C), R2(A,C,D), R3(A,B); A key of each;
    /// π_AB(R3) ⊆ π_AB(R1), π_AC(R2) ⊆ π_AC(R1);
    /// V1 = R1 ⋈ R2, V2 = R3, V3 = π_AB(R1), V4 = π_AC(R1).
    fn example_23() -> (Catalog, Vec<NamedView>) {
        let mut c = Catalog::new();
        c.add_schema_with_key("R1", &["A", "B", "C"], &["A"]).unwrap();
        c.add_schema_with_key("R2", &["A", "C", "D"], &["A"]).unwrap();
        c.add_schema_with_key("R3", &["A", "B"], &["A"]).unwrap();
        c.add_inclusion_dep(InclusionDep::new("R3", "R1", AttrSet::from_names(&["A", "B"])))
            .unwrap();
        c.add_inclusion_dep(InclusionDep::new("R2", "R1", AttrSet::from_names(&["A", "C"])))
            .unwrap();
        let views = vec![
            NamedView::new("V1", PsjView::join_of(&c, &["R1", "R2"]).unwrap()),
            NamedView::new("V2", PsjView::of_base(&c, "R3").unwrap()),
            NamedView::new("V3", PsjView::project_of(&c, "R1", &["A", "B"]).unwrap()),
            NamedView::new("V4", PsjView::project_of(&c, "R1", &["A", "C"]).unwrap()),
        ];
        (c, views)
    }

    #[test]
    fn views_involving_matches_paper() {
        let (_, views) = example_23();
        assert_eq!(views_involving(&views, RelName::new("R1")), vec![0, 2, 3]);
        assert_eq!(views_involving(&views, RelName::new("R2")), vec![0]);
        assert_eq!(views_involving(&views, RelName::new("R3")), vec![1]);
    }

    #[test]
    fn vk1_is_v1_v3_v4() {
        // Paper: V_{K_1} = {V1, V3, V4}.
        let (c, views) = example_23();
        assert_eq!(vk(&c, &views, RelName::new("R1")), vec![0, 2, 3]);
    }

    #[test]
    fn vk_ind_adds_both_pseudo_views() {
        // Paper: V_{K_1}^ind = {V1, V3, V4, π_AB(R3), π_AC(R2)}.
        let (c, views) = example_23();
        let sources = vk_ind(&c, &views, RelName::new("R1"));
        assert_eq!(sources.len(), 5);
        let pseudo: Vec<String> = sources
            .iter()
            .filter(|s| matches!(s, CoverSource::Pseudo(_)))
            .map(|s| s.label(&views))
            .collect();
        // Pseudo-views appear in catalog declaration order.
        assert_eq!(pseudo, vec!["pi_{A, B}(R3)", "pi_{A, C}(R2)"]);
    }

    #[test]
    fn no_key_means_no_sources() {
        let mut c = Catalog::new();
        c.add_schema("R", &["A", "B"]).unwrap();
        let views = vec![NamedView::new("V", PsjView::of_base(&c, "R").unwrap())];
        assert!(vk(&c, &views, RelName::new("R")).is_empty());
        assert!(vk_ind(&c, &views, RelName::new("R")).is_empty());
        assert!(pseudo_views(&c, RelName::new("R")).is_empty());
    }

    #[test]
    fn vk_requires_key_in_projection() {
        let mut c = Catalog::new();
        c.add_schema_with_key("R", &["A", "B"], &["A"]).unwrap();
        // π_B(R) does not contain the key A.
        let views = vec![NamedView::new("V", PsjView::project_of(&c, "R", &["B"]).unwrap())];
        assert_eq!(views_involving(&views, RelName::new("R")), vec![0]);
        assert!(vk(&c, &views, RelName::new("R")).is_empty());
    }

    #[test]
    fn pseudo_requires_key_within_x() {
        let mut c = Catalog::new();
        c.add_schema_with_key("R", &["A", "B"], &["A", "B"]).unwrap();
        c.add_schema("S", &["A", "B"]).unwrap();
        // X = {A} does not contain the key {A, B} of R.
        c.add_inclusion_dep(InclusionDep::new("S", "R", AttrSet::from_names(&["A"])))
            .unwrap();
        assert!(pseudo_views(&c, RelName::new("R")).is_empty());
    }

    #[test]
    fn cover_source_exprs() {
        let (c, views) = example_23();
        let sources = vk_ind(&c, &views, RelName::new("R1"));
        // V1 over names is just its name; over D it is the definition.
        let v1 = &sources[0];
        assert_eq!(v1.to_name_expr(&views), RaExpr::base("V1"));
        assert_eq!(v1.to_d_expr(&views), views[0].to_expr());
        // Pseudo-views are the same over names and over D at this stage.
        let p = sources
            .iter()
            .find(|s| matches!(s, CoverSource::Pseudo(d) if d.from == RelName::new("R2")))
            .unwrap();
        let expected = RaExpr::base("R2").project(AttrSet::from_names(&["A", "C"]));
        assert_eq!(p.to_name_expr(&views), expected);
        assert_eq!(p.to_d_expr(&views), expected);
        // Coverage of R1's attributes.
        assert_eq!(
            p.coverage(&views, &AttrSet::from_names(&["A", "B", "C"])),
            AttrSet::from_names(&["A", "C"])
        );
        let _ = Predicate::True; // silence unused import in some cfgs
    }
}
