//! Complement computation under constraints (Theorem 2.2).
//!
//! For every base relation `R_i` (with key `K_i` and incoming acyclic
//! inclusion dependencies) the algorithm computes
//!
//! ```text
//! R̄_i    = ⋃ { π_{attr(R_i)}(V_j) | V_j ∈ V_{R_i} }            (π = ∅ if not applicable)
//! R̄_i^ir = ⋃ { π_{attr(R_i)}(⋈_{S ∈ Y} S) | Y ∈ C_{R_i}^ind }  (extension joins along K_i)
//! C_i    = R_i ∖ (R̄_i ∪ R̄_i^ir)                                (Equation (3))
//! R_i    = C_i ∪ R̄_i ∪ R̄_i^ir                                  (Equation (4), the inverse)
//! ```
//!
//! where `C_{R_i}^ind` enumerates the minimal covers of `attr(R_i)` by
//! `V_{K_i}^ind` (key-containing views plus IND-derived pseudo-views).
//! In the inverse expressions, a pseudo-view `π_X(R_j)` is replaced by
//! `π_X` of `R_j`'s *own inverse* (footnote 3 / Example 2.3 continued);
//! acyclicity of the dependencies makes this substitution well-founded.
//!
//! Setting [`ComplementOptions::use_keys`]`/`[`ComplementOptions::use_inds`]
//! to `false` disables the corresponding machinery; with both disabled the
//! algorithm degenerates to Proposition 2.2 (see [`crate::basic`]). This
//! is the ablation axis of experiment E6.

use crate::analysis::{views_involving, vk_ind, CoverSource};
use crate::complement::{complement_name, Complement, ComplementEntry};
use crate::covers::{covers_of, DEFAULT_MAX_SOURCES};
use crate::error::Result;
use crate::psj::{definitions, NamedView};
use dwc_relalg::{Catalog, Predicate, RaExpr, RelName};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs for the complement computation.
#[derive(Clone, Debug)]
pub struct ComplementOptions {
    /// Prefix for generated complement-view names (default `C_`).
    pub prefix: String,
    /// Maximum number of cover sources per relation (the cover search is
    /// exponential in this number).
    pub max_cover_sources: usize,
    /// Exploit key constraints (extension-join covers).
    pub use_keys: bool,
    /// Exploit inclusion dependencies (pseudo-views).
    pub use_inds: bool,
    /// Statically detect provably-empty complements (Examples 2.3/2.4)
    /// and emit `∅` definitions for them.
    pub detect_empty: bool,
}

impl Default for ComplementOptions {
    fn default() -> Self {
        ComplementOptions {
            prefix: "C_".to_owned(),
            max_cover_sources: DEFAULT_MAX_SOURCES,
            use_keys: true,
            use_inds: true,
            detect_empty: true,
        }
    }
}

impl ComplementOptions {
    /// Options disabling all constraint machinery — Proposition 2.2.
    pub fn unconstrained() -> Self {
        ComplementOptions {
            use_keys: false,
            use_inds: false,
            detect_empty: false,
            ..ComplementOptions::default()
        }
    }

    /// Options using keys but not inclusion dependencies.
    pub fn keys_only() -> Self {
        ComplementOptions {
            use_inds: false,
            ..ComplementOptions::default()
        }
    }
}

/// Computes a complement of `views` w.r.t. `catalog` under the default
/// options (Theorem 2.2 with all machinery enabled).
pub fn complement_of(catalog: &Catalog, views: &[NamedView]) -> Result<Complement> {
    complement_with(catalog, views, &ComplementOptions::default())
}

/// Computes a complement with explicit options.
pub fn complement_with(
    catalog: &Catalog,
    views: &[NamedView],
    opts: &ComplementOptions,
) -> Result<Complement> {
    catalog.validate()?;
    let mut taken: BTreeSet<RelName> = catalog.relation_names().collect();
    for v in views {
        if !taken.insert(v.name()) {
            return Err(crate::error::CoreError::NameCollision(v.name()));
        }
    }
    let view_defs = definitions(views);

    // Per relation: the recovered expression (R̄ ∪ R̄^ir) over warehouse
    // view names (with pseudo-views still referring to base names), plus
    // bookkeeping for the static-emptiness analysis.
    struct PerRelation {
        comp_name: RelName,
        recovered_names: Option<RaExpr>,
        provably_complete: bool,
    }
    let mut per: BTreeMap<RelName, PerRelation> = BTreeMap::new();

    for schema in catalog.schemas() {
        let base = schema.name();
        let base_attrs = schema.attrs().clone();
        let comp_name = complement_name(&opts.prefix, base, &mut taken)?;

        // --- R̄: Proposition 2.2 terms. π_{attr(R)}(V_j), empty (and
        // thus omitted) unless attr(R) ⊆ Z_j.
        let mut terms: Vec<RaExpr> = Vec::new();
        let mut provably_complete = false;
        for i in views_involving(views, base) {
            let v = &views[i];
            if base_attrs.is_subset(v.header()) {
                let term = RaExpr::Base(v.name()).project(base_attrs.clone());
                if !terms.contains(&term) {
                    terms.push(term);
                }
                if opts.detect_empty && opts.use_inds && view_join_is_total(catalog, v, base) {
                    provably_complete = true;
                }
            }
        }

        // --- R̄^ir: extension-join covers over V_K^ind.
        if opts.use_keys && schema.key().is_some() {
            let mut sources = vk_ind(catalog, views, base);
            if !opts.use_inds {
                sources.retain(|s| matches!(s, CoverSource::View(_)));
            }
            let covers = covers_of(views, base, &base_attrs, &sources, opts.max_cover_sources)?;
            for cover in &covers {
                // Covers are non-empty by construction; skip defensively if
                // an empty one ever appears rather than panicking.
                let Some(join) = RaExpr::join_all(
                    cover.iter().map(|&s| sources[s].to_name_expr(views)),
                ) else {
                    continue;
                };
                let term = join.project(base_attrs.clone());
                if !terms.contains(&term) {
                    terms.push(term);
                }
                if opts.detect_empty && cover_is_lossless(views, base, &sources, cover) {
                    provably_complete = true;
                }
            }
        }

        let recovered_names = RaExpr::union_all(terms);
        per.insert(
            base,
            PerRelation {
                comp_name,
                recovered_names,
                provably_complete,
            },
        );
    }

    // --- Complement definitions over D: C_i = R_i ∖ recovered, with view
    // names inlined (pseudo-views already refer to base relations).
    let mut entries = Vec::new();
    for schema in catalog.schemas() {
        let base = schema.name();
        let info = &per[&base];
        let definition = if info.provably_complete {
            RaExpr::empty(schema.attrs().clone())
        } else {
            match &info.recovered_names {
                None => RaExpr::Base(base),
                Some(rec) => {
                    let rec_d = rec.substitute(&view_defs);
                    RaExpr::Base(base).diff(rec_d)
                }
            }
        };
        let definition = definition.simplified(catalog)?;
        entries.push(ComplementEntry {
            base,
            name: info.comp_name,
            definition,
        });
    }

    // --- Inverse expressions (Equation (4)) over warehouse names, built
    // in IND-source-first order so that pseudo-view base references can
    // be substituted by the source's already-built inverse.
    let mut inverse: BTreeMap<RelName, RaExpr> = BTreeMap::new();
    let mut order = catalog.ind_topological_order()?;
    order.reverse(); // sources of inclusion dependencies first
    for base in order {
        let info = &per[&base];
        let mut term = info.recovered_names.as_ref().map(|rec| rec.substitute(&inverse));
        if !info.provably_complete {
            let c = RaExpr::Base(info.comp_name);
            term = Some(match term {
                None => c,
                Some(t) => c.union(t),
            });
        }
        let expr = term.unwrap_or({
            // No views involve the relation and its complement is a full
            // copy — recovered solely from the complement view.
            RaExpr::Base(info.comp_name)
        });
        inverse.insert(base, expr);
    }

    let complement = Complement::new(entries, inverse.clone());
    // Simplify the inverse expressions now that headers for complement
    // names are resolvable.
    let simplified: BTreeMap<RelName, RaExpr> = {
        let resolver = complement.resolver(catalog, views);
        inverse
            .iter()
            .map(|(b, e)| Ok((*b, e.simplified(&resolver)?)))
            .collect::<Result<_>>()?
    };
    let entries = complement.entries().to_vec();
    Ok(Complement::new(entries, simplified))
}

/// Static sufficient condition for `π_{attr(R)}(V) = R` (Example 2.4):
/// the view joins exactly `R` and one partner `S`, keeps all of `R`'s
/// attributes, has no selection, and an inclusion dependency
/// `π_X(R) ⊆ π_X(S)` over the full common attribute set `X` guarantees
/// every `R` tuple a join partner.
///
/// Exposed so the static analyzer (`dwc-analyze`) can certify the same
/// condition without computing a complement.
pub fn view_join_is_total(catalog: &Catalog, view: &NamedView, base: RelName) -> bool {
    let v = view.view();
    if !matches!(v.selection(), Predicate::True) || v.relations().len() != 2 {
        return false;
    }
    let Some(&partner) = v.relations().iter().find(|&&r| r != base) else {
        return false;
    };
    let (Ok(base_schema), Ok(partner_schema)) = (catalog.schema(base), catalog.schema(partner))
    else {
        return false;
    };
    let common = base_schema.attrs().intersect(partner_schema.attrs());
    if common.is_empty() {
        // Cartesian product: total iff partner non-empty, not static.
        return false;
    }
    catalog
        .inclusion_deps()
        .iter()
        .any(|d| d.from == base && d.to == partner && common.is_subset(&d.attrs))
}

/// Static sufficient condition for `π_{attr(R)}(⋈ Y) = R` (Example 2.3):
/// every source of the cover is a selection-free projection view of `R`
/// alone. Joining such views along the key re-extends every tuple of `R`.
///
/// Exposed so the static analyzer (`dwc-analyze`) can certify the same
/// condition without computing a complement.
pub fn cover_is_lossless(
    views: &[NamedView],
    base: RelName,
    sources: &[CoverSource],
    cover: &[usize],
) -> bool {
    cover.iter().all(|&s| match &sources[s] {
        CoverSource::View(i) => {
            let v = views[*i].view();
            v.relations() == [base] && matches!(v.selection(), Predicate::True)
        }
        CoverSource::Pseudo(_) => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psj::PsjView;
    use dwc_relalg::{rel, AttrSet, DbState, InclusionDep};

    fn fig1_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_schema("Sale", &["item", "clerk"]).unwrap();
        c.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
        c
    }

    fn fig1_views(c: &Catalog) -> Vec<NamedView> {
        vec![NamedView::new(
            "Sold",
            PsjView::join_of(c, &["Sale", "Emp"]).unwrap(),
        )]
    }

    fn fig1_state() -> DbState {
        let mut d = DbState::new();
        d.insert_relation(
            "Sale",
            rel! { ["item", "clerk"] => ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") },
        );
        d.insert_relation(
            "Emp",
            rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
        );
        d
    }

    #[test]
    fn example_11_complement() {
        // C_Emp = Emp ∖ π_{clerk,age}(Sold), C_Sale = Sale ∖ π_{item,clerk}(Sold).
        let c = fig1_catalog();
        let views = fig1_views(&c);
        let comp = complement_of(&c, &views).unwrap();
        assert_eq!(comp.entries().len(), 2);
        let db = fig1_state();
        let m = comp.materialize(&db).unwrap();
        assert_eq!(
            m.relation(RelName::new("C_Emp")).unwrap(),
            &rel! { ["clerk", "age"] => ("Paula", 32) }
        );
        assert!(m.relation(RelName::new("C_Sale")).unwrap().is_empty());
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));
    }

    #[test]
    fn example_24_referential_integrity_makes_c_sale_provably_empty() {
        // With π_clerk(Sale) ⊆ π_clerk(Emp), every sale joins: C_Sale ≡ ∅.
        let mut c = fig1_catalog();
        c.add_foreign_key("Sale", "Emp", &["clerk"]).unwrap();
        let views = fig1_views(&c);
        let comp = complement_of(&c, &views).unwrap();
        let c_sale = comp.entry_for(RelName::new("Sale")).unwrap();
        assert!(c_sale.is_provably_empty());
        let c_emp = comp.entry_for(RelName::new("Emp")).unwrap();
        assert!(!c_emp.is_provably_empty());
        // Inverse of Sale references Sold only.
        let inv = comp.inverse_of(RelName::new("Sale")).unwrap();
        assert_eq!(inv.to_string(), "pi[clerk, item](Sold)");
        // Verified on a state satisfying the FK (the Figure 1 state does).
        let db = fig1_state();
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));
    }

    /// Example 2.3 (continued): the full scenario with keys and INDs.
    fn example_23() -> (Catalog, Vec<NamedView>) {
        let mut c = Catalog::new();
        c.add_schema_with_key("R1", &["A", "B", "C"], &["A"]).unwrap();
        c.add_schema_with_key("R2", &["A", "C", "D"], &["A"]).unwrap();
        c.add_schema_with_key("R3", &["A", "B"], &["A"]).unwrap();
        c.add_inclusion_dep(InclusionDep::new("R3", "R1", AttrSet::from_names(&["A", "B"])))
            .unwrap();
        c.add_inclusion_dep(InclusionDep::new("R2", "R1", AttrSet::from_names(&["A", "C"])))
            .unwrap();
        let views = vec![
            NamedView::new("V1", PsjView::join_of(&c, &["R1", "R2"]).unwrap()),
            NamedView::new("V2", PsjView::of_base(&c, "R3").unwrap()),
            NamedView::new("V3", PsjView::project_of(&c, "R1", &["A", "B"]).unwrap()),
            NamedView::new("V4", PsjView::project_of(&c, "R1", &["A", "C"]).unwrap()),
        ];
        (c, views)
    }

    fn example_23_state() -> DbState {
        // Satisfies: A key everywhere; π_AB(R3) ⊆ π_AB(R1); π_AC(R2) ⊆ π_AC(R1).
        let mut d = DbState::new();
        d.insert_relation(
            "R1",
            rel! { ["A", "B", "C"] => (1, 10, 100), (2, 20, 200), (3, 30, 300) },
        );
        d.insert_relation("R2", rel! { ["A", "C", "D"] => (1, 100, 7), (3, 300, 9) });
        d.insert_relation("R3", rel! { ["A", "B"] => (2, 20) });
        d
    }

    #[test]
    fn example_23_key_makes_c1_empty() {
        // With A a key for R1 and V = {V1..V4}: R1 = V3 ⋈ V4 (lossless),
        // so C_R1 ≡ ∅ (the paper's "continued" discussion).
        let (c, views) = example_23();
        let comp = complement_of(&c, &views).unwrap();
        assert!(comp.entry_for(RelName::new("R1")).unwrap().is_provably_empty());
        // R3 is copied entirely into V2, so its complement evaluates empty
        // (R3 ∖ V2 — not *provably* empty, but empty on every state).
        let db = example_23_state();
        let m = comp.materialize(&db).unwrap();
        assert!(m.relation(comp.entry_for(RelName::new("R3")).unwrap().name).unwrap().is_empty());
        // C_R2 = R2 ∖ π_ACD(V1): empty here since every R2 tuple joins R1.
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));
    }

    #[test]
    fn example_23_continued_subset_of_views() {
        // V' = {V1, V3}: C_R2 = R2 ∖ π_ACD(V1), C_R3 = R3 (no views left),
        // and R1's inverse uses the pseudo-view π_AC(R2), substituted by
        // R2's inverse.
        let (c, views_all) = example_23();
        let views: Vec<NamedView> = vec![views_all[0].clone(), views_all[2].clone()];
        let comp = complement_of(&c, &views).unwrap();

        // R1 is NOT provably complete (cover {V3, π_AC(R2)} uses a pseudo).
        let e1 = comp.entry_for(RelName::new("R1")).unwrap();
        assert!(!e1.is_provably_empty());

        // The inverse of R1 must reference warehouse names only.
        let inv1 = comp.inverse_of(RelName::new("R1")).unwrap();
        for name in inv1.base_relations() {
            assert!(
                name.as_str().starts_with("C_") || name.as_str().starts_with('V'),
                "inverse leaks base relation {name}"
            );
        }

        let db = example_23_state();
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));

        // On this state R̄1 ∪ R̄1^ir recovers (1,10,100), (3,30,300) via V1
        // and (2,20,200) via V3 ⋈ π_AC(inv R2)? (2,·) is not in R2, so the
        // pseudo contributes nothing for A=2 — C_R1 must hold (2,20,200).
        let m = comp.materialize(&db).unwrap();
        let c1 = m.relation(e1.name).unwrap();
        assert_eq!(c1, &rel! { ["A", "B", "C"] => (2, 20, 200) });
    }

    #[test]
    fn relation_without_views_is_fully_copied() {
        let mut c = fig1_catalog();
        c.add_schema("Extra", &["x", "y"]).unwrap();
        let views = fig1_views(&c);
        let comp = complement_of(&c, &views).unwrap();
        let e = comp.entry_for(RelName::new("Extra")).unwrap();
        assert_eq!(e.definition, RaExpr::base("Extra"));
        assert_eq!(
            comp.inverse_of(RelName::new("Extra")).unwrap(),
            &RaExpr::base("C_Extra")
        );
        let mut db = fig1_state();
        db.insert_relation("Extra", rel! { ["x", "y"] => (1, 2) });
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));
    }

    #[test]
    fn name_collision_detected() {
        let c = fig1_catalog();
        // A view named like a complement-to-be.
        let views = vec![
            NamedView::new("C_Emp", PsjView::of_base(&c, "Emp").unwrap()),
            NamedView::new("Sold", PsjView::join_of(&c, &["Sale", "Emp"]).unwrap()),
        ];
        let err = complement_of(&c, &views).unwrap_err();
        assert!(matches!(err, crate::error::CoreError::NameCollision(_)));
        // Duplicate view names.
        let views = vec![
            NamedView::new("V", PsjView::of_base(&c, "Emp").unwrap()),
            NamedView::new("V", PsjView::of_base(&c, "Sale").unwrap()),
        ];
        assert!(complement_of(&c, &views).is_err());
    }

    #[test]
    fn unconstrained_options_ignore_keys() {
        // Same scenario as example_23_key_makes_c1_empty, but with
        // Proposition 2.2 options R1's complement is NOT provably empty.
        let (c, views) = example_23();
        let comp =
            complement_with(&c, &views, &ComplementOptions::unconstrained()).unwrap();
        assert!(!comp.entry_for(RelName::new("R1")).unwrap().is_provably_empty());
        // It is still a complement.
        let db = example_23_state();
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));
    }

    #[test]
    fn keys_only_options_skip_pseudo_views() {
        let (c, views_all) = example_23();
        let views: Vec<NamedView> = vec![views_all[0].clone(), views_all[2].clone()];
        let comp = complement_with(&c, &views, &ComplementOptions::keys_only()).unwrap();
        // Without pseudo-views no inverse may reference R2 via C substitution
        // chains, and V3 alone cannot cover {A,B,C}; R̄1^ir has only {V1}.
        let db = example_23_state();
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));
        // C_R1 is strictly larger than with INDs: it must hold (2,20,200)
        // AND nothing else is recovered beyond V1's tuples.
        let m = comp.materialize(&db).unwrap();
        let e1 = comp.entry_for(RelName::new("R1")).unwrap();
        assert_eq!(
            m.relation(e1.name).unwrap(),
            &rel! { ["A", "B", "C"] => (2, 20, 200) }
        );
    }

    #[test]
    fn update_independence_roundtrip_after_source_change() {
        // Complements stay correct when recomputed on a changed state.
        let c = fig1_catalog();
        let views = fig1_views(&c);
        let comp = complement_of(&c, &views).unwrap();
        let mut db = fig1_state();
        let sale = db.relation(RelName::new("Sale")).unwrap().clone();
        db.insert_relation(
            "Sale",
            sale.union(&rel! { ["item", "clerk"] => ("Computer", "Paula") }).unwrap(),
        );
        assert_eq!(comp.verify_on(&c, &views, &db).unwrap(), Ok(()));
    }
}
