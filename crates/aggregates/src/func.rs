//! Aggregate functions.

use dwc_relalg::Attr;
use std::fmt;

/// An aggregate function over the tuples of one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of tuples in the group.
    Count,
    /// Sum of an integer attribute.
    Sum(Attr),
    /// Arithmetic mean of an integer attribute (rendered as a double).
    Avg(Attr),
    /// Minimum of an attribute (any value type; the total [`dwc_relalg::Value`] order).
    Min(Attr),
    /// Maximum of an attribute.
    Max(Attr),
}

impl AggFunc {
    /// The input attribute, if the function has one.
    pub fn input(&self) -> Option<Attr> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(a) | AggFunc::Avg(a) | AggFunc::Min(a) | AggFunc::Max(a) => Some(*a),
        }
    }

    /// True for the order-statistics functions, which need a per-group
    /// value multiset to survive deletions incrementally.
    pub fn needs_multiset(&self) -> bool {
        matches!(self, AggFunc::Min(_) | AggFunc::Max(_))
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Count => write!(f, "count(*)"),
            AggFunc::Sum(a) => write!(f, "sum({a})"),
            AggFunc::Avg(a) => write!(f, "avg({a})"),
            AggFunc::Min(a) => write!(f, "min({a})"),
            AggFunc::Max(a) => write!(f, "max({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        assert_eq!(AggFunc::Count.input(), None);
        assert_eq!(AggFunc::Sum(Attr::new("qty")).input(), Some(Attr::new("qty")));
        assert!(!AggFunc::Count.needs_multiset());
        assert!(!AggFunc::Sum(Attr::new("x")).needs_multiset());
        assert!(!AggFunc::Avg(Attr::new("x")).needs_multiset());
        assert_eq!(AggFunc::Avg(Attr::new("q")).to_string(), "avg(q)");
        assert!(AggFunc::Min(Attr::new("x")).needs_multiset());
        assert!(AggFunc::Max(Attr::new("x")).needs_multiset());
        assert_eq!(AggFunc::Count.to_string(), "count(*)");
        assert_eq!(AggFunc::Min(Attr::new("p")).to_string(), "min(p)");
    }
}
