//! Summary-table specifications.
//!
//! A summary table is `SELECT group_by, agg₁, …, aggₙ FROM source GROUP BY
//! group_by` over one stored warehouse relation (typically a fact view).
//! The header of the summary relation is `group_by ∪ {output columns}`.

use crate::error::{AggError, Result};
use crate::func::AggFunc;
use dwc_relalg::{Attr, AttrSet, RelName};

/// A summary-table specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummarySpec {
    name: RelName,
    source: RelName,
    group_by: AttrSet,
    columns: Vec<(Attr, AggFunc)>,
}

impl SummarySpec {
    /// Builds and validates a specification against the source header.
    pub fn new(
        name: impl Into<RelName>,
        source: impl Into<RelName>,
        source_header: &AttrSet,
        group_by: &[&str],
        columns: Vec<(&str, AggFunc)>,
    ) -> Result<SummarySpec> {
        let source = source.into();
        let group_by = AttrSet::from_names(group_by);
        if !group_by.is_subset(source_header) {
            return Err(AggError::BadGroupBy { source });
        }
        let mut out_cols: Vec<(Attr, AggFunc)> = Vec::with_capacity(columns.len());
        let mut seen = group_by.clone();
        for (out, func) in columns {
            let out = Attr::new(out);
            if seen.contains(out) {
                return Err(AggError::ColumnCollision(out));
            }
            seen = seen.with(out);
            if let Some(input) = func.input() {
                if !source_header.contains(input) {
                    return Err(AggError::UnknownInput { source, attr: input });
                }
            }
            out_cols.push((out, func));
        }
        Ok(SummarySpec {
            name: name.into(),
            source,
            group_by,
            columns: out_cols,
        })
    }

    /// The summary table's name.
    pub fn name(&self) -> RelName {
        self.name
    }

    /// The stored warehouse relation the summary aggregates.
    pub fn source(&self) -> RelName {
        self.source
    }

    /// The grouping attributes.
    pub fn group_by(&self) -> &AttrSet {
        &self.group_by
    }

    /// The output columns `(name, function)` in declaration order.
    pub fn columns(&self) -> &[(Attr, AggFunc)] {
        &self.columns
    }

    /// The summary relation's header.
    pub fn header(&self) -> AttrSet {
        self.columns
            .iter()
            .fold(self.group_by.clone(), |acc, (a, _)| acc.with(*a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> AttrSet {
        AttrSet::from_names(&["brand", "partkey", "price", "qty"])
    }

    #[test]
    fn valid_spec() {
        let s = SummarySpec::new(
            "SalesByBrand",
            "FactSales",
            &header(),
            &["brand"],
            vec![
                ("n", AggFunc::Count),
                ("total_qty", AggFunc::Sum(Attr::new("qty"))),
                ("min_price", AggFunc::Min(Attr::new("price"))),
            ],
        )
        .unwrap();
        assert_eq!(s.name(), RelName::new("SalesByBrand"));
        assert_eq!(s.source(), RelName::new("FactSales"));
        assert_eq!(
            s.header(),
            AttrSet::from_names(&["brand", "n", "total_qty", "min_price"])
        );
        assert_eq!(s.columns().len(), 3);
    }

    #[test]
    fn rejects_bad_group_by() {
        let err = SummarySpec::new("S", "F", &header(), &["ghost"], vec![("n", AggFunc::Count)])
            .unwrap_err();
        assert!(matches!(err, AggError::BadGroupBy { .. }));
    }

    #[test]
    fn rejects_unknown_input() {
        let err = SummarySpec::new(
            "S",
            "F",
            &header(),
            &["brand"],
            vec![("t", AggFunc::Sum(Attr::new("ghost")))],
        )
        .unwrap_err();
        assert!(matches!(err, AggError::UnknownInput { .. }));
    }

    #[test]
    fn rejects_column_collisions() {
        // output colliding with group-by
        let err = SummarySpec::new("S", "F", &header(), &["brand"], vec![("brand", AggFunc::Count)])
            .unwrap_err();
        assert!(matches!(err, AggError::ColumnCollision(_)));
        // duplicate outputs
        let err = SummarySpec::new(
            "S",
            "F",
            &header(),
            &["brand"],
            vec![("n", AggFunc::Count), ("n", AggFunc::Sum(Attr::new("qty")))],
        )
        .unwrap_err();
        assert!(matches!(err, AggError::ColumnCollision(_)));
    }

    #[test]
    fn empty_group_by_is_a_grand_total() {
        let s = SummarySpec::new("Total", "F", &header(), &[], vec![("n", AggFunc::Count)])
            .unwrap();
        assert!(s.group_by().is_empty());
        assert_eq!(s.header(), AttrSet::from_names(&["n"]));
    }
}
