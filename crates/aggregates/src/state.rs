//! Materialized summary state with incremental maintenance.
//!
//! Per group the state keeps the tuple count, running sums, and — for
//! `MIN`/`MAX` — an order-statistics multiset (value → multiplicity).
//! This is the auxiliary data of the summary-delta method: with it,
//! *every* maintenance step, including deletions hitting the current
//! minimum, costs `O(|Δ| log n)`; without it, `MIN`/`MAX` deletions would
//! force per-group rescans of the fact view.
//!
//! Groups whose count reaches zero disappear (set-semantics `GROUP BY`:
//! an empty source yields an empty summary, also for empty grouping
//! lists).

use crate::error::{AggError, Result};
use crate::func::AggFunc;
use crate::spec::SummarySpec;
use dwc_relalg::{AttrSet, Relation, Tuple, Value};
use std::collections::BTreeMap;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Acc {
    Count,
    Sum(i64),
    Order(BTreeMap<Value, usize>),
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Group {
    count: u64,
    accs: Vec<Acc>,
}

/// A materialized, incrementally maintainable summary table.
#[derive(Clone, Debug)]
pub struct SummaryState {
    spec: SummarySpec,
    /// Position of each group-by attribute in the source header.
    group_positions: Vec<usize>,
    /// Position of each aggregate input in the source header.
    input_positions: Vec<Option<usize>>,
    groups: BTreeMap<Tuple, Group>,
}

impl SummaryState {
    /// Initializes the summary from the current source contents.
    pub fn init(spec: SummarySpec, source: &Relation) -> Result<SummaryState> {
        let group_positions = spec
            .group_by()
            .positions_in(source.attrs())
            .ok_or(AggError::BadGroupBy { source: spec.source() })?;
        let input_positions = spec
            .columns()
            .iter()
            .map(|(_, f)| match f.input() {
                None => Ok(None),
                Some(a) => source
                    .attrs()
                    .index_of(a)
                    .map(Some)
                    .ok_or(AggError::UnknownInput { source: spec.source(), attr: a }),
            })
            .collect::<Result<Vec<_>>>()?;
        let mut state = SummaryState {
            spec,
            group_positions,
            input_positions,
            groups: BTreeMap::new(),
        };
        for t in source.iter() {
            state.add(&t)?;
        }
        Ok(state)
    }

    /// The specification.
    pub fn spec(&self) -> &SummarySpec {
        &self.spec
    }

    /// Number of groups currently present.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Size of the auxiliary structure in entries (multiset nodes +
    /// groups) — the storage price of delta-proportional `MIN`/`MAX`.
    pub fn auxiliary_size(&self) -> usize {
        self.groups
            .values()
            .map(|g| {
                1 + g
                    .accs
                    .iter()
                    .map(|a| match a {
                        Acc::Order(m) => m.len(),
                        _ => 0,
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    /// Applies net source deltas (`inserted ∩ old_source = ∅`,
    /// `deleted ⊆ old_source` — exactly what
    /// [`dwc_warehouse::incremental::StoredDelta`] carries).
    pub fn apply_delta(&mut self, inserted: &Relation, deleted: &Relation) -> Result<()> {
        for t in deleted.iter() {
            self.remove(&t)?;
        }
        for t in inserted.iter() {
            self.add(&t)?;
        }
        Ok(())
    }

    fn add(&mut self, t: &Tuple) -> Result<()> {
        let key = t.project(&self.group_positions);
        let group = self.groups.entry(key).or_insert_with(|| Group {
            count: 0,
            accs: self
                .spec
                .columns()
                .iter()
                .map(|(_, f)| match f {
                    AggFunc::Count => Acc::Count,
                    AggFunc::Sum(_) | AggFunc::Avg(_) => Acc::Sum(0),
                    AggFunc::Min(_) | AggFunc::Max(_) => Acc::Order(BTreeMap::new()),
                })
                .collect(),
        });
        group.count += 1;
        for (i, acc) in group.accs.iter_mut().enumerate() {
            let input = self.input_positions[i].map(|p| t.get(p));
            match acc {
                Acc::Count => {}
                Acc::Sum(s) => {
                    let v = input.expect("SUM has an input");
                    let Some(i) = v.as_int() else {
                        return Err(AggError::NonNumeric {
                            attr: self.spec.columns()[i].1.input().expect("SUM input"),
                        });
                    };
                    *s += i;
                }
                Acc::Order(m) => {
                    *m.entry(input.expect("MIN/MAX has an input").clone()).or_insert(0) += 1;
                }
            }
        }
        Ok(())
    }

    fn remove(&mut self, t: &Tuple) -> Result<()> {
        let key = t.project(&self.group_positions);
        let Some(group) = self.groups.get_mut(&key) else {
            return Err(AggError::PhantomDeletion { summary: self.spec.name() });
        };
        if group.count == 0 {
            return Err(AggError::PhantomDeletion { summary: self.spec.name() });
        }
        group.count -= 1;
        for (i, acc) in group.accs.iter_mut().enumerate() {
            let input = self.input_positions[i].map(|p| t.get(p));
            match acc {
                Acc::Count => {}
                Acc::Sum(s) => {
                    let v = input.expect("SUM has an input");
                    let Some(i) = v.as_int() else {
                        return Err(AggError::NonNumeric {
                            attr: self.spec.columns()[i].1.input().expect("SUM input"),
                        });
                    };
                    *s -= i;
                }
                Acc::Order(m) => {
                    let v = input.expect("MIN/MAX has an input");
                    match m.get_mut(v) {
                        Some(n) if *n > 1 => *n -= 1,
                        Some(_) => {
                            m.remove(v);
                        }
                        None => {
                            return Err(AggError::PhantomDeletion {
                                summary: self.spec.name(),
                            })
                        }
                    }
                }
            }
        }
        if group.count == 0 {
            self.groups.remove(&key);
        }
        Ok(())
    }

    /// Renders the summary as a relation over `spec.header()`.
    pub fn relation(&self) -> Relation {
        let header = self.spec.header();
        // For each output position (sorted header), where the value comes
        // from: the i-th group-by attribute or the j-th aggregate column.
        enum Src {
            Group(usize),
            Col(usize),
        }
        let layout: Vec<Src> = header
            .iter()
            .map(|a| {
                if let Some(i) = self.spec.group_by().index_of(a) {
                    Src::Group(i)
                } else {
                    let j = self
                        .spec
                        .columns()
                        .iter()
                        .position(|(c, _)| *c == a)
                        .expect("header attr is group-by or column");
                    Src::Col(j)
                }
            })
            .collect();
        let mut out = Relation::empty(header);
        for (key, group) in &self.groups {
            let values: Vec<Value> = layout
                .iter()
                .map(|src| match src {
                    Src::Group(i) => key.get(*i).clone(),
                    Src::Col(j) => match (&group.accs[*j], &self.spec.columns()[*j].1) {
                        (Acc::Count, _) => Value::int(group.count as i64),
                        (Acc::Sum(s), AggFunc::Avg(_)) => {
                            Value::double(*s as f64 / group.count as f64)
                        }
                        (Acc::Sum(s), _) => Value::int(*s),
                        (Acc::Order(m), AggFunc::Min(_)) => {
                            m.keys().next().expect("non-empty group").clone()
                        }
                        (Acc::Order(m), AggFunc::Max(_)) => {
                            m.keys().next_back().expect("non-empty group").clone()
                        }
                        (Acc::Order(_), f) => unreachable!("order acc for {f}"),
                    },
                })
                .collect();
            out.insert(Tuple::new(values)).expect("layout matches header");
        }
        out
    }

    /// Recomputes the summary from scratch (oracle for tests and
    /// experiments).
    pub fn materialize(spec: &SummarySpec, source: &Relation) -> Result<Relation> {
        Ok(SummaryState::init(spec.clone(), source)?.relation())
    }

    /// The summary header (for building resolvers).
    pub fn header(&self) -> AttrSet {
        self.spec.header()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwc_relalg::{rel, Attr};

    fn spec() -> SummarySpec {
        SummarySpec::new(
            "ByBrand",
            "F",
            &AttrSet::from_names(&["brand", "price", "qty"]),
            &["brand"],
            vec![
                ("n", AggFunc::Count),
                ("total", AggFunc::Sum(Attr::new("qty"))),
                ("cheapest", AggFunc::Min(Attr::new("price"))),
                ("dearest", AggFunc::Max(Attr::new("price"))),
            ],
        )
        .unwrap()
    }

    fn source() -> Relation {
        rel! { ["brand", "price", "qty"] =>
            ("A", 10, 1), ("A", 30, 2), ("A", 20, 4),
            ("B", 50, 3) }
    }

    #[test]
    fn init_and_render() {
        let s = SummaryState::init(spec(), &source()).unwrap();
        assert_eq!(s.group_count(), 2);
        let r = s.relation();
        // header sorted: {brand, cheapest, dearest, n, total}
        assert_eq!(
            r,
            rel! { ["brand", "cheapest", "dearest", "n", "total"] =>
                ("A", 10, 30, 3, 7), ("B", 50, 50, 1, 3) }
        );
    }

    #[test]
    fn insert_updates_all_aggregates() {
        let mut s = SummaryState::init(spec(), &source()).unwrap();
        let ins = rel! { ["brand", "price", "qty"] => ("A", 5, 10), ("C", 7, 1) };
        let del = Relation::empty(source().attrs().clone());
        s.apply_delta(&ins, &del).unwrap();
        assert_eq!(
            s.relation(),
            rel! { ["brand", "cheapest", "dearest", "n", "total"] =>
                ("A", 5, 30, 4, 17), ("B", 50, 50, 1, 3), ("C", 7, 7, 1, 1) }
        );
    }

    #[test]
    fn delete_current_min_without_rescan() {
        let mut s = SummaryState::init(spec(), &source()).unwrap();
        let del = rel! { ["brand", "price", "qty"] => ("A", 10, 1) };
        let ins = Relation::empty(source().attrs().clone());
        s.apply_delta(&ins, &del).unwrap();
        // min moves from 10 to 20
        assert_eq!(
            s.relation(),
            rel! { ["brand", "cheapest", "dearest", "n", "total"] =>
                ("A", 20, 30, 2, 6), ("B", 50, 50, 1, 3) }
        );
    }

    #[test]
    fn group_death_and_rebirth() {
        let mut s = SummaryState::init(spec(), &source()).unwrap();
        let del = rel! { ["brand", "price", "qty"] => ("B", 50, 3) };
        s.apply_delta(&Relation::empty(source().attrs().clone()), &del).unwrap();
        assert_eq!(s.group_count(), 1);
        let ins = rel! { ["brand", "price", "qty"] => ("B", 60, 1) };
        s.apply_delta(&ins, &Relation::empty(source().attrs().clone())).unwrap();
        assert_eq!(s.group_count(), 2);
        assert!(s
            .relation()
            .contains(&rel! { ["brand", "cheapest", "dearest", "n", "total"] => ("B", 60, 60, 1, 1) }
                .iter()
                .next()
                .unwrap()
                .clone()));
    }

    #[test]
    fn phantom_deletion_detected() {
        let mut s = SummaryState::init(spec(), &source()).unwrap();
        let del = rel! { ["brand", "price", "qty"] => ("Z", 1, 1) };
        let err = s
            .apply_delta(&Relation::empty(source().attrs().clone()), &del)
            .unwrap_err();
        assert!(matches!(err, AggError::PhantomDeletion { .. }));
        // same group, wrong value
        let mut s = SummaryState::init(spec(), &source()).unwrap();
        let del = rel! { ["brand", "price", "qty"] => ("A", 999, 1) };
        let err = s
            .apply_delta(&Relation::empty(source().attrs().clone()), &del)
            .unwrap_err();
        assert!(matches!(err, AggError::PhantomDeletion { .. }));
    }

    #[test]
    fn non_numeric_sum_detected() {
        let spec = SummarySpec::new(
            "S",
            "F",
            &AttrSet::from_names(&["brand", "price", "qty"]),
            &["brand"],
            vec![("t", AggFunc::Sum(Attr::new("price")))],
        )
        .unwrap();
        let bad = rel! { ["brand", "price", "qty"] => ("A", "not-a-number", 1) };
        assert!(matches!(
            SummaryState::init(spec, &bad),
            Err(AggError::NonNumeric { .. })
        ));
    }

    #[test]
    fn avg_maintained_incrementally() {
        let spec = SummarySpec::new(
            "S",
            "F",
            &AttrSet::from_names(&["brand", "price", "qty"]),
            &["brand"],
            vec![("mean", AggFunc::Avg(Attr::new("price")))],
        )
        .unwrap();
        let mut s = SummaryState::init(spec.clone(), &source()).unwrap();
        // brand A: (10 + 30 + 20) / 3 = 20
        assert_eq!(
            s.relation(),
            rel! { ["brand", "mean"] => ("A", 20.0), ("B", 50.0) }
        );
        // delete one A row; mean moves to (30 + 20)/2 = 25
        let del = rel! { ["brand", "price", "qty"] => ("A", 10, 1) };
        s.apply_delta(&Relation::empty(source().attrs().clone()), &del).unwrap();
        assert_eq!(
            s.relation(),
            rel! { ["brand", "mean"] => ("A", 25.0), ("B", 50.0) }
        );
        assert_eq!(
            s.relation(),
            SummaryState::materialize(
                &spec,
                &source().difference(&del).unwrap()
            )
            .unwrap()
        );
    }

    #[test]
    fn grand_total_group() {
        let spec = SummarySpec::new(
            "Total",
            "F",
            &AttrSet::from_names(&["brand", "price", "qty"]),
            &[],
            vec![("n", AggFunc::Count), ("t", AggFunc::Sum(Attr::new("qty")))],
        )
        .unwrap();
        let s = SummaryState::init(spec.clone(), &source()).unwrap();
        assert_eq!(s.relation(), rel! { ["n", "t"] => (4, 10) });
        // empty source => empty summary (no zero row)
        let empty = Relation::empty(source().attrs().clone());
        let s = SummaryState::init(spec, &empty).unwrap();
        assert!(s.relation().is_empty());
    }

    #[test]
    fn incremental_matches_recompute_on_random_streams() {
        use dwc_relalg::gen::SplitMix64;
        let mut rng = SplitMix64::new(99);
        let mut src = source();
        let mut s = SummaryState::init(spec(), &src).unwrap();
        for _ in 0..200 {
            // random net update: delete one existing tuple or insert a new one
            let delete = rng.chance(1, 2) && !src.is_empty();
            let (ins, del) = if delete {
                let idx = rng.index(src.len());
                let victim = src.iter().nth(idx).unwrap().clone();
                let mut d = Relation::empty(src.attrs().clone());
                d.insert(victim).unwrap();
                (Relation::empty(src.attrs().clone()), d)
            } else {
                let mut i = Relation::empty(src.attrs().clone());
                i.insert(Tuple::new(vec![
                    Value::str(["A", "B", "C"][rng.index(3)]),
                    Value::int(rng.below(100) as i64),
                    Value::int(rng.below(10) as i64),
                ]))
                .unwrap();
                if src.is_subset(&src).unwrap() && src.contains(&i.iter().next().unwrap()) {
                    continue; // not a net insertion; skip
                }
                (i, Relation::empty(src.attrs().clone()))
            };
            s.apply_delta(&ins, &del).unwrap();
            src = src.difference(&del).unwrap().union(&ins).unwrap();
            assert_eq!(
                s.relation(),
                SummaryState::materialize(s.spec(), &src).unwrap()
            );
        }
        assert!(s.auxiliary_size() >= s.group_count());
    }
}
