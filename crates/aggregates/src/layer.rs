//! The aggregating integrator: Figure 1's integrator plus summary tables.
//!
//! Wires the net fact-view deltas produced by the complement-based
//! maintenance plans into the summary-delta maintenance of
//! [`SummaryState`]. The full chain stays source-free:
//!
//! ```text
//! source deltas ──▶ maintenance plans ──▶ fact-view deltas ──▶ summaries
//! ```

use crate::error::{AggError, Result};
use crate::spec::SummarySpec;
use crate::state::SummaryState;
use dwc_relalg::{RaExpr, RelName, Relation, Update};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use std::collections::BTreeMap;

/// An integrator that additionally maintains summary tables over stored
/// warehouse relations.
#[derive(Clone, Debug)]
pub struct AggregatingIntegrator {
    inner: Integrator,
    summaries: BTreeMap<RelName, SummaryState>,
}

impl AggregatingIntegrator {
    /// Wraps an already-loaded integrator and initializes the summaries
    /// from its current state.
    pub fn new(inner: Integrator, specs: Vec<SummarySpec>) -> Result<AggregatingIntegrator> {
        let mut summaries = BTreeMap::new();
        for spec in specs {
            let source = inner
                .state()
                .relation(spec.source())
                .map_err(|_| AggError::UnknownSource(spec.source()))?;
            let name = spec.name();
            if summaries.contains_key(&name) || inner.state().contains(name) {
                return Err(AggError::ColumnCollision(dwc_relalg::Attr::new(
                    name.as_str(),
                )));
            }
            summaries.insert(name, SummaryState::init(spec, source)?);
        }
        Ok(AggregatingIntegrator { inner, summaries })
    }

    /// Convenience: initial load + summaries in one step.
    pub fn initial_load(
        aug: dwc_warehouse::AugmentedWarehouse,
        site: &SourceSite,
        specs: Vec<SummarySpec>,
    ) -> Result<AggregatingIntegrator> {
        let inner = Integrator::initial_load(aug, site)?;
        AggregatingIntegrator::new(inner, specs)
    }

    /// The wrapped integrator.
    pub fn integrator(&self) -> &Integrator {
        &self.inner
    }

    /// Processes a source delta report: maintains the warehouse, then
    /// cascades the net fact-view deltas into every affected summary.
    pub fn on_report(&mut self, report: &Update) -> Result<()> {
        let stored_deltas = self.inner.on_report_detailed(report)?;
        for d in &stored_deltas {
            for state in self.summaries.values_mut() {
                if state.spec().source() == d.name {
                    state.apply_delta(&d.inserted, &d.deleted)?;
                }
            }
        }
        Ok(())
    }

    /// The current contents of a summary table.
    pub fn summary(&self, name: RelName) -> Option<Relation> {
        self.summaries.get(&name).map(SummaryState::relation)
    }

    /// Iterates the summary states.
    pub fn summaries(&self) -> impl Iterator<Item = &SummaryState> + '_ {
        self.summaries.values()
    }

    /// Answers a source query at the warehouse (pass-through).
    pub fn answer(&mut self, q: &RaExpr) -> Result<Relation> {
        Ok(self.inner.answer(q)?)
    }

    /// Oracle: recompute every summary from the current warehouse state
    /// and compare (used by tests and the experiments).
    pub fn verify_summaries(&self) -> Result<std::result::Result<(), RelName>> {
        for (name, state) in &self.summaries {
            let source = self
                .inner
                .state()
                .relation(state.spec().source())
                .map_err(AggError::from)?;
            let expected = SummaryState::materialize(state.spec(), source)?;
            if state.relation() != expected {
                return Ok(Err(*name));
            }
        }
        Ok(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::AggFunc;
    use dwc_relalg::{rel, Attr, Catalog, DbState};
    use dwc_warehouse::WarehouseSpec;

    fn setup() -> (SourceSite, AggregatingIntegrator) {
        let mut c = Catalog::new();
        c.add_schema("Sale", &["item", "clerk", "amount"]).unwrap();
        c.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).unwrap();
        let spec = WarehouseSpec::parse(c.clone(), &[("Sold", "Sale join Emp")]).unwrap();
        let aug = spec.augment().unwrap();

        let mut db = DbState::new();
        db.insert_relation(
            "Sale",
            rel! { ["item", "clerk", "amount"] =>
                ("TV", "Mary", 3), ("VCR", "Mary", 5), ("PC", "John", 7) },
        );
        db.insert_relation(
            "Emp",
            rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
        );
        let site = SourceSite::new(c, db).unwrap();

        let sold_header =
            dwc_relalg::AttrSet::from_names(&["item", "clerk", "amount", "age"]);
        let by_clerk = SummarySpec::new(
            "SalesByClerk",
            "Sold",
            &sold_header,
            &["clerk"],
            vec![
                ("n", AggFunc::Count),
                ("total", AggFunc::Sum(Attr::new("amount"))),
                ("biggest", AggFunc::Max(Attr::new("amount"))),
            ],
        )
        .unwrap();
        let agg = AggregatingIntegrator::initial_load(aug, &site, vec![by_clerk]).unwrap();
        (site, agg)
    }

    #[test]
    fn initial_summary_contents() {
        let (_, agg) = setup();
        let s = agg.summary(RelName::new("SalesByClerk")).unwrap();
        assert_eq!(
            s,
            rel! { ["clerk", "biggest", "n", "total"] =>
                ("Mary", 5, 2, 8), ("John", 7, 1, 7) }
        );
        assert_eq!(agg.verify_summaries().unwrap(), Ok(()));
    }

    #[test]
    fn cascaded_maintenance_stays_source_free_and_exact() {
        let (mut site, mut agg) = setup();
        site.reset_stats();

        // A new sale by Paula: enters Sold via the complement machinery,
        // then cascades into the summary.
        let report = site
            .apply_update(&Update::inserting(
                "Sale",
                rel! { ["item", "clerk", "amount"] => ("Mac", "Paula", 9) },
            ))
            .unwrap();
        agg.on_report(&report).unwrap();
        assert_eq!(site.stats().queries, 0);
        let s = agg.summary(RelName::new("SalesByClerk")).unwrap();
        assert!(s.contains(
            &rel! { ["clerk", "biggest", "n", "total"] => ("Paula", 9, 1, 9) }
                .iter()
                .next()
                .unwrap()
                .clone()
        ));
        assert_eq!(agg.verify_summaries().unwrap(), Ok(()));

        // Deleting Mary's biggest sale must move MAX down.
        let report = site
            .apply_update(&Update::deleting(
                "Sale",
                rel! { ["item", "clerk", "amount"] => ("VCR", "Mary", 5) },
            ))
            .unwrap();
        agg.on_report(&report).unwrap();
        let s = agg.summary(RelName::new("SalesByClerk")).unwrap();
        assert!(s.contains(
            &rel! { ["clerk", "biggest", "n", "total"] => ("Mary", 3, 1, 3) }
                .iter()
                .next()
                .unwrap()
                .clone()
        ));
        assert_eq!(site.stats().queries, 0);
        assert_eq!(agg.verify_summaries().unwrap(), Ok(()));
    }

    #[test]
    fn deleting_an_employee_kills_the_group() {
        let (mut site, mut agg) = setup();
        // Remove John from Emp: his Sold tuples vanish, group dies.
        let report = site
            .apply_update(&Update::deleting(
                "Emp",
                rel! { ["clerk", "age"] => ("John", 25) },
            ))
            .unwrap();
        agg.on_report(&report).unwrap();
        let s = agg.summary(RelName::new("SalesByClerk")).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(agg.verify_summaries().unwrap(), Ok(()));
    }

    #[test]
    fn unknown_source_rejected() {
        let (site, agg) = setup();
        let spec = SummarySpec::new(
            "Bad",
            "Ghost",
            &dwc_relalg::AttrSet::from_names(&["x"]),
            &[],
            vec![("n", AggFunc::Count)],
        )
        .unwrap();
        let err =
            AggregatingIntegrator::new(agg.integrator().clone(), vec![spec]).unwrap_err();
        assert!(matches!(err, AggError::UnknownSource(_)));
        drop(site);
    }

    #[test]
    fn long_stream_stays_exact() {
        let (mut site, mut agg) = setup();
        let mut rng = dwc_relalg::gen::SplitMix64::new(5);
        let clerks = ["Mary", "John", "Paula"];
        for i in 0..60u64 {
            let report = if rng.chance(1, 3) {
                // delete an arbitrary sale if any
                let sale =
                    site.oracle_state().relation(RelName::new("Sale")).unwrap().clone();
                let victim = sale.iter().next();
                match victim {
                    Some(victim) => {
                        let mut d = Relation::empty(sale.attrs().clone());
                        d.insert(victim).unwrap();
                        site.apply_update(&Update::deleting("Sale", d)).unwrap()
                    }
                    None => continue,
                }
            } else {
                site.apply_update(&Update::inserting(
                    "Sale",
                    rel! { ["item", "clerk", "amount"] =>
                        (format!("item{i}").as_str(),
                         clerks[rng.index(3)],
                         (1 + rng.below(10)) as i64) },
                ))
                .unwrap()
            };
            agg.on_report(&report).unwrap();
            assert_eq!(agg.verify_summaries().unwrap(), Ok(()), "diverged at step {i}");
        }
    }
}
