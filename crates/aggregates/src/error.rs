//! Error type of the aggregate layer.

use dwc_relalg::{Attr, RelName, RelalgError};
use std::fmt;

/// Convenience alias.
pub type Result<T, E = AggError> = std::result::Result<T, E>;

/// Errors raised by summary-table specification and maintenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggError {
    /// Substrate error.
    Relalg(RelalgError),
    /// Warehouse-layer error (when driving the aggregating integrator).
    Warehouse(dwc_warehouse::WarehouseError),
    /// An aggregate input attribute is missing from the source header.
    UnknownInput {
        /// The source view the summary reads.
        source: RelName,
        /// The missing input attribute.
        attr: Attr,
    },
    /// An output column collides with a group-by attribute or another
    /// output column.
    ColumnCollision(Attr),
    /// The group-by attributes are not a subset of the source header.
    BadGroupBy {
        /// The source view the summary reads.
        source: RelName,
    },
    /// `SUM` encountered a non-integer value at runtime.
    NonNumeric {
        /// The attribute holding the non-integer value.
        attr: Attr,
    },
    /// Internal invariant: a deletion arrived for a value the group never
    /// contained (deltas must be net deltas of the source relation).
    PhantomDeletion {
        /// The summary table whose group state was inconsistent.
        summary: RelName,
    },
    /// A summary references a relation the warehouse does not store.
    UnknownSource(RelName),
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::Relalg(e) => write!(f, "{e}"),
            AggError::Warehouse(e) => write!(f, "{e}"),
            AggError::UnknownInput { source, attr } => {
                write!(f, "aggregate input `{attr}` is not an attribute of `{source}`")
            }
            AggError::ColumnCollision(a) => {
                write!(f, "summary column `{a}` collides with another column")
            }
            AggError::BadGroupBy { source } => {
                write!(f, "group-by attributes are not within attr({source})")
            }
            AggError::NonNumeric { attr } => {
                write!(f, "SUM over non-integer values in `{attr}`")
            }
            AggError::PhantomDeletion { summary } => {
                write!(f, "summary `{summary}` received a deletion it never saw inserted")
            }
            AggError::UnknownSource(r) => {
                write!(f, "summary source `{r}` is not a stored warehouse relation")
            }
        }
    }
}

impl std::error::Error for AggError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AggError::Relalg(e) => Some(e),
            AggError::Warehouse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelalgError> for AggError {
    fn from(e: RelalgError) -> Self {
        AggError::Relalg(e)
    }
}

impl From<dwc_warehouse::WarehouseError> for AggError {
    fn from(e: dwc_warehouse::WarehouseError) -> Self {
        AggError::Warehouse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = AggError::NonNumeric { attr: Attr::new("price") };
        assert!(e.to_string().contains("price"));
        assert!(e.source().is_none());
        let e: AggError = RelalgError::UnknownRelation(RelName::new("X")).into();
        assert!(e.source().is_some());
    }
}
