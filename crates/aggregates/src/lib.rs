#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # dwc-aggregates — summary tables over warehouse fact views
//!
//! Section 5 of *Complements for Data Warehouses* splits the OLAP layer
//! in two: the PSJ **fact views** carry the complement machinery (and are
//! maintained source-free, `dwc-warehouse`), while **materialized
//! aggregate queries** over them are maintained by dedicated summary-table
//! algorithms (the paper points at Griffin/Libkin [8], Gupta et al. [12]
//! and Mumick/Quass/Mumick's summary-delta method [17]).
//!
//! This crate supplies that second layer:
//!
//! * [`func`] — the aggregate functions (`COUNT`, `SUM`, `MIN`, `MAX`),
//! * [`spec`] — summary-table specifications: group-by attributes plus
//!   aggregate columns over one stored warehouse relation,
//! * [`state`] — materialized summary state with per-group auxiliary
//!   structure (counts, sums, order-statistics multisets) making *all*
//!   maintenance — including `MIN`/`MAX` under deletions — proportional
//!   to the delta,
//! * [`layer`] — [`AggregatingIntegrator`](layer::AggregatingIntegrator):
//!   the Figure 1 integrator extended with summary tables, fed by the
//!   net per-view deltas the maintenance plans already compute.
//!
//! The chain is therefore: source deltas → (complement-based plans) →
//! fact-view deltas → (summary-delta maintenance) → summary tables; no
//! step queries the sources.
//!
//! ## Quick example
//!
//! ```
//! use dwc_aggregates::{AggFunc, SummarySpec, SummaryState};
//! use dwc_relalg::{rel, Attr, AttrSet, Relation};
//!
//! let header = AttrSet::from_names(&["brand", "price"]);
//! let spec = SummarySpec::new(
//!     "ByBrand", "Fact", &header, &["brand"],
//!     vec![("n", AggFunc::Count), ("cheapest", AggFunc::Min(Attr::new("price")))],
//! )?;
//!
//! let fact = rel! { ["brand", "price"] => ("A", 30), ("A", 10), ("B", 50) };
//! let mut summary = SummaryState::init(spec, &fact)?;
//! assert_eq!(summary.relation(),
//!     rel! { ["brand", "cheapest", "n"] => ("A", 10, 2), ("B", 50, 1) });
//!
//! // Deleting the current minimum costs O(log n), not a rescan.
//! let del = rel! { ["brand", "price"] => ("A", 10) };
//! summary.apply_delta(&Relation::empty(fact.attrs().clone()), &del)?;
//! assert_eq!(summary.relation(),
//!     rel! { ["brand", "cheapest", "n"] => ("A", 30, 1), ("B", 50, 1) });
//! # Ok::<(), dwc_aggregates::AggError>(())
//! ```

pub mod error;
pub mod func;
pub mod layer;
pub mod spec;
pub mod state;

pub use error::{AggError, Result};
pub use func::AggFunc;
pub use layer::AggregatingIntegrator;
pub use spec::SummarySpec;
pub use state::SummaryState;
