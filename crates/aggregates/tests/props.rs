//! Property tests: incremental summary maintenance equals recomputation
//! for arbitrary specs, sources and net delta streams.

use dwc_aggregates::{AggFunc, SummarySpec, SummaryState};
use dwc_relalg::{Attr, AttrSet, Relation, Tuple, Value};
use dwc_testkit::prop::Runner;
use dwc_testkit::{tk_ensure, tk_ensure_eq, SplitMix64};

const ATTRS: [&str; 3] = ["g", "h", "v"];

fn header() -> AttrSet {
    AttrSet::from_names(&ATTRS)
}

type Rows = Vec<(i64, i64, i64)>;

fn relation_from(rows: &[(i64, i64, i64)]) -> Relation {
    let mut r = Relation::empty(header());
    for &(g, h, v) in rows {
        r.insert(Tuple::new(vec![Value::int(g), Value::int(h), Value::int(v)]))
            .expect("arity");
    }
    r
}

fn gen_rows(rng: &mut SplitMix64, max: usize) -> Rows {
    let n = rng.index(max);
    (0..n)
        .map(|_| (rng.i64_in(0, 4), rng.i64_in(0, 4), rng.i64_in(-5, 10)))
        .collect()
}

/// The shrinkable wire format of a spec: group-by selector plus three
/// aggregate toggles.
type SpecRaw = (u8, bool, bool, bool);

fn gen_spec(rng: &mut SplitMix64) -> SpecRaw {
    (rng.below(4) as u8, rng.bool(), rng.bool(), rng.bool())
}

/// A random spec: group by a subset of {g, h}, aggregate v (and count).
fn spec_from((group_sel, with_sum, with_min, with_max): SpecRaw) -> SummarySpec {
    let group: Vec<&str> = match group_sel % 4 {
        0 => vec![],
        1 => vec!["g"],
        2 => vec!["h"],
        _ => vec!["g", "h"],
    };
    let mut cols: Vec<(&str, AggFunc)> = vec![("n", AggFunc::Count)];
    if with_sum {
        cols.push(("s", AggFunc::Sum(Attr::new("v"))));
    }
    if with_min {
        cols.push(("lo", AggFunc::Min(Attr::new("v"))));
    }
    if with_max {
        cols.push(("hi", AggFunc::Max(Attr::new("v"))));
    }
    SummarySpec::new("S", "F", &header(), &group, cols).expect("valid spec")
}

/// init(source).relation() == materialize(source).
#[test]
fn init_equals_materialize() {
    Runner::new("init_equals_materialize").cases(128).run(
        |rng| (gen_spec(rng), gen_rows(rng, 30)),
        |(spec_raw, rows)| {
            let spec = spec_from(*spec_raw);
            let source = relation_from(rows);
            let state = SummaryState::init(spec.clone(), &source).expect("initializes");
            tk_ensure_eq!(
                state.relation(),
                SummaryState::materialize(&spec, &source).expect("materializes")
            );
            Ok(())
        },
    );
}

/// A stream of random net deltas keeps the incremental state equal to
/// recomputation at every step.
#[test]
fn stream_of_net_deltas_stays_exact() {
    Runner::new("stream_of_net_deltas_stays_exact").cases(64).run(
        |rng| {
            let steps = rng.usize_in(1, 8);
            (
                gen_spec(rng),
                gen_rows(rng, 20),
                (0..steps)
                    .map(|_| {
                        let picks = rng.index(4);
                        (
                            gen_rows(rng, 5),
                            (0..picks).map(|_| rng.index(64)).collect::<Vec<usize>>(),
                        )
                    })
                    .collect::<Vec<(Rows, Vec<usize>)>>(),
            )
        },
        |(spec_raw, initial, steps)| {
            let spec = spec_from(*spec_raw);
            let mut source = relation_from(initial);
            let mut state = SummaryState::init(spec.clone(), &source).expect("initializes");
            for (ins_rows, del_picks) in steps {
                // net insertions: rows not already present
                let ins = relation_from(ins_rows)
                    .difference(&source)
                    .expect("same header");
                // net deletions: picked from the current source
                let current: Vec<Tuple> = source.iter().collect();
                let mut del = Relation::empty(header());
                for pick in del_picks {
                    if !current.is_empty() {
                        del.insert(current[pick % current.len()].clone()).expect("arity");
                    }
                }
                // a tuple cannot be deleted and inserted in the same net delta
                let ins = ins.difference(&del).expect("same header");
                state.apply_delta(&ins, &del).expect("maintains");
                source = source.difference(&del).expect("ok").union(&ins).expect("ok");
                tk_ensure_eq!(
                    state.relation(),
                    SummaryState::materialize(&spec, &source).expect("materializes")
                );
            }
            Ok(())
        },
    );
}

/// Deleting everything empties the summary; re-inserting restores it.
#[test]
fn drain_and_refill() {
    Runner::new("drain_and_refill").cases(128).run(
        |rng| (gen_spec(rng), gen_rows(rng, 20)),
        |(spec_raw, rows)| {
            let spec = spec_from(*spec_raw);
            let source = relation_from(rows);
            let mut state = SummaryState::init(spec.clone(), &source).expect("initializes");
            let empty = Relation::empty(header());
            state.apply_delta(&empty, &source).expect("drains");
            tk_ensure_eq!(state.group_count(), 0);
            tk_ensure!(state.relation().is_empty());
            state.apply_delta(&source, &empty).expect("refills");
            tk_ensure_eq!(
                state.relation(),
                SummaryState::materialize(&spec, &source).expect("materializes")
            );
            Ok(())
        },
    );
}
