//! Property tests: incremental summary maintenance equals recomputation
//! for arbitrary specs, sources and net delta streams.

use dwc_aggregates::{AggFunc, SummarySpec, SummaryState};
use dwc_relalg::{Attr, AttrSet, Relation, Tuple, Value};
use proptest::prelude::*;

const ATTRS: [&str; 3] = ["g", "h", "v"];

fn header() -> AttrSet {
    AttrSet::from_names(&ATTRS)
}

fn relation_from(rows: &[(i64, i64, i64)]) -> Relation {
    let mut r = Relation::empty(header());
    for &(g, h, v) in rows {
        r.insert(Tuple::new(vec![Value::int(g), Value::int(h), Value::int(v)]))
            .expect("arity");
    }
    r
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..4, 0i64..4, -5i64..10), 0..max)
}

/// A random spec: group by a subset of {g, h}, aggregate v (and count).
fn arb_spec() -> impl Strategy<Value = SummarySpec> {
    (0u8..4, proptest::bool::ANY, proptest::bool::ANY, proptest::bool::ANY).prop_map(
        |(group_sel, with_sum, with_min, with_max)| {
            let group: Vec<&str> = match group_sel {
                0 => vec![],
                1 => vec!["g"],
                2 => vec!["h"],
                _ => vec!["g", "h"],
            };
            let mut cols: Vec<(&str, AggFunc)> = vec![("n", AggFunc::Count)];
            if with_sum {
                cols.push(("s", AggFunc::Sum(Attr::new("v"))));
            }
            if with_min {
                cols.push(("lo", AggFunc::Min(Attr::new("v"))));
            }
            if with_max {
                cols.push(("hi", AggFunc::Max(Attr::new("v"))));
            }
            SummarySpec::new("S", "F", &header(), &group, cols).expect("valid spec")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// init(source).relation() == materialize(source).
    #[test]
    fn init_equals_materialize(spec in arb_spec(), rows in arb_rows(30)) {
        let source = relation_from(&rows);
        let state = SummaryState::init(spec.clone(), &source).expect("initializes");
        prop_assert_eq!(
            state.relation(),
            SummaryState::materialize(&spec, &source).expect("materializes")
        );
    }

    /// A stream of random net deltas keeps the incremental state equal to
    /// recomputation at every step.
    #[test]
    fn stream_of_net_deltas_stays_exact(
        spec in arb_spec(),
        initial in arb_rows(20),
        steps in proptest::collection::vec((arb_rows(5), proptest::collection::vec(any::<prop::sample::Index>(), 0..4)), 1..8),
    ) {
        let mut source = relation_from(&initial);
        let mut state = SummaryState::init(spec.clone(), &source).expect("initializes");
        for (ins_rows, del_picks) in steps {
            // net insertions: rows not already present
            let ins = relation_from(&ins_rows)
                .difference(&source)
                .expect("same header");
            // net deletions: picked from the current source
            let current: Vec<Tuple> = source.iter().cloned().collect();
            let mut del = Relation::empty(header());
            for pick in &del_picks {
                if !current.is_empty() {
                    del.insert(pick.get(&current).clone()).expect("arity");
                }
            }
            // a tuple cannot be deleted and inserted in the same net delta
            let ins = ins.difference(&del).expect("same header");
            state.apply_delta(&ins, &del).expect("maintains");
            source = source.difference(&del).expect("ok").union(&ins).expect("ok");
            prop_assert_eq!(
                state.relation(),
                SummaryState::materialize(&spec, &source).expect("materializes")
            );
        }
    }

    /// Deleting everything empties the summary; re-inserting restores it.
    #[test]
    fn drain_and_refill(spec in arb_spec(), rows in arb_rows(20)) {
        let source = relation_from(&rows);
        let mut state = SummaryState::init(spec.clone(), &source).expect("initializes");
        let empty = Relation::empty(header());
        state.apply_delta(&empty, &source).expect("drains");
        prop_assert_eq!(state.group_count(), 0);
        prop_assert!(state.relation().is_empty());
        state.apply_delta(&source, &empty).expect("refills");
        prop_assert_eq!(
            state.relation(),
            SummaryState::materialize(&spec, &source).expect("materializes")
        );
    }
}
