//! E1/E3/E8 timing backbone: per-update maintenance cost of the three
//! strategies on the scaled Figure 1 warehouse (timer-grade numbers for
//! EXPERIMENTS.md; the `exp_*` binaries report the communication
//! metrics).

use dwc_bench::experiments::{fig1_catalog, fig1_state};
use dwc_relalg::{RelName, Relation, Tuple, Update, Value};
use dwc_testkit::Bench;
use dwc_warehouse::WarehouseSpec;
use std::collections::BTreeSet;
use std::hint::black_box;

fn insertion(i: usize, clerks: usize) -> Update {
    let mut rows = Relation::empty(dwc_relalg::AttrSet::from_names(&["clerk", "item"]));
    rows.insert(Tuple::new(vec![
        Value::str(&format!("clerk{}", i % clerks)),
        Value::str(&format!("bench-item{i}")),
    ]))
    .expect("arity");
    Update::inserting("Sale", rows)
}

fn main() {
    let group =
        Bench::new("maintenance").field_num("threads", dwc_relalg::exec::threads() as u64);
    for &n in &[1_000usize, 10_000] {
        let clerks = n / 4;
        let catalog = fig1_catalog(false);
        let db = fig1_state(n, clerks, false, 42);
        let spec = WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")])
            .expect("static spec");
        let aug = spec.clone().augment().expect("complement exists");
        let w = aug.materialize(&db).expect("materializes");
        let touched: BTreeSet<RelName> = [RelName::new("Sale")].into();
        let plan = aug.compile_plan(&touched).expect("compiles");
        let u = insertion(0, clerks).normalize(&db).expect("consistent");

        group.run(&format!("incremental/{n}"), || {
            black_box(plan.apply(&w, &u).expect("maintains"))
        });
        let mirrors = aug.reconstruct_sources(&w).expect("reconstructs");
        group.run(&format!("incremental-mirrored/{n}"), || {
            black_box(plan.apply_with_mirrors(&w, &u, &mirrors).expect("maintains"))
        });
        group.run(&format!("reconstruct/{n}"), || {
            black_box(aug.maintain_by_reconstruction(&w, &u).expect("maintains"))
        });
        let db_next = u.apply(&db).expect("applies");
        group.run(&format!("recompute-at-source/{n}"), || {
            black_box(spec.materialize(&db_next).expect("materializes"))
        });
        group.run(&format!("plan-compilation/{n}"), || {
            black_box(aug.compile_plan(&touched).expect("compiles"))
        });
    }
}
