//! Ingestion-layer timings: what fault tolerance costs per report.
//!
//! Compares offering the same report stream to an [`IngestingIntegrator`]
//! over a clean channel versus a faulty one (drops, duplicates,
//! reordering, corrupted payloads — the [`FaultPlan`] is pinned so the
//! numbers are stable), and prices the source-free gap recovery and the
//! paranoid Theorem 4.1 cross-check separately. One JSON line per
//! benchmark, like every suite in this crate.

use dwc_bench::experiments::{fig1_catalog, fig1_state};
use dwc_relalg::{rel, Update};
use dwc_testkit::{Bench, FaultPlan};
use dwc_warehouse::channel::{Envelope, SequencedSource};
use dwc_warehouse::ingest::{IngestConfig, IngestingIntegrator};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::WarehouseSpec;
use std::hint::black_box;

const STREAM_LEN: usize = 64;

/// Drains one prepared delivery sequence into a fresh clone of the
/// loaded ingestor, then repairs any gaps from the log.
fn drain(
    ingestor: &IngestingIntegrator,
    src: &SequencedSource,
    deliveries: &[Envelope],
) -> IngestingIntegrator {
    let mut ing = ingestor.clone();
    for env in deliveries {
        black_box(ing.offer(env));
    }
    ing.recover_from_log(src.id(), src.outbox()).expect("log is complete");
    ing
}

fn main() {
    let group = Bench::new("ingest");
    for &n in &[1_000usize, 10_000] {
        let clerks = n / 4;
        let catalog = fig1_catalog(false);
        let db = fig1_state(n, clerks, false, 42);
        let aug = WarehouseSpec::parse(catalog.clone(), &[("Sold", "Sale join Emp")])
            .expect("static spec")
            .augment()
            .expect("complement exists");
        let site = SourceSite::new(catalog, db).expect("valid state");
        let mut src = SequencedSource::new("bench", site);
        let integ = Integrator::initial_load(aug, src.site()).expect("loads");
        let ingestor =
            IngestingIntegrator::new(integ, IngestConfig::default()).expect("spec verifies");

        let envelopes: Vec<Envelope> = (0..STREAM_LEN)
            .map(|i| {
                let item = format!("bench-item{i}");
                let clerk = format!("clerk{}", i % clerks);
                src.apply_update(&Update::inserting(
                    "Sale",
                    rel! { ["clerk", "item"] => (clerk.as_str(), item.as_str()) },
                ))
                .expect("valid update")
            })
            .collect();

        // The faulty channel, pinned: ~10% drops, ~10% duplicates, ~5%
        // corrupted copies, reordering within a window of 3.
        let plan = FaultPlan {
            seed: 0xC0FFEE,
            drop_permille: 100,
            dup_permille: 100,
            corrupt_permille: 50,
            reorder_window: 3,
        };
        let faulty: Vec<Envelope> = plan
            .apply(&envelopes)
            .into_iter()
            .map(|d| {
                let mut env = d.item;
                if d.corrupted {
                    env.report = Update::inserting("Ghost", rel! { ["x"] => (1,) });
                }
                env
            })
            .collect();

        group.run(&format!("clean-stream/{n}"), || {
            black_box(drain(&ingestor, &src, &envelopes))
        });
        group.run(&format!("faulty-stream/{n}"), || {
            black_box(drain(&ingestor, &src, &faulty))
        });

        // Recovery priced alone: every report past the first is missing
        // and comes back through one composed reconstruction.
        let head = &envelopes[..1];
        group.run(&format!("gap-recovery/{n}"), || {
            black_box(drain(&ingestor, &src, head))
        });

        // The paranoid cross-check, clean channel, no recovery involved:
        // per-report cost of evaluating W ∘ u ∘ W⁻¹ next to the
        // incremental plan (a complete in-order prefix, so `offer` alone
        // keeps the cursor gap-free).
        let paranoid = IngestingIntegrator::new(
            ingestor.integrator().clone(),
            IngestConfig::paranoid(),
        )
        .expect("spec verifies");
        let short = &envelopes[..8];
        group.run(&format!("paranoid-stream/{n}"), || {
            let mut ing = paranoid.clone();
            for env in short {
                black_box(ing.offer(env));
            }
            black_box(ing)
        });
    }
}
