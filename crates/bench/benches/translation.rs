//! E2 timing backbone: query translation overhead (Theorem 3.1).
//! Compares answering at the source, translating + answering at the
//! warehouse, and the translation step alone.

use dwc_bench::experiments::{fig1_catalog, fig1_state};
use dwc_relalg::RaExpr;
use dwc_testkit::Bench;
use dwc_warehouse::WarehouseSpec;
use std::hint::black_box;

fn main() {
    let group = Bench::new("translation");
    let n = 10_000;
    let catalog = fig1_catalog(false);
    let db = fig1_state(n, n / 4, false, 7);
    let spec =
        WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")]).expect("static spec");
    let aug = spec.augment().expect("complement exists");
    let w = aug.materialize(&db).expect("materializes");

    let queries = [
        ("union", "pi[clerk](Sale) union pi[clerk](Emp)"),
        ("join", "pi[age](sigma[item = 'item7'](Sale) join Emp)"),
        ("antijoin", "pi[clerk](Emp) minus pi[clerk](Sale)"),
    ];
    for (name, text) in queries {
        let q = RaExpr::parse(text).expect("static query");
        let translated = aug.translate_query(&q).expect("translates");
        group.run(&format!("at-source/{name}"), || {
            black_box(q.eval(&db).expect("evaluates"))
        });
        group.run(&format!("at-warehouse/{name}"), || {
            black_box(translated.eval(&w).expect("evaluates"))
        });
        group.run(&format!("translate-only/{name}"), || {
            black_box(aug.translate_query(&q).expect("translates"))
        });
    }
}
