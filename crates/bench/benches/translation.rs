//! E2 timing backbone: query translation overhead (Theorem 3.1).
//! Compares answering at the source, translating + answering at the
//! warehouse, and the translation step alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwc_bench::experiments::{fig1_catalog, fig1_state};
use dwc_relalg::RaExpr;
use dwc_warehouse::WarehouseSpec;
use std::hint::black_box;

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation");
    let n = 10_000;
    let catalog = fig1_catalog(false);
    let db = fig1_state(n, n / 4, false, 7);
    let spec =
        WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")]).expect("static spec");
    let aug = spec.augment().expect("complement exists");
    let w = aug.materialize(&db).expect("materializes");

    let queries = [
        ("union", "pi[clerk](Sale) union pi[clerk](Emp)"),
        ("join", "pi[age](sigma[item = 'item7'](Sale) join Emp)"),
        ("antijoin", "pi[clerk](Emp) minus pi[clerk](Sale)"),
    ];
    for (name, text) in queries {
        let q = RaExpr::parse(text).expect("static query");
        let translated = aug.translate_query(&q).expect("translates");
        group.bench_with_input(BenchmarkId::new("at-source", name), &n, |b, _| {
            b.iter(|| black_box(q.eval(&db).expect("evaluates")));
        });
        group.bench_with_input(BenchmarkId::new("at-warehouse", name), &n, |b, _| {
            b.iter(|| black_box(translated.eval(&w).expect("evaluates")));
        });
        group.bench_with_input(BenchmarkId::new("translate-only", name), &n, |b, _| {
            b.iter(|| black_box(aug.translate_query(&q).expect("translates")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
