//! Durability-layer timings: what crash consistency costs.
//!
//! Prices the three IO paths of `warehouse::storage` over the real
//! filesystem ([`FsMedium`] in a scratch directory): atomic snapshot
//! writes as state grows, WAL append throughput with and without the
//! per-record fsync, and cold recovery (manifest → snapshot → WAL
//! replay → consistency cross-check) as a function of state size and
//! log length. One JSON line per benchmark; `scripts/bench.sh` collects
//! them into `BENCH_recovery.json`.

use dwc_bench::experiments::{fig1_catalog, fig1_state};
use dwc_relalg::{rel, Update};
use dwc_testkit::Bench;
use dwc_warehouse::channel::{Envelope, SequencedSource};
use dwc_warehouse::ingest::{IngestConfig, IngestingIntegrator};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::{
    AugmentedWarehouse, DurabilityConfig, DurableWarehouse, FsMedium, Recovery, WarehouseSpec,
};
use std::hint::black_box;
use std::path::PathBuf;

/// Reports in the WAL tail the cold-recovery benchmark replays.
const LOG_LEN: usize = 32;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dwc-bench-recovery-{}-{tag}", std::process::id()))
}

/// The figure-1 warehouse at `n` sales, loaded and wrapped for ingestion.
fn rig(n: usize) -> (AugmentedWarehouse, SequencedSource, IngestingIntegrator) {
    let clerks = (n / 4).max(1);
    let catalog = fig1_catalog(false);
    let db = fig1_state(n, clerks, false, 42);
    let aug = WarehouseSpec::parse(catalog.clone(), &[("Sold", "Sale join Emp")])
        .expect("static spec")
        .augment()
        .expect("complement exists");
    let site = SourceSite::new(catalog, db).expect("valid state");
    let src = SequencedSource::new("bench", site);
    let integ = Integrator::initial_load(aug.clone(), src.site()).expect("loads");
    let ing = IngestingIntegrator::new(integ, IngestConfig::default()).expect("spec verifies");
    (aug, src, ing)
}

fn sale_envelopes(src: &mut SequencedSource, count: usize) -> Vec<Envelope> {
    (0..count)
        .map(|i| {
            let item = format!("bench-item{i}");
            src.apply_update(&Update::inserting(
                "Sale",
                rel! { ["clerk", "item"] => ("clerk0", item.as_str()) },
            ))
            .expect("valid update")
        })
        .collect()
}

fn config(sync_every_append: bool) -> DurabilityConfig {
    DurabilityConfig {
        sync_every_append,
        retain_generations: 2,
        snapshot_every: None,
        verify_on_open: true,
    }
}

fn main() {
    let group = Bench::new("recovery");
    let mut scratch_dirs = Vec::new();

    for &n in &[1_000usize, 10_000] {
        // --- snapshot write: full-state atomic write+fsync+rename ---
        let (aug, mut src, ing) = rig(n);
        let dir = scratch(&format!("snap-{n}"));
        scratch_dirs.push(dir.clone());
        let medium = FsMedium::new(&dir).expect("scratch dir");
        let mut dw =
            DurableWarehouse::create(medium, ing.clone(), config(true)).expect("creates");
        group.run(&format!("snapshot-write/{n}"), || {
            dw.snapshot().expect("snapshot rolls");
            black_box(dw.generation())
        });

        // --- WAL append throughput, synced and unsynced ---
        let envelopes = sale_envelopes(&mut src, LOG_LEN);
        for (mode, sync) in [("fsync", true), ("nosync", false)] {
            let dir = scratch(&format!("wal-{mode}-{n}"));
            scratch_dirs.push(dir.clone());
            let medium = FsMedium::new(&dir).expect("scratch dir");
            let mut dw =
                DurableWarehouse::create(medium, ing.clone(), config(sync)).expect("creates");
            // Offers past the first are duplicates in memory, so the
            // loop prices exactly the WAL append (+ optional fsync).
            let env = &envelopes[0];
            group.run(&format!("wal-append-{mode}/{n}"), || {
                black_box(dw.offer(env).expect("offer logs"))
            });
        }

        // --- cold recovery: snapshot restore + WAL replay + check ---
        let dir = scratch(&format!("cold-{n}"));
        scratch_dirs.push(dir.clone());
        let medium = FsMedium::new(&dir).expect("scratch dir");
        let mut dw =
            DurableWarehouse::create(medium, ing.clone(), config(true)).expect("creates");
        for env in &envelopes {
            dw.offer(env).expect("offer logs");
        }
        drop(dw);
        // Recovery rolls a fresh generation, absorbing the WAL tail into
        // a new snapshot; restore the captured image before each run so
        // every iteration replays the same LOG_LEN records.
        let image: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
            .expect("scratch dir")
            .map(|entry| {
                let entry = entry.expect("dir entry");
                let name = entry.file_name().to_string_lossy().into_owned();
                let bytes = std::fs::read(entry.path()).expect("readable file");
                (name, bytes)
            })
            .collect();
        for (mode, check) in [("verify", true), ("noverify", false)] {
            let aug = aug.clone();
            let dir = dir.clone();
            let image = &image;
            group.run(&format!("cold-recovery-{mode}/{n}"), move || {
                std::fs::remove_dir_all(&dir).expect("scratch dir");
                std::fs::create_dir_all(&dir).expect("scratch dir");
                for (name, bytes) in image {
                    std::fs::write(dir.join(name), bytes).expect("image restores");
                }
                let medium = FsMedium::new(&dir).expect("scratch dir");
                let cfg = DurabilityConfig {
                    verify_on_open: check,
                    ..config(true)
                };
                let (dw, report) =
                    Recovery::open(medium, aug.clone(), cfg).expect("recovers");
                black_box((dw.generation(), report.records_replayed))
            });
        }
    }

    for dir in scratch_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
