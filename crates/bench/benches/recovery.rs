//! Durability-layer timings: what crash consistency costs.
//!
//! Prices the three IO paths of `warehouse::storage` over the real
//! filesystem ([`FsMedium`] in a scratch directory): atomic snapshot
//! writes as state grows, WAL append throughput with and without the
//! per-record fsync, and cold recovery (manifest → snapshot → WAL
//! replay → consistency cross-check) as a function of state size and
//! log length. One JSON line per benchmark; `scripts/bench.sh` collects
//! them into `BENCH_recovery.json`.
//!
//! Setting `DWC_BENCH_SHARDS` to a comma-separated list of shard
//! counts switches the target to the **sharded** cold-recovery sweep
//! instead: the same warehouse committed under a key-range sharded
//! layout, reopened via the parallel per-shard recovery. Each row is
//! tagged with a `shards` field so the sweep is directly comparable
//! against the unsharded `cold-recovery-*` rows. `scripts/bench.sh`
//! runs the unsharded pass serially (the IO paths are not
//! thread-scaled) and the shard sweep at the parallel width, where the
//! per-shard decode/replay fan-out actually buys wall-clock.

use dwc_bench::experiments::{fig1_catalog, fig1_state};
use dwc_relalg::{rel, Update};
use dwc_testkit::Bench;
use dwc_warehouse::channel::{Envelope, SequencedSource};
use dwc_warehouse::ingest::{IngestConfig, IngestingIntegrator};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::{
    AugmentedWarehouse, DurabilityConfig, DurableWarehouse, FsMedium, Recovery,
    ShardedDurableWarehouse, WarehouseSpec,
};
use std::hint::black_box;
use std::path::PathBuf;

/// Reports in the WAL tail the cold-recovery benchmark replays.
const LOG_LEN: usize = 32;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dwc-bench-recovery-{}-{tag}", std::process::id()))
}

/// The figure-1 warehouse at `n` sales, loaded and wrapped for ingestion.
fn rig(n: usize) -> (AugmentedWarehouse, SequencedSource, IngestingIntegrator) {
    let clerks = (n / 4).max(1);
    let catalog = fig1_catalog(false);
    let db = fig1_state(n, clerks, false, 42);
    let aug = WarehouseSpec::parse(catalog.clone(), &[("Sold", "Sale join Emp")])
        .expect("static spec")
        .augment()
        .expect("complement exists");
    let site = SourceSite::new(catalog, db).expect("valid state");
    let src = SequencedSource::new("bench", site);
    let integ = Integrator::initial_load(aug.clone(), src.site()).expect("loads");
    let ing = IngestingIntegrator::new(integ, IngestConfig::default()).expect("spec verifies");
    (aug, src, ing)
}

fn sale_envelopes(src: &mut SequencedSource, count: usize) -> Vec<Envelope> {
    (0..count)
        .map(|i| {
            let item = format!("bench-item{i}");
            src.apply_update(&Update::inserting(
                "Sale",
                rel! { ["clerk", "item"] => ("clerk0", item.as_str()) },
            ))
            .expect("valid update")
        })
        .collect()
}

fn config(sync_every_append: bool) -> DurabilityConfig {
    DurabilityConfig {
        sync_every_append,
        retain_generations: 2,
        snapshot_every: None,
        verify_on_open: true,
    }
}

/// Snapshots every file in `dir` so cold-recovery iterations can be
/// replayed from an identical on-disk image.
fn capture_image(dir: &PathBuf) -> Vec<(String, Vec<u8>)> {
    std::fs::read_dir(dir)
        .expect("scratch dir")
        .map(|entry| {
            let entry = entry.expect("dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(entry.path()).expect("readable file");
            (name, bytes)
        })
        .collect()
}

/// Resets `dir` to a previously captured image.
fn restore_image(dir: &PathBuf, image: &[(String, Vec<u8>)]) {
    std::fs::remove_dir_all(dir).expect("scratch dir");
    std::fs::create_dir_all(dir).expect("scratch dir");
    for (name, bytes) in image {
        std::fs::write(dir.join(name), bytes).expect("image restores");
    }
}

/// The sharded cold-recovery sweep: the figure-1 warehouse committed
/// under `shards` key-range lineages (routed by `clerk`, Emp's key),
/// reopened through the parallel per-shard recovery. One bench group
/// per shard count so every row carries a `shards` field.
fn bench_sharded(counts: &[usize]) {
    let mut scratch_dirs = Vec::new();
    for &n in &[1_000usize, 10_000] {
        let (aug, mut src, ing) = rig(n);
        let envelopes = sale_envelopes(&mut src, LOG_LEN);
        for &shards in counts {
            let dir = scratch(&format!("shard{shards}-{n}"));
            scratch_dirs.push(dir.clone());
            let medium = FsMedium::new(&dir).expect("scratch dir");
            let mut sw =
                ShardedDurableWarehouse::create(medium, ing.clone(), config(true), shards, None)
                    .expect("creates");
            for env in &envelopes {
                sw.offer(env).expect("offer logs");
            }
            drop(sw);
            let image = capture_image(&dir);
            // Untimed opens harvest the replay-path telemetry: the
            // critical path (slowest shard) vs the summed per-shard
            // work. Their ratio is the parallel-recovery speedup a
            // host with >= `shards` cores sees, reported alongside the
            // wall-clock rows so a core-starved bench host cannot hide
            // it. Best-of-three, because on an oversubscribed host a
            // worker's wall clock includes preemption.
            let mut best: Option<(u64, u64)> = None;
            for _ in 0..3 {
                restore_image(&dir, &image);
                let medium = FsMedium::new(&dir).expect("scratch dir");
                let (_, report) =
                    ShardedDurableWarehouse::open(medium, aug.clone(), config(true), None)
                        .expect("recovers");
                let pair = (
                    report.replay_critical.as_nanos() as u64,
                    report.replay_total.as_nanos() as u64,
                );
                if best.is_none_or(|(c, _)| pair.0 < c) {
                    best = Some(pair);
                }
            }
            let (critical_ns, total_ns) = best.unwrap_or((0, 0));
            let group = Bench::new("recovery")
                .field_num("shards", shards as u64)
                .field_num("replay_critical_ns", critical_ns)
                .field_num("replay_total_ns", total_ns);
            let aug = aug.clone();
            let dir = dir.clone();
            group.run(&format!("cold-recovery-sharded/{n}"), move || {
                restore_image(&dir, &image);
                let medium = FsMedium::new(&dir).expect("scratch dir");
                let (sw, report) =
                    ShardedDurableWarehouse::open(medium, aug.clone(), config(true), None)
                        .expect("recovers");
                black_box((sw.shards(), report.shard_records_replayed))
            });
        }
    }
    for dir in scratch_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn main() {
    // `DWC_BENCH_SHARDS=1,2,4` switches to the sharded sweep so
    // bench.sh can run it at a parallel width without re-timing the
    // (serial, IO-bound) unsharded paths.
    if let Ok(spec) = std::env::var("DWC_BENCH_SHARDS") {
        let counts: Vec<usize> = spec
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&c| c >= 1)
            .collect();
        if counts.is_empty() {
            eprintln!("DWC_BENCH_SHARDS=`{spec}` names no shard counts");
            std::process::exit(2);
        }
        bench_sharded(&counts);
        return;
    }
    let group = Bench::new("recovery");
    let mut scratch_dirs = Vec::new();

    for &n in &[1_000usize, 10_000] {
        // --- snapshot write: full-state atomic write+fsync+rename ---
        let (aug, mut src, ing) = rig(n);
        let dir = scratch(&format!("snap-{n}"));
        scratch_dirs.push(dir.clone());
        let medium = FsMedium::new(&dir).expect("scratch dir");
        let mut dw =
            DurableWarehouse::create(medium, ing.clone(), config(true)).expect("creates");
        group.run(&format!("snapshot-write/{n}"), || {
            dw.snapshot().expect("snapshot rolls");
            black_box(dw.generation())
        });

        // --- WAL append throughput, synced and unsynced ---
        let envelopes = sale_envelopes(&mut src, LOG_LEN);
        for (mode, sync) in [("fsync", true), ("nosync", false)] {
            let dir = scratch(&format!("wal-{mode}-{n}"));
            scratch_dirs.push(dir.clone());
            let medium = FsMedium::new(&dir).expect("scratch dir");
            let mut dw =
                DurableWarehouse::create(medium, ing.clone(), config(sync)).expect("creates");
            // Offers past the first are duplicates in memory, so the
            // loop prices exactly the WAL append (+ optional fsync).
            let env = &envelopes[0];
            group.run(&format!("wal-append-{mode}/{n}"), || {
                black_box(dw.offer(env).expect("offer logs"))
            });
        }

        // --- cold recovery: snapshot restore + WAL replay + check ---
        let dir = scratch(&format!("cold-{n}"));
        scratch_dirs.push(dir.clone());
        let medium = FsMedium::new(&dir).expect("scratch dir");
        let mut dw =
            DurableWarehouse::create(medium, ing.clone(), config(true)).expect("creates");
        for env in &envelopes {
            dw.offer(env).expect("offer logs");
        }
        drop(dw);
        // Recovery rolls a fresh generation, absorbing the WAL tail into
        // a new snapshot; restore the captured image before each run so
        // every iteration replays the same LOG_LEN records.
        let image = capture_image(&dir);
        for (mode, check) in [("verify", true), ("noverify", false)] {
            let aug = aug.clone();
            let dir = dir.clone();
            let image = &image;
            group.run(&format!("cold-recovery-{mode}/{n}"), move || {
                restore_image(&dir, image);
                let medium = FsMedium::new(&dir).expect("scratch dir");
                let cfg = DurabilityConfig {
                    verify_on_open: check,
                    ..config(true)
                };
                let (dw, report) =
                    Recovery::open(medium, aug.clone(), cfg).expect("recovers");
                black_box((dw.generation(), report.records_replayed))
            });
        }
    }

    for dir in scratch_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
