//! Substrate micro-benchmarks: the relational operators underlying every
//! experiment. Not tied to a paper artifact; these numbers calibrate the
//! engine so the experiment-level comparisons are interpretable.

use dwc_relalg::{AttrSet, DbState, RaExpr, Relation, Tuple, Value};
use dwc_testkit::Bench;
use std::hint::black_box;

fn two_table_state(n: usize) -> DbState {
    let mut rng = dwc_relalg::gen::SplitMix64::new(7);
    let mut db = DbState::new();
    let mut row = |i: usize| {
        Tuple::new(vec![
            Value::int(i as i64),
            Value::int(rng.below(n as u64 / 2 + 1) as i64),
        ])
    };
    let r_rows: Vec<Tuple> = (0..n).map(&mut row).collect();
    let s_rows: Vec<Tuple> = (0..n).map(&mut row).collect();
    let header = AttrSet::from_names(&["a", "k"]);
    db.insert_relation("R", Relation::from_tuples(header, r_rows).expect("arity"));
    let header = AttrSet::from_names(&["b", "k"]);
    db.insert_relation("S", Relation::from_tuples(header, s_rows).expect("arity"));
    db
}

fn main() {
    let group =
        Bench::new("eval").field_num("threads", dwc_relalg::exec::threads() as u64);
    for &n in &[1_000usize, 10_000] {
        let db = two_table_state(n);
        let cases = [
            ("hash-join", "R join S"),
            ("select", "sigma[a >= 10 and k < 100](R)"),
            ("project", "pi[k](R)"),
            ("union", "pi[k](R) union pi[k](S)"),
            ("difference", "pi[k](R) minus pi[k](S)"),
        ];
        for (name, text) in cases {
            let e = RaExpr::parse(text).expect("static query");
            group.run(&format!("{name}/{n}"), || {
                black_box(e.eval(&db).expect("evaluates"))
            });
        }

        // Index-probe join: a 16-row probe side against the large
        // relation, whose cached key index is built on the first
        // iteration and reused (via the shared Arc) on every subsequent
        // one — this isolates the probe cost from index construction.
        let r = db.relation("R".into()).expect("present").clone();
        let mut pdb = DbState::new();
        pdb.insert_relation("R", r.clone());
        let probe_rows: Vec<Tuple> = (0..16)
            .map(|i| Tuple::new(vec![Value::int(i), Value::int(i)]))
            .collect();
        let header = AttrSet::from_names(&["k", "p"]);
        pdb.insert_relation(
            "P",
            Relation::from_tuples(header, probe_rows).expect("arity"),
        );
        let pe = RaExpr::parse("R join P").expect("static query");
        group.run(&format!("index-probe-join/{n}"), || {
            black_box(pe.eval(&pdb).expect("evaluates"))
        });

        // Delta point lookup: a single-row insert+delete against the
        // large relation — the maintenance layers' innermost operation.
        let header = AttrSet::from_names(&["a", "k"]);
        let ins = Relation::from_tuples(
            header.clone(),
            vec![Tuple::new(vec![Value::int(-1), Value::int(-1)])],
        )
        .expect("arity");
        let del = Relation::from_tuples(
            header,
            vec![Tuple::new(vec![Value::int(0), Value::int(0)])],
        )
        .expect("arity");
        group.run(&format!("delta-point-lookup/{n}"), || {
            black_box(r.apply_delta(&ins, &del).expect("same header"))
        });
    }
}
