//! Substrate micro-benchmarks: the relational operators underlying every
//! experiment. Not tied to a paper artifact; these numbers calibrate the
//! engine so the experiment-level comparisons are interpretable.

use dwc_relalg::{DbState, RaExpr, Relation, Tuple, Value};
use dwc_testkit::Bench;
use std::hint::black_box;

fn two_table_state(n: usize) -> DbState {
    let mut rng = dwc_relalg::gen::SplitMix64::new(7);
    let mut db = DbState::new();
    let mut r = Relation::empty(dwc_relalg::AttrSet::from_names(&["a", "k"]));
    let mut s = Relation::empty(dwc_relalg::AttrSet::from_names(&["b", "k"]));
    for i in 0..n {
        r.insert(Tuple::new(vec![
            Value::int(i as i64),
            Value::int(rng.below(n as u64 / 2 + 1) as i64),
        ]))
        .expect("arity");
        s.insert(Tuple::new(vec![
            Value::int(i as i64),
            Value::int(rng.below(n as u64 / 2 + 1) as i64),
        ]))
        .expect("arity");
    }
    db.insert_relation("R", r);
    db.insert_relation("S", s);
    db
}

fn main() {
    let group =
        Bench::new("eval").field_num("threads", dwc_relalg::exec::threads() as u64);
    for &n in &[1_000usize, 10_000] {
        let db = two_table_state(n);
        let cases = [
            ("hash-join", "R join S"),
            ("select", "sigma[a >= 10 and k < 100](R)"),
            ("project", "pi[k](R)"),
            ("union", "pi[k](R) union pi[k](S)"),
            ("difference", "pi[k](R) minus pi[k](S)"),
        ];
        for (name, text) in cases {
            let e = RaExpr::parse(text).expect("static query");
            group.run(&format!("{name}/{n}"), || {
                black_box(e.eval(&db).expect("evaluates"))
            });
        }
    }
}
