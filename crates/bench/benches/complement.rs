//! E11 timing backbone: complement computation (cover enumeration) and
//! complement materialization cost.

use dwc_bench::experiments::{fig1_catalog, fig1_state};
use dwc_core::constrained::{complement_with, ComplementOptions};
use dwc_core::psj::{NamedView, PsjView};
use dwc_starschema::star_warehouse;
use dwc_testkit::Bench;
use dwc_warehouse::WarehouseSpec;
use std::hint::black_box;

fn bench_computation() {
    let group = Bench::new("complement-computation")
        .field_num("threads", dwc_relalg::exec::threads() as u64);
    // Redundant key-projection views: worst case for cover multiplicity.
    for &k in &[4usize, 8, 12] {
        let width = 4;
        let mut cat = dwc_relalg::Catalog::new();
        let attrs: Vec<String> =
            std::iter::once("key".to_owned()).chain((0..width).map(|i| format!("a{i}"))).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        cat.add_schema_with_key("R", &attr_refs, &["key"]).expect("static");
        let views: Vec<NamedView> = (0..k)
            .map(|i| {
                NamedView::new(
                    format!("V{i}").as_str(),
                    PsjView::project_of(&cat, "R", &["key", &format!("a{}", i % width)])
                        .expect("static"),
                )
            })
            .collect();
        group.run(&format!("theorem-2.2/{k}"), || {
            black_box(
                complement_with(&cat, &views, &ComplementOptions::default())
                    .expect("complement"),
            )
        });
    }
    // The star schema (realistic shape).
    let (cat, views) = star_warehouse();
    group.run("theorem-2.2/star-schema", || {
        black_box(
            complement_with(&cat, &views, &ComplementOptions::default())
                .expect("complement"),
        )
    });
}

fn bench_materialization() {
    let group = Bench::new("complement-materialization")
        .field_num("threads", dwc_relalg::exec::threads() as u64);
    for &n in &[1_000usize, 10_000] {
        let catalog = fig1_catalog(false);
        let db = fig1_state(n, n / 4, false, 11);
        let aug = WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")])
            .expect("static spec")
            .augment()
            .expect("complement exists");
        group.run(&format!("fig1/{n}"), || {
            black_box(aug.materialize(&db).expect("materializes"))
        });
    }
}

fn main() {
    bench_computation();
    bench_materialization();
}
