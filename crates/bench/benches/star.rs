//! E10 timing backbone: end-to-end star-schema maintenance throughput
//! and warehouse query answering at scale factors.

use dwc_starschema::queries::workload;
use dwc_starschema::{generate, star_warehouse, ScaleConfig, UpdateStream};
use dwc_testkit::Bench;
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::WarehouseSpec;
use std::hint::black_box;

fn bench_star_maintenance() {
    let group = Bench::new("star-maintenance")
        .samples(10)
        .field_num("threads", dwc_relalg::exec::threads() as u64);
    for &sf in &[0.005f64, 0.02] {
        let (catalog, views) = star_warehouse();
        let spec = WarehouseSpec::new(catalog.clone(), views).expect("static spec");
        let db = generate(&ScaleConfig::scaled(sf), 99);
        let site = SourceSite::new(catalog, db.clone()).expect("valid");
        let integ0 = Integrator::initial_load(spec.clone().augment().expect("aug"), &site)
            .expect("load");

        group.run(&format!("integrator-30-updates/sf{sf}"), || {
            let mut integ = integ0.clone();
            let mut stream = UpdateStream::new(&db, 1);
            let mut shadow = db.clone();
            for _ in 0..30 {
                let u = stream.next();
                // the stream pre-normalizes against its own state
                u.apply_mut(&mut shadow).expect("applies");
                integ.on_report(&u).expect("maintains");
            }
            black_box(integ.state().total_tuples())
        });
    }
}

fn bench_star_queries() {
    let group = Bench::new("star-queries");
    let sf = 0.02;
    let (catalog, views) = star_warehouse();
    let spec = WarehouseSpec::new(catalog, views).expect("static spec");
    let aug = spec.augment().expect("complement exists");
    let db = generate(&ScaleConfig::scaled(sf), 99);
    let w = aug.materialize(&db).expect("materializes");
    for q in workload() {
        let translated = aug.translate_query(&q.expr).expect("translates");
        group.run(&format!("at-warehouse/{}", q.name), || {
            black_box(translated.eval(&w).expect("evaluates"))
        });
        group.run(&format!("at-source/{}", q.name), || {
            black_box(q.expr.eval(&db).expect("evaluates"))
        });
    }
}

fn main() {
    bench_star_maintenance();
    bench_star_queries();
}
