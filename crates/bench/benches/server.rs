//! Server group-commit throughput: what batching the fsync buys.
//!
//! Drives [`ServerCore`] end to end — session delivery, batcher, WAL
//! group commit, epoch publication, ack minting — over a real
//! filesystem scratch directory at batch caps 1/16/64 and 1/4 concurrent
//! sources, reporting acked envelopes per second. Alongside the wall
//! clock rows, a deterministic [`SimFs`] pass counts the actual
//! append/fsync mix per configuration and prices it under the documented
//! cost model (an fsync ≈ 50× an unsynced append), so the headline claim
//! — batch ≥ 16 sustains ≥ 5× the acks/sec of batch = 1 — is pinned by
//! accounting even on machines whose fsync is a tmpfs no-op.
//! `scripts/bench.sh` collects every line into `BENCH_server.json`.

use dwc_relalg::{Catalog, DbState, Relation, Tuple, Update, Value};
use dwc_testkit::crash::{CrashPlan, SimError, SimFs};
use dwc_testkit::Bench;
use dwc_warehouse::channel::{Envelope, SourceId};
use dwc_warehouse::ingest::{IngestConfig, IngestingIntegrator};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::server::{BatchPolicy, ServerCore, SessionId};
use dwc_warehouse::{
    DurabilityConfig, DurableWarehouse, FsMedium, MediumError, StorageMedium, WarehouseSpec,
};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::PathBuf;

/// Acked envelopes per timed iteration (all configurations).
const ENVELOPES: usize = 64;

/// The documented cost model: one fsync ≈ this many unsynced appends
/// (see `DurableWarehouse::offer_batch`).
const FSYNC_COST: u64 = 50;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dwc-bench-server-{}-{tag}", std::process::id()))
}

fn chain_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_schema("R", &["a", "b"]).expect("static schema");
    c.add_schema("S", &["b", "c"]).expect("static schema");
    c.add_schema("T", &["c"]).expect("static schema");
    c
}

fn row(rel_attrs: &[&str], values: &[i64]) -> Relation {
    let mut rel = Relation::empty(dwc_relalg::AttrSet::from_names(rel_attrs));
    rel.insert(Tuple::new(values.iter().map(|&v| Value::int(v)).collect()))
        .expect("static arity");
    rel
}

fn fresh_ingest() -> IngestingIntegrator {
    let aug = WarehouseSpec::parse(chain_catalog(), &[("V", "R join S")])
        .expect("static spec")
        .augment()
        .expect("chain warehouse augments");
    let site = SourceSite::new(chain_catalog(), DbState::empty_for(&chain_catalog())).expect("site");
    let integ = Integrator::initial_load(aug, &site).expect("initial load");
    IngestingIntegrator::new(integ, IngestConfig::default()).expect("ingestor")
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        sync_every_append: false,
        retain_generations: 2,
        snapshot_every: None,
        verify_on_open: true,
    }
}

/// A round-robin schedule of `ENVELOPES` single-row inserts spread over
/// `sources` independent sequenced sources (disjoint rows into R).
fn build_schedule(sources: usize) -> Vec<(usize, Envelope)> {
    let mut lanes: Vec<Vec<Envelope>> = (0..sources)
        .map(|s| {
            let site = SourceSite::new(chain_catalog(), DbState::empty_for(&chain_catalog())).expect("site");
            let mut src =
                dwc_warehouse::channel::SequencedSource::new(SourceId::new(format!("src{s}")), site);
            (0..ENVELOPES / sources)
                .map(|i| {
                    let v = (s * 10_000 + i) as i64;
                    src.apply_update(&Update::inserting("R", row(&["a", "b"], &[v, v + 1])))
                        .expect("source applies its own update")
                })
                .collect()
        })
        .collect();
    let mut schedule = Vec::with_capacity(ENVELOPES);
    'outer: loop {
        for (lane, envs) in lanes.iter_mut().enumerate() {
            if envs.is_empty() {
                break 'outer;
            }
            schedule.push((lane, envs.remove(0)));
        }
    }
    schedule
}

/// Connects one session per source and delivers the whole schedule plus
/// a final flush, returning the ack count (must equal `ENVELOPES`).
fn pump<M: StorageMedium>(
    core: &mut ServerCore<M>,
    sessions: &[SessionId],
    schedule: &[(usize, Envelope)],
) -> usize {
    let mut acks = 0;
    for (lane, env) in schedule {
        acks += core.deliver(sessions[*lane], env.clone(), 0).expect("deliver").len();
    }
    acks += core.flush().expect("flush").len();
    assert_eq!(acks, schedule.len(), "every envelope must be acked");
    acks
}

/// SimFs → StorageMedium adapter (accounting pass).
#[derive(Clone, Debug)]
struct SimMedium(SimFs);

fn sim_err(op: &'static str, path: &str, e: SimError) -> MediumError {
    MediumError::fatal(op, path, e.to_string())
}

impl StorageMedium for SimMedium {
    fn read(&self, path: &str) -> Result<Vec<u8>, MediumError> {
        self.0.read(path).map_err(|e| sim_err("read", path, e))
    }
    fn write_all(&self, path: &str, bytes: &[u8]) -> Result<(), MediumError> {
        self.0.write_all(path, bytes).map_err(|e| sim_err("write", path, e))
    }
    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), MediumError> {
        self.0.append(path, bytes).map_err(|e| sim_err("append", path, e))
    }
    fn sync(&self, path: &str) -> Result<(), MediumError> {
        self.0.sync(path).map_err(|e| sim_err("sync", path, e))
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), MediumError> {
        self.0.rename(from, to).map_err(|e| sim_err("rename", from, e))
    }
    fn remove(&self, path: &str) -> Result<(), MediumError> {
        self.0.remove(path).map_err(|e| sim_err("remove", path, e))
    }
    fn list(&self) -> Result<Vec<String>, MediumError> {
        Ok(self.0.list())
    }
    fn exists(&self, path: &str) -> bool {
        self.0.exists(path)
    }
}

fn main() {
    let mut scratch_dirs = Vec::new();
    let mut measured: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut modeled: BTreeMap<(usize, usize), u64> = BTreeMap::new();

    for &sources in &[1usize, 4] {
        let schedule = build_schedule(sources);
        for &max_batch in &[1usize, 16, 64] {
            // --- wall clock over the real filesystem ---
            let dir = scratch(&format!("b{max_batch}-s{sources}"));
            scratch_dirs.push(dir.clone());
            let medium = FsMedium::new(&dir).expect("scratch dir");
            let dw = DurableWarehouse::create(medium, fresh_ingest(), config())
                .expect("creates");
            let mut core = ServerCore::new(
                dw,
                BatchPolicy { max_batch, max_wait_micros: 1_000_000 },
            );
            let sessions: Vec<SessionId> = (0..sources)
                .map(|s| core.connect(SourceId::new(format!("src{s}"))).session)
                .collect();
            let group = Bench::new("server")
                .field_num("max_batch", max_batch as u64)
                .field_num("sources", sources as u64)
                .field_num("envelopes_per_iter", ENVELOPES as u64);
            let stats = group.run(&format!("group-commit/batch{max_batch}-src{sources}"), || {
                black_box(pump(&mut core, &sessions, &schedule))
            });
            let acks_per_sec =
                (ENVELOPES as u128 * 1_000_000_000 / u128::from(stats.median_ns.max(1))) as u64;
            measured.insert((sources, max_batch), acks_per_sec);
            println!(
                "{{\"group\":\"server\",\"bench\":\"acks-per-sec/batch{max_batch}-src{sources}\",\"acks_per_sec\":{acks_per_sec},\"max_batch\":{max_batch},\"sources\":{sources}}}"
            );

            // --- deterministic SimFs accounting + cost model ---
            let fs = SimFs::new(CrashPlan::none());
            let dw = DurableWarehouse::create(SimMedium(fs.clone()), fresh_ingest(), config())
                .expect("creates");
            let mut core = ServerCore::new(
                dw,
                BatchPolicy { max_batch, max_wait_micros: 1_000_000 },
            );
            let sessions: Vec<SessionId> = (0..sources)
                .map(|s| core.connect(SourceId::new(format!("src{s}"))).session)
                .collect();
            let syncs_before = fs.syncs();
            pump(&mut core, &sessions, &schedule);
            let fsyncs = fs.syncs() - syncs_before;
            let storage = core.warehouse().storage_stats();
            assert_eq!(storage.wal_syncs, fsyncs, "accounting cross-check");
            // Modeled cost per acked envelope: appends at unit cost,
            // fsyncs at FSYNC_COST; modeled rate is acks per kilo-unit.
            let cost = ENVELOPES as u64 + fsyncs * FSYNC_COST;
            let modeled_rate = ENVELOPES as u64 * 1_000 / cost;
            modeled.insert((sources, max_batch), modeled_rate);
            println!(
                "{{\"group\":\"server\",\"bench\":\"fsync-accounting/batch{max_batch}-src{sources}\",\"acks\":{ENVELOPES},\"fsyncs\":{fsyncs},\"modeled_acks_per_kunit\":{modeled_rate},\"max_batch\":{max_batch},\"sources\":{sources}}}"
            );
        }
    }

    // The headline claim, both ways: measured wall clock and the
    // deterministic accounting model. speedup_x100 is the ratio ×100.
    for &sources in &[1usize, 4] {
        for &batch in &[16usize, 64] {
            let measured_x100 =
                measured[&(sources, batch)] * 100 / measured[&(sources, 1)].max(1);
            let modeled_x100 = modeled[&(sources, batch)] * 100 / modeled[&(sources, 1)].max(1);
            println!(
                "{{\"group\":\"server\",\"bench\":\"claim/batch{batch}-vs-1-src{sources}\",\"measured_speedup_x100\":{measured_x100},\"modeled_speedup_x100\":{modeled_x100},\"threshold_x100\":500}}"
            );
        }
    }

    for dir in scratch_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
