//! Serving under a fallible medium: what degraded mode costs.
//!
//! Drives [`ServerCore`] end to end over the fault-injecting
//! [`FaultyFs`] at increasing transient-error rates (0‰ / 50‰ / 200‰ on
//! appends and fsyncs), reporting wall-clock acked envelopes per second
//! with the retry/backoff machinery absorbing every injected fault —
//! every run must still ack all `ENVELOPES` envelopes (the completeness
//! claim row pins that at exactly 100%). Alongside the wall clock, a
//! deterministic pass over the `sched` virtual clock models fsync
//! stalls (500µs per sync) and prices commit latency per batch cap,
//! pinning the claim that group commit amortizes a stalling medium:
//! batch = 16 sustains ≥ 5× the modeled acks/sec of batch = 1 under the
//! same stall. `scripts/bench.sh` collects every line into
//! `BENCH_faults.json`.

use dwc_relalg::{Catalog, DbState, Relation, Tuple, Update, Value};
use dwc_testkit::crash::{CrashPlan, SimFs};
use dwc_testkit::iofault::{FaultyError, FaultyFs, MediumFaultPlan};
use dwc_testkit::sched::VirtualClock;
use dwc_testkit::Bench;
use dwc_warehouse::channel::{Envelope, SequencedSource, SourceId};
use dwc_warehouse::ingest::{IngestConfig, IngestingIntegrator};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::server::{BatchPolicy, RetryPolicy, ServerCore, ServerError, SessionId};
use dwc_warehouse::{
    DurabilityConfig, DurableWarehouse, MediumError, StorageMedium, WarehouseSpec,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::rc::Rc;

/// Acked envelopes per timed iteration (all configurations).
const ENVELOPES: usize = 64;

/// Modeled fsync stall for the virtual-clock pass, in microseconds.
const STALL_MICROS: u64 = 500;

/// Pinned plan seed — every iteration replays the same fault sequence
/// (chosen so each nonzero error rate injects at least one fault).
const SEED: u64 = 0xFA57_BE2C_0000_0015;

fn chain_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_schema("R", &["a", "b"]).expect("static schema");
    c.add_schema("S", &["b", "c"]).expect("static schema");
    c.add_schema("T", &["c"]).expect("static schema");
    c
}

fn row(rel_attrs: &[&str], values: &[i64]) -> Relation {
    let mut rel = Relation::empty(dwc_relalg::AttrSet::from_names(rel_attrs));
    rel.insert(Tuple::new(values.iter().map(|&v| Value::int(v)).collect()))
        .expect("static arity");
    rel
}

fn fresh_ingest() -> IngestingIntegrator {
    let aug = WarehouseSpec::parse(chain_catalog(), &[("V", "R join S")])
        .expect("static spec")
        .augment()
        .expect("chain warehouse augments");
    let site = SourceSite::new(chain_catalog(), DbState::empty_for(&chain_catalog())).expect("site");
    let integ = Integrator::initial_load(aug, &site).expect("initial load");
    IngestingIntegrator::new(integ, IngestConfig::default()).expect("ingestor")
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        sync_every_append: false,
        retain_generations: 2,
        snapshot_every: None,
        verify_on_open: true,
    }
}

/// Short virtual backoffs: the retry schedule still doubles, but a
/// degraded run spends its time in IO, not in modeled waiting.
fn bench_retry() -> RetryPolicy {
    RetryPolicy { max_attempts: 4, base_backoff_micros: 10, max_backoff_micros: 160 }
}

/// `ENVELOPES` single-row inserts from one sequenced source.
fn build_schedule() -> Vec<Envelope> {
    let site = SourceSite::new(chain_catalog(), DbState::empty_for(&chain_catalog())).expect("site");
    let mut src = SequencedSource::new(SourceId::new("src0"), site);
    (0..ENVELOPES)
        .map(|i| {
            let v = i as i64;
            src.apply_update(&Update::inserting("R", row(&["a", "b"], &[v, v + 1])))
                .expect("source applies its own update")
        })
        .collect()
}

/// FaultyFs → StorageMedium adapter (private copy; the bench crate has
/// no access to the integration-test helpers).
#[derive(Clone, Debug)]
struct FaultyMedium(FaultyFs);

fn faulty_err(op: &'static str, path: &str, e: FaultyError) -> MediumError {
    if e.is_transient() {
        MediumError::transient(op, path, e.to_string())
    } else {
        MediumError::fatal(op, path, e.to_string())
    }
}

impl StorageMedium for FaultyMedium {
    fn read(&self, path: &str) -> Result<Vec<u8>, MediumError> {
        self.0.read(path).map_err(|e| faulty_err("read", path, e))
    }
    fn write_all(&self, path: &str, bytes: &[u8]) -> Result<(), MediumError> {
        self.0.write_all(path, bytes).map_err(|e| faulty_err("write", path, e))
    }
    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), MediumError> {
        self.0.append(path, bytes).map_err(|e| faulty_err("append", path, e))
    }
    fn sync(&self, path: &str) -> Result<(), MediumError> {
        self.0.sync(path).map_err(|e| faulty_err("sync", path, e))
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), MediumError> {
        self.0.rename(from, to).map_err(|e| faulty_err("rename", from, e))
    }
    fn remove(&self, path: &str) -> Result<(), MediumError> {
        self.0.remove(path).map_err(|e| faulty_err("remove", path, e))
    }
    fn list(&self) -> Result<Vec<String>, MediumError> {
        Ok(self.0.list())
    }
    fn exists(&self, path: &str) -> bool {
        self.0.exists(path)
    }
}

/// Delivers the whole schedule and drains every retry/heal deadline to
/// completion, returning the ack count. Transient-only plans always
/// converge; a wedged loop fails loudly through the tick budget.
fn drive(
    core: &mut ServerCore<FaultyMedium>,
    session: SessionId,
    schedule: &[Envelope],
) -> usize {
    let mut acks = 0;
    let mut now = 0u64;
    let mut budget = 100_000u32;
    let mut tick = |core: &mut ServerCore<FaultyMedium>, now: u64, acks: &mut usize| {
        budget = budget.checked_sub(1).expect("tick budget exhausted (wedged retry loop?)");
        *acks += core.tick(now).expect("transient-only plan never fails a tick").len();
    };
    for env in schedule {
        now += 10;
        loop {
            match core.deliver(session, env.clone(), now) {
                Ok(released) => {
                    acks += released.len();
                    break;
                }
                Err(ServerError::Busy { .. }) | Err(ServerError::ReadOnly { .. }) => {
                    now = now.max(core.next_deadline().expect("nacked with nothing pending"));
                    tick(core, now, &mut acks);
                }
                Err(e) => panic!("unexpected delivery error: {e}"),
            }
        }
        while core.next_deadline().is_some_and(|d| d <= now) {
            tick(core, now, &mut acks);
        }
    }
    acks += core.flush().expect("flush").len();
    while let Some(deadline) = core.next_deadline() {
        now = now.max(deadline);
        tick(core, now, &mut acks);
    }
    acks
}

/// One full serving run over a fresh faulty disk; returns (acks,
/// injected fault count, group commits).
fn run_once(plan: MediumFaultPlan, max_batch: usize) -> (usize, u64, u64) {
    // Creation runs over a clean medium; the faults arm for serving.
    let fs = FaultyFs::new(SimFs::new(CrashPlan::none()), MediumFaultPlan::clean());
    let dw = DurableWarehouse::create(FaultyMedium(fs.clone()), fresh_ingest(), config())
        .expect("create over a clean medium");
    fs.set_plan(plan);
    let mut core = ServerCore::new(dw, BatchPolicy { max_batch, max_wait_micros: 1_000 });
    core.set_retry_policy(bench_retry());
    let session = core.connect(SourceId::new("src0")).session;
    let acks = drive(&mut core, session, &build_schedule());
    let commits = core.warehouse().storage_stats().group_commits;
    (acks, fs.injected(), commits)
}

fn main() {
    // --- wall clock at increasing transient-error rates ---
    for &permille in &[0u16, 50, 200] {
        let plan = MediumFaultPlan {
            seed: SEED ^ u64::from(permille),
            append_permille: permille,
            sync_permille: permille,
            ..MediumFaultPlan::clean()
        };
        // Deterministic side channel: fault/retry volume of one run.
        let (acks, injected, _) = run_once(plan.clone(), 16);
        assert_eq!(acks, ENVELOPES, "degraded mode must not lose envelopes");

        let group = Bench::new("faults")
            .field_num("error_permille", u64::from(permille))
            .field_num("envelopes_per_iter", ENVELOPES as u64)
            .field_num("injected_per_run", injected);
        let stats = group.run(&format!("serve/transient-{permille}permille"), || {
            black_box(run_once(plan.clone(), 16).0)
        });
        let acks_per_sec =
            (ENVELOPES as u128 * 1_000_000_000 / u128::from(stats.median_ns.max(1))) as u64;
        println!(
            "{{\"group\":\"faults\",\"bench\":\"acks-per-sec/transient-{permille}permille\",\"acks_per_sec\":{acks_per_sec},\"error_permille\":{permille},\"injected_per_run\":{injected}}}"
        );
        // The completeness claim: every envelope acked despite faults.
        println!(
            "{{\"group\":\"faults\",\"bench\":\"claim/complete-at-{permille}permille\",\"acked_x100\":{},\"threshold_x100\":100}}",
            acks * 100 / ENVELOPES
        );
    }

    // --- modeled fsync stalls over the virtual clock ---
    let mut modeled: BTreeMap<usize, u64> = BTreeMap::new();
    for &max_batch in &[1usize, 16] {
        let clock = Rc::new(RefCell::new(VirtualClock::new()));
        let plan = MediumFaultPlan {
            seed: SEED,
            sync_latency_micros: STALL_MICROS,
            ..MediumFaultPlan::clean()
        };
        let fs =
            FaultyFs::with_clock(SimFs::new(CrashPlan::none()), plan, Rc::clone(&clock));
        let dw = DurableWarehouse::create(FaultyMedium(fs.clone()), fresh_ingest(), config())
            .expect("create");
        let after_create = clock.borrow().now();
        let mut core = ServerCore::new(dw, BatchPolicy { max_batch, max_wait_micros: 1_000 });
        let session = core.connect(SourceId::new("src0")).session;
        let acks = drive(&mut core, session, &build_schedule());
        assert_eq!(acks, ENVELOPES);
        let commits = core.warehouse().storage_stats().group_commits.max(1);
        let serve_micros = (clock.borrow().now() - after_create).max(1);
        let latency_per_commit = serve_micros / commits;
        let modeled_rate = ENVELOPES as u64 * 1_000_000 / serve_micros;
        modeled.insert(max_batch, modeled_rate);
        println!(
            "{{\"group\":\"faults\",\"bench\":\"fsync-stall/batch{max_batch}\",\"stall_micros\":{STALL_MICROS},\"commits\":{commits},\"modeled_commit_latency_micros\":{latency_per_commit},\"modeled_acks_per_sec\":{modeled_rate},\"max_batch\":{max_batch}}}"
        );
    }
    let amortized_x100 = modeled[&16] * 100 / modeled[&1].max(1);
    println!(
        "{{\"group\":\"faults\",\"bench\":\"claim/batch16-amortizes-stalls\",\"modeled_speedup_x100\":{amortized_x100},\"threshold_x100\":500}}"
    );
}
