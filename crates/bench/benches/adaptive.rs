//! E21: adaptive maintenance vs the fixed strategies, end-to-end
//! through the ingest path.
//!
//! Each row times one `IngestingIntegrator::offer` of a single-tuple
//! report on a freshly cloned ingestor (the clone is identical
//! common-mode overhead across strategies) whose maintenance policy is
//! pinned to one strategy — or plans adaptively with a pre-warmed
//! decision cache, the steady state of a long-running server. Rows are
//! tagged with a `strategy` field so the sweep can be compared against
//! the raw `maintenance` group.
//!
//! A final `planner/choose` row times the bare cost-model ranking at
//! two state sizes six orders of magnitude apart: planning is O(plan),
//! tens of microseconds, never O(data).

use dwc_analyze::cost::CostConstants;
use dwc_analyze::planner::{choose, PlannerInputs, WorkloadProfile};
use dwc_bench::experiments::{fig1_catalog, fig1_state};
use dwc_relalg::{RelName, Relation, Tuple, Update, Value};
use dwc_testkit::Bench;
use dwc_warehouse::integrator::{Integrator, IntegratorConfig};
use dwc_warehouse::planner::MaintenanceStrategy;
use dwc_warehouse::{
    AdaptivePolicy, Envelope, IngestConfig, IngestingIntegrator, SourceId, WarehouseSpec,
};
use std::hint::black_box;

fn insertion(i: usize, clerks: usize) -> Update {
    let mut rows = Relation::empty(dwc_relalg::AttrSet::from_names(&["clerk", "item"]));
    rows.insert(Tuple::new(vec![
        Value::str(&format!("clerk{}", i % clerks)),
        Value::str(&format!("bench-item{i}")),
    ]))
    .expect("arity");
    Update::inserting("Sale", rows)
}

fn envelope(seq: u64, i: usize, clerks: usize) -> Envelope {
    Envelope { source: SourceId::new("bench"), epoch: 0, seq, report: insertion(i, clerks) }
}

/// An ingestor over the scaled fig1 warehouse with `policy` installed
/// and one report already applied — decision cache warm, mirrors live.
fn warmed(n: usize, clerks: usize, policy: AdaptivePolicy) -> IngestingIntegrator {
    let catalog = fig1_catalog(false);
    let db = fig1_state(n, clerks, false, 42);
    let aug = WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")])
        .expect("static spec")
        .augment()
        .expect("complement exists");
    let state = aug.materialize(&db).expect("materializes");
    let integ = Integrator::from_state(aug, state, IntegratorConfig { cache_inverses: true })
        .expect("state matches spec");
    let mut ingest =
        IngestingIntegrator::new(integ, IngestConfig::default()).expect("accept gate");
    ingest.set_policy(policy);
    ingest.offer(&envelope(0, 0, clerks));
    ingest
}

fn main() {
    let threads = dwc_relalg::exec::threads() as u64;
    for &n in &[1_000usize, 10_000] {
        let clerks = n / 4;
        let strategies: Vec<(&str, AdaptivePolicy)> = vec![
            ("adaptive", AdaptivePolicy::adaptive()),
            ("incremental", AdaptivePolicy::fixed(MaintenanceStrategy::Incremental)),
            (
                "incremental-mirrored",
                AdaptivePolicy::fixed(MaintenanceStrategy::MirroredIncremental),
            ),
            ("reconstruct", AdaptivePolicy::fixed(MaintenanceStrategy::Reconstruction)),
        ];
        for (tag, policy) in strategies {
            let base = warmed(n, clerks, policy);
            let next = envelope(1, 1, clerks);
            let group = Bench::new("maintenance-adaptive")
                .field_num("threads", threads)
                .field_str("strategy", tag);
            group.run(&format!("{tag}/{n}"), || {
                let mut ing = base.clone();
                black_box(ing.offer(&next))
            });
        }
        // The clone alone, for reading the common-mode overhead out of
        // the rows above.
        let base = warmed(n, clerks, AdaptivePolicy::off());
        Bench::new("maintenance-adaptive")
            .field_num("threads", threads)
            .field_str("strategy", "clone-baseline")
            .run(&format!("clone-baseline/{n}"), || black_box(base.clone()));
    }

    // Bare planning cost, flat across six orders of magnitude of
    // (claimed) state size.
    let catalog = fig1_catalog(false);
    let aug = WarehouseSpec::parse(catalog.clone(), &[("Sold", "Sale join Emp")])
        .expect("static spec")
        .augment()
        .expect("complement exists");
    let definitions = aug.all_definitions();
    let inputs = PlannerInputs {
        catalog: aug.catalog(),
        definitions: &definitions,
        inverses: aug.inverse(),
    };
    let consts = CostConstants::calibrated();
    for rows in [10_000.0f64, 1e10] {
        let mut profile = WorkloadProfile::default();
        profile.base_rows.insert(RelName::new("Sale"), rows);
        profile.base_rows.insert(RelName::new("Emp"), rows / 4.0);
        for &view in definitions.keys() {
            profile.stored_rows.insert(view, rows);
        }
        profile.delta_rows.insert(RelName::new("Sale"), 1.0);
        profile.mirrors_cached = true;
        Bench::new("maintenance-adaptive")
            .field_num("threads", threads)
            .field_str("strategy", "planner")
            .run(&format!("planner-choose/{}", rows as u64), || {
                black_box(choose(&inputs, &profile, &consts))
            });
    }
}
