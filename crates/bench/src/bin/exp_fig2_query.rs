//! Prints the fig2_query experiment tables (pass `--quick` for the smoke configuration).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in dwc_bench::experiments::fig2_query::run(quick) {
        println!("{table}");
    }
}
