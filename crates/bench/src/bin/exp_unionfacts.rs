//! Prints the unionfacts experiment tables (pass `--quick` for the smoke configuration).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in dwc_bench::experiments::unionfacts::run(quick) {
        println!("{table}");
    }
}
