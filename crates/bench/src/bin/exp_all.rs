//! Prints every experiment table in DESIGN.md order (pass `--quick` for
//! the smoke configuration used by the test suite).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in dwc_bench::experiments::run_all(quick) {
        println!("{table}");
    }
}
