//! Prints the fig3_update experiment tables (pass `--quick` for the smoke configuration).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in dwc_bench::experiments::fig3_update::run(quick) {
        println!("{table}");
    }
}
