//! Prints the ex21 experiment tables (pass `--quick` for the smoke configuration).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in dwc_bench::experiments::ex21::run(quick) {
        println!("{table}");
    }
}
