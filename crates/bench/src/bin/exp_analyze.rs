//! Prints the E16 static-analyzer cost tables (pass `--quick` for the smoke configuration).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    for table in dwc_bench::experiments::analyze::run(quick) {
        println!("{table}");
    }
}
