//! Plain-text experiment reports.
//!
//! Experiments return [`Table`]s so the binaries can print them and the
//! integration tests can assert on the raw cells instead of scraping
//! stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// A cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// An integer quantity.
    Int(i64),
    /// A float quantity, printed with three significant decimals.
    Float(f64),
    /// A duration, printed in adaptive units.
    Time(Duration),
}

impl Cell {
    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload (floats and ints).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(*i as f64),
            Cell::Float(f) => Some(*f),
            Cell::Time(d) => Some(d.as_secs_f64()),
            _ => None,
        }
    }

    /// The text payload, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Cell::Text(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(t) => write!(f, "{t}"),
            Cell::Int(i) => write!(f, "{i}"),
            Cell::Float(x) => write!(f, "{x:.3}"),
            Cell::Time(d) => {
                let us = d.as_secs_f64() * 1e6;
                if us < 1000.0 {
                    write!(f, "{us:.1}us")
                } else if us < 1_000_000.0 {
                    write!(f, "{:.2}ms", us / 1000.0)
                } else {
                    write!(f, "{:.3}s", d.as_secs_f64())
                }
            }
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<i64> for Cell {
    fn from(i: i64) -> Self {
        Cell::Int(i)
    }
}

impl From<usize> for Cell {
    fn from(i: usize) -> Self {
        Cell::Int(i64::try_from(i).expect("cell value out of range"))
    }
}

impl From<f64> for Cell {
    fn from(f: f64) -> Self {
        Cell::Float(f)
    }
}

impl From<Duration> for Cell {
    fn from(d: Duration) -> Self {
        Cell::Time(d)
    }
}

impl From<bool> for Cell {
    fn from(b: bool) -> Self {
        Cell::Text(if b { "yes".into() } else { "no".into() })
    }
}

/// A titled table of results.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and title, e.g. `E1 (Figure 1): …`.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
    /// Free-form takeaways appended after the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; its arity must match the header.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity mismatch in table `{}`",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a takeaway note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Looks up a column index by header name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All values of one column.
    pub fn column(&self, name: &str) -> Vec<&Cell> {
        match self.column_index(name) {
            Some(i) => self.rows.iter().map(|r| &r[i]).collect(),
            None => Vec::new(),
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{c:>width$}", width = widths[i])?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)?;
        }
        for note in &self.notes {
            writeln!(f, "-- {note}")?;
        }
        Ok(())
    }
}

/// Times `f` over `iters` runs and returns the mean duration. Small
/// experiments use this; the `benches/` timers provide the rigorous
/// numbers.
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / u32::try_from(iters).expect("iteration count fits u32")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_render() {
        assert_eq!(Cell::from(42usize).to_string(), "42");
        assert_eq!(Cell::from(1.5f64).to_string(), "1.500");
        assert_eq!(Cell::from("x").to_string(), "x");
        assert_eq!(Cell::from(true).to_string(), "yes");
        assert_eq!(Cell::from(Duration::from_micros(15)).to_string(), "15.0us");
        assert_eq!(Cell::from(Duration::from_millis(2)).to_string(), "2.00ms");
        assert_eq!(Cell::from(Duration::from_secs(3)).to_string(), "3.000s");
    }

    #[test]
    fn cell_accessors() {
        assert_eq!(Cell::Int(7).as_int(), Some(7));
        assert_eq!(Cell::Int(7).as_f64(), Some(7.0));
        assert_eq!(Cell::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Cell::Text("a".into()).as_text(), Some("a"));
        assert_eq!(Cell::Text("a".into()).as_int(), None);
    }

    #[test]
    fn table_layout() {
        let mut t = Table::new("T", &["n", "value"]);
        t.row(vec![Cell::from(1usize), Cell::from("short")]);
        t.row(vec![Cell::from(100usize), Cell::from("a longer value")]);
        t.note("note here");
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("a longer value"));
        assert!(s.contains("-- note here"));
        assert_eq!(t.column("n").len(), 2);
        assert_eq!(t.column("nope").len(), 0);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec![Cell::from(1usize)]);
    }

    #[test]
    fn time_mean_is_positive() {
        let d = time_mean(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(d.as_nanos() < 1_000_000_000);
    }
}
