#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # dwc-bench — the experiment harness
//!
//! One regenerator per figure/example of the paper (the paper is a
//! theory paper: its "evaluation" consists of worked examples, two
//! commuting-diagram figures, and the Section 5 star-schema
//! application). Each experiment lives in [`experiments`] as a library
//! function returning a printable [`report::Table`]; thin binaries under
//! `src/bin/` print them, and testkit benches under `benches/` time
//! the performance-sensitive ones.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p dwc-bench --release --bin exp_all
//! ```
//!
//! or one experiment, e.g. `cargo run -p dwc-bench --release --bin exp_fig1`.

pub mod experiments;
pub mod report;
