//! The experiment suite (see DESIGN.md's per-experiment index).
//!
//! Every function takes a `quick` flag: `false` is the full sweep the
//! binaries run, `true` is a seconds-scale smoke configuration used by
//! the integration tests so the whole suite stays exercised under
//! `cargo test`.

pub mod ablation;
pub mod aggregates;
pub mod analyze;
pub mod cost;
pub mod ex21;
pub mod ex22;
pub mod ex23;
pub mod ex24;
pub mod ex41;
pub mod fig1;
pub mod fig2_query;
pub mod fig3_update;
pub mod sigma;
pub mod star;
pub mod unionfacts;

use dwc_relalg::{Catalog, DbState, Relation, Tuple, Value};

/// Builds the Figure 1 catalog (Sale(item, clerk), Emp(clerk*, age)),
/// optionally with the Example 2.4 foreign key Sale.clerk → Emp.clerk.
pub fn fig1_catalog(with_fk: bool) -> Catalog {
    let mut c = Catalog::new();
    c.add_schema("Sale", &["item", "clerk"]).expect("static schema");
    c.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"]).expect("static schema");
    if with_fk {
        c.add_foreign_key("Sale", "Emp", &["clerk"]).expect("static schema");
    }
    c
}

/// A scaled Figure 1 instance: `n_emps` clerks, `n_sales` sales. A tenth
/// of the clerks sell nothing (so `C_Emp` is non-empty), and — unless
/// `fk_safe` — a twentieth of the sales reference unknown clerks (so
/// `C_Sale` is non-empty too).
pub fn fig1_state(n_sales: usize, n_emps: usize, fk_safe: bool, seed: u64) -> DbState {
    let mut rng = dwc_relalg::gen::SplitMix64::new(seed);
    let mut db = DbState::new();

    let emp_attrs = dwc_relalg::AttrSet::from_names(&["age", "clerk"]);
    let mut emp = Relation::empty(emp_attrs);
    for k in 0..n_emps {
        // {age, clerk}
        emp.insert(Tuple::new(vec![
            Value::int(20 + rng.below(45) as i64),
            Value::str(&format!("clerk{k}")),
        ]))
        .expect("arity");
    }
    // Clerks eligible to sell: all but the last tenth.
    let selling = (n_emps - n_emps / 10).max(1);

    let sale_attrs = dwc_relalg::AttrSet::from_names(&["clerk", "item"]);
    let mut sale = Relation::empty(sale_attrs);
    for i in 0..n_sales {
        let clerk = if !fk_safe && rng.chance(1, 20) {
            format!("ghost{}", rng.below(64))
        } else {
            format!("clerk{}", rng.index(selling))
        };
        // {clerk, item}
        sale.insert(Tuple::new(vec![Value::str(&clerk), Value::str(&format!("item{i}"))]))
            .expect("arity");
    }
    db.insert_relation("Emp", emp);
    db.insert_relation("Sale", sale);
    db
}

/// Runs every experiment and returns all tables (what `exp_all` prints).
pub fn run_all(quick: bool) -> Vec<crate::report::Table> {
    let mut out = Vec::new();
    out.extend(fig1::run(quick));
    out.extend(fig2_query::run(quick));
    out.extend(fig3_update::run(quick));
    out.extend(ex21::run(quick));
    out.extend(ex22::run(quick));
    out.extend(ex23::run(quick));
    out.extend(ex24::run(quick));
    out.extend(ex41::run(quick));
    out.extend(sigma::run(quick));
    out.extend(star::run(quick));
    out.extend(cost::run(quick));
    out.extend(aggregates::run(quick));
    out.extend(unionfacts::run(quick));
    out.extend(ablation::run(quick));
    out.extend(analyze::run(quick));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_state_scales_and_has_complement_material() {
        let db = fig1_state(200, 50, false, 1);
        let sale = db.relation(dwc_relalg::RelName::new("Sale")).unwrap();
        let emp = db.relation(dwc_relalg::RelName::new("Emp")).unwrap();
        assert_eq!(sale.len(), 200);
        assert_eq!(emp.len(), 50);
        // Key holds on Emp.
        db.check_constraints(&fig1_catalog(false)).unwrap();
        // Some clerks sell nothing.
        let unsold = dwc_relalg::RaExpr::parse(
            "pi[clerk](Emp) minus pi[clerk](Sale)",
        )
        .unwrap()
        .eval(&db)
        .unwrap();
        assert!(!unsold.is_empty());
        // Some sales have ghost clerks (no FK).
        let ghosts = dwc_relalg::RaExpr::parse(
            "pi[clerk](Sale) minus pi[clerk](Emp)",
        )
        .unwrap()
        .eval(&db)
        .unwrap();
        assert!(!ghosts.is_empty());
    }

    #[test]
    fn fk_safe_state_satisfies_fk() {
        let db = fig1_state(100, 30, true, 2);
        db.check_constraints(&fig1_catalog(true)).unwrap();
    }
}
