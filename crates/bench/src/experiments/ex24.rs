//! E7 — Example 2.4: referential integrity empties a complement.
//!
//! With `π_clerk(Sale) ⊆ π_clerk(Emp)` every sale has a join partner in
//! `Emp`, so `C_Sale ≡ ∅` — the complement degenerates to `{C_Emp, ∅}`.
//! The experiment contrasts the FK and no-FK regimes at scale: without
//! the FK the warehouse must store the dangling sales; with it, nothing.

use crate::report::{Cell, Table};
use dwc_core::constrained::complement_of;
use dwc_core::psj::{NamedView, PsjView};
use dwc_relalg::RelName;

/// Runs E7.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[200] } else { &[200, 2_000, 20_000] };
    let mut t = Table::new(
        "E7 (Ex 2.4): C_Sale under referential integrity",
        &["|Sale|", "FK declared", "|C_Sale|", "|C_Emp|", "C_Sale provably empty"],
    );

    for &n in sizes {
        for fk in [false, true] {
            let catalog = super::fig1_catalog(fk);
            let views = vec![NamedView::new(
                "Sold",
                PsjView::join_of(&catalog, &["Sale", "Emp"]).expect("static"),
            )];
            let comp = complement_of(&catalog, &views).expect("complement");
            let db = super::fig1_state(n, (n / 4).max(8), fk, 5 + n as u64);
            db.check_constraints(&catalog).expect("state satisfies constraints");
            assert_eq!(comp.verify_on(&catalog, &views, &db).expect("evaluates"), Ok(()));
            let m = comp.materialize(&db).expect("materializes");
            let c_sale = comp.entry_for(RelName::new("Sale")).expect("entry");
            let c_emp = comp.entry_for(RelName::new("Emp")).expect("entry");
            t.row(vec![
                Cell::from(n),
                Cell::from(fk),
                Cell::from(m.relation(c_sale.name).expect("stored").len()),
                Cell::from(m.relation(c_emp.name).expect("stored").len()),
                Cell::from(c_sale.is_provably_empty()),
            ]);
        }
    }
    t.note("paper claim: the FK makes C_Sale identically empty (and the algorithm knows it statically)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn fk_empties_c_sale() {
        let tables = super::run(true);
        let t = &tables[0];
        let fk = t.column("FK declared");
        let c_sale = t.column("|C_Sale|");
        let provably = t.column("C_Sale provably empty");
        for i in 0..t.rows.len() {
            if fk[i].as_text() == Some("yes") {
                assert_eq!(c_sale[i].as_int(), Some(0));
                assert_eq!(provably[i].as_text(), Some("yes"));
            } else {
                assert!(c_sale[i].as_int().unwrap() > 0, "no-FK state should have dangling sales");
                assert_eq!(provably[i].as_text(), Some("no"));
            }
        }
    }
}
