//! E2 — Figure 2 / Theorem 3.1: the query-independence commuting diagram.
//!
//! For a batch of source queries `Q`, translate each to `Q̄ = Q ∘ W⁻¹`
//! and check `Q(d) = Q̄(W(d))` on a scaled Figure 1 instance, reporting
//! answer sizes, expression growth, and evaluation time at the source
//! versus at the warehouse.
//!
//! Expected shape: every row commutes; the translated expression is
//! larger (it inlines the inverse), warehouse evaluation is the same
//! order of magnitude.

use crate::report::{time_mean, Cell, Table};
use dwc_relalg::RaExpr;
use dwc_warehouse::WarehouseSpec;

const QUERIES: &[(&str, &str)] = &[
    ("Q-copy-sale", "Sale"),
    ("Q-copy-emp", "Emp"),
    ("Q-union (Ex 1.2)", "pi[clerk](Sale) union pi[clerk](Emp)"),
    ("Q-age (Sec 3)", "pi[age](sigma[item = 'item7'](Sale) join Emp)"),
    ("Q-antijoin", "pi[clerk](Emp) minus pi[clerk](Sale)"),
    ("Q-range", "sigma[age >= 40](Emp) join Sale"),
];

/// Runs E2.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 200 } else { 20_000 };
    let iters = if quick { 2 } else { 10 };
    let catalog = super::fig1_catalog(false);
    let db = super::fig1_state(n, (n / 4).max(8), false, 7);
    let spec = WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")])
        .expect("static spec");
    let aug = spec.augment().expect("complement exists");
    let w = aug.materialize(&db).expect("materializes");

    let mut t = Table::new(
        format!("E2 (Figure 2 / Thm 3.1): query translation, |Sale| = {n}"),
        &[
            "query",
            "commutes",
            "|answer|",
            "Q size",
            "Qbar size",
            "t at source",
            "t at warehouse",
        ],
    );

    for (name, text) in QUERIES {
        let q = RaExpr::parse(text).expect("static query");
        let translated = aug.translate_query(&q).expect("translates");
        let at_source = q.eval(&db).expect("evaluates");
        let at_warehouse = translated.eval(&w).expect("evaluates");
        let src_time = time_mean(iters, || {
            std::hint::black_box(q.eval(&db).expect("evaluates"));
        });
        let wh_time = time_mean(iters, || {
            std::hint::black_box(translated.eval(&w).expect("evaluates"));
        });
        t.row(vec![
            Cell::from(*name),
            Cell::from(at_source == at_warehouse),
            Cell::from(at_source.len()),
            Cell::from(q.size()),
            Cell::from(translated.size()),
            Cell::from(src_time),
            Cell::from(wh_time),
        ]);
    }

    t.note("paper claim: Q(d) = Qbar(W(d)) for every query (the diagram commutes)");
    t.note("Qbar is syntactically larger: it inlines the inverse expressions W^-1");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_queries_commute() {
        let tables = super::run(true);
        let t = &tables[0];
        assert_eq!(t.rows.len(), super::QUERIES.len());
        for c in t.column("commutes") {
            assert_eq!(c.as_text(), Some("yes"));
        }
        // translation never shrinks the expression
        let qs = t.column("Q size");
        let qbars = t.column("Qbar size");
        for (a, b) in qs.iter().zip(qbars.iter()) {
            assert!(b.as_int().unwrap() >= a.as_int().unwrap());
        }
    }
}
