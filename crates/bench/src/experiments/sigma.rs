//! E9 — end of Section 4: σ-views sit strictly between the notions.
//!
//! A warehouse of selection views is update-independent with *no*
//! complement (direct delta translation), yet not query-independent.
//! The experiment maintains a σ-warehouse over a stream without any
//! auxiliary data and exhibits the query-independence refutation
//! witness, then shows the complement restoring query independence —
//! quantifying the storage price of the stronger property.

use crate::report::{Cell, Table};
use dwc_relalg::{DbState, RaExpr, Relation, Tuple, Update, Value};
use dwc_warehouse::independence::{refute_query_independence, SigmaWarehouse};
use dwc_warehouse::WarehouseSpec;

fn catalog() -> dwc_relalg::Catalog {
    let mut c = dwc_relalg::Catalog::new();
    c.add_schema("R", &["x", "y"]).expect("static schema");
    c
}

fn state(n: usize, seed: u64) -> DbState {
    let mut rng = dwc_relalg::gen::SplitMix64::new(seed);
    let mut r = Relation::empty(dwc_relalg::AttrSet::from_names(&["x", "y"]));
    for i in 0..n {
        r.insert(Tuple::new(vec![
            Value::int(rng.below(1000) as i64),
            Value::int(i as i64),
        ]))
        .expect("arity");
    }
    let mut db = DbState::new();
    db.insert_relation("R", r);
    db
}

/// Runs E9.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 200 } else { 10_000 };
    let steps = if quick { 10 } else { 100 };
    let spec = WarehouseSpec::parse(catalog(), &[("W", "sigma[x >= 500](R)")])
        .expect("static spec");
    let sw = SigmaWarehouse::new(spec.clone()).expect("sigma warehouse");

    let mut db = state(n, 21);
    let mut w = sw.materialize(&db).expect("materializes");
    let mut rng = dwc_relalg::gen::SplitMix64::new(99);
    let mut exact = true;
    for i in 0..steps {
        let mut rows = Relation::empty(dwc_relalg::AttrSet::from_names(&["x", "y"]));
        rows.insert(Tuple::new(vec![
            Value::int(rng.below(1000) as i64),
            Value::int((n + i) as i64),
        ]))
        .expect("arity");
        let u = if rng.chance(1, 3) {
            // delete an arbitrary existing tuple instead
            match db.relation(dwc_relalg::RelName::new("R")).expect("state").iter().next() {
                Some(t) => {
                    let mut del =
                        Relation::empty(dwc_relalg::AttrSet::from_names(&["x", "y"]));
                    del.insert(t.clone()).expect("arity");
                    Update::deleting("R", del)
                }
                None => Update::inserting("R", rows),
            }
        } else {
            Update::inserting("R", rows)
        };
        let u = u.normalize(&db).expect("consistent");
        w = sw.maintain(&w, &u).expect("maintains");
        db = u.apply(&db).expect("applies");
        exact &= w == sw.materialize(&db).expect("materializes");
    }

    let mut t = Table::new(
        format!("E9 (Sec 4 end): sigma-warehouse W = sigma[x >= 500](R), |R| = {n}, {steps} updates"),
        &["property", "holds", "auxiliary tuples needed"],
    );
    t.row(vec![
        Cell::from("update independence (no complement)"),
        Cell::from(exact),
        Cell::from(0usize),
    ]);

    // Query independence fails without a complement…
    let q = RaExpr::parse("pi[y](sigma[x < 500](R))").expect("static query");
    let d1 = state(50, 1);
    let mut d2 = d1.clone();
    {
        // remove one tuple below the selection bound: same W-image
        let r = d2.relation(dwc_relalg::RelName::new("R")).expect("state").clone();
        let below = r.filter(|tup| tup.get(0).as_int().unwrap() < 500);
        let victim = below.iter().next();
        if let Some(victim) = victim {
            let mut smaller = r;
            smaller.remove(&victim);
            d2.insert_relation("R", smaller);
        }
    }
    let witness = refute_query_independence(&spec, &q, &[d1.clone(), d2])
        .expect("states evaluate");
    t.row(vec![
        Cell::from("query independence (no complement)"),
        Cell::from(witness.is_none()),
        Cell::from(0usize),
    ]);

    // …and the complement restores it, at a storage price.
    let aug = spec.clone().augment().expect("complement exists");
    let big = state(n, 21);
    let storage = aug
        .complement()
        .materialized_size(&big)
        .expect("materializes");
    let wstate = aug.materialize(&big).expect("materializes");
    let (src, wh) = (
        q.eval(&big).expect("evaluates"),
        aug.answer_at_warehouse(&q, &wstate).expect("answers"),
    );
    t.row(vec![
        Cell::from("query independence (with complement)"),
        Cell::from(src == wh),
        Cell::from(storage),
    ]);

    t.note(format!("refutation witness (state pair with equal W-image, different Q): {witness:?}"));
    t.note("paper claim: update independence < query independence; sigma-views witness the gap");
    t.note("the complement for a sigma-view is sigma[not gamma](R): exactly the hidden tuples");

    // Companion: the static self-maintainability analysis over view
    // shapes and update classes (the related-work axis: [3, 10, 18]).
    let mut analysis = Table::new(
        "E9 companion: static self-maintainability without a complement",
        &["view shape", "insert-only", "delete-only", "mixed"],
    );
    let shapes: &[(&str, WarehouseSpec)] = &[
        ("sigma[x >= 500](R)", spec.clone()),
        ("full copy sigma[true](R)", {
            let mut c = dwc_relalg::Catalog::new();
            c.add_schema("R", &["x", "y"]).expect("static");
            WarehouseSpec::parse(c, &[("W", "sigma[true](R)")]).expect("static")
        }),
        ("pi[x](R)", {
            let mut c = dwc_relalg::Catalog::new();
            c.add_schema("R", &["x", "y"]).expect("static");
            WarehouseSpec::parse(c, &[("W", "pi[x](R)")]).expect("static")
        }),
        ("R join S (Figure 1 shape)", {
            let mut c = dwc_relalg::Catalog::new();
            c.add_schema("R", &["x", "y"]).expect("static");
            c.add_schema("S", &["y", "z"]).expect("static");
            WarehouseSpec::parse(c, &[("W", "R join S")]).expect("static")
        }),
    ];
    use dwc_warehouse::independence::{self_maintainable_without_complement, UpdateClass};
    let touched: std::collections::BTreeSet<dwc_relalg::RelName> =
        [dwc_relalg::RelName::new("R")].into();
    for (label, shape_spec) in shapes {
        let check = |class| {
            self_maintainable_without_complement(shape_spec, &touched, class)
                .expect("analysis runs")
        };
        analysis.row(vec![
            Cell::from(*label),
            Cell::from(check(UpdateClass::InsertOnly)),
            Cell::from(check(UpdateClass::DeleteOnly)),
            Cell::from(check(UpdateClass::Mixed)),
        ]);
    }
    analysis.note("derived from the delta rules: does any base (non-delta) reference survive folding stored views?");
    analysis.note("projection views are insert-only self-maintainable (they read their own old state) — the [10] criterion recovered mechanically");
    analysis.note("`no` is the cue to store a complement; pairing a view with a copy restores `yes` (the multi-view effect of [14])");
    vec![t, analysis]
}

#[cfg(test)]
mod tests {
    #[test]
    fn sigma_gap_is_exhibited() {
        let tables = super::run(true);
        let t = &tables[0];
        let holds = t.column("holds");
        assert_eq!(holds[0].as_text(), Some("yes"), "update independence failed");
        assert_eq!(holds[1].as_text(), Some("no"), "query independence unexpectedly held");
        assert_eq!(holds[2].as_text(), Some("yes"), "complement did not restore it");
        let aux = t.column("auxiliary tuples needed");
        assert_eq!(aux[0].as_int(), Some(0));
        assert!(aux[2].as_int().unwrap() > 0);
    }

    #[test]
    fn static_analysis_table_matches_theory() {
        let tables = super::run(true);
        let a = &tables[1];
        let text = |row: usize, col: &str| a.column(col)[row].as_text().unwrap().to_owned();
        // sigma view: yes everywhere
        assert_eq!(text(0, "insert-only"), "yes");
        assert_eq!(text(0, "mixed"), "yes");
        // copy view: yes everywhere
        assert_eq!(text(1, "mixed"), "yes");
        // projection: insertions yes (reads its own old state),
        // deletions no (survivor information needed)
        assert_eq!(text(2, "insert-only"), "yes");
        assert_eq!(text(2, "delete-only"), "no");
        assert_eq!(text(2, "mixed"), "no");
        // join: no everywhere
        assert_eq!(text(3, "delete-only"), "no");
    }
}
