//! E13 — Section 5's union-integrated fact tables.
//!
//! A multi-site business: each site runs its own operational orders
//! database; the warehouse integrates them by union into one fact table
//! `AllOrders`, with the `site` dimension attribute determining every
//! tuple's origin. The paper's claim: despite the union (which the
//! complement machinery cannot handle in general), selecting on the
//! dimension attribute recovers the branches, so the warehouse is still
//! query- and update-independent.
//!
//! The experiment scales the per-site volume, streams per-site updates,
//! and checks: zero source queries, exact maintenance, commuting
//! cross-site queries, and complement storage (only mislabeled tuples —
//! tuples whose `site` tag disagrees with their origin — need storing).

use crate::report::{Cell, Table};
use dwc_core::unionfact::UnionFactView;
use dwc_core::PsjView;
use dwc_relalg::{
    Catalog, DbState, RaExpr, RelName, Relation, Tuple, Update, Value,
};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::WarehouseSpec;

const SITES: &[&str] = &["paris", "lyon", "berlin"];

fn multi_site_catalog() -> Catalog {
    let mut c = Catalog::new();
    for site in SITES {
        c.add_schema_with_key(
            &format!("Ord_{site}"),
            &["okey", "site", "custkey", "amount"],
            &["okey"],
        )
        .expect("static schema");
    }
    c
}

fn multi_site_spec() -> WarehouseSpec {
    let c = multi_site_catalog();
    let uf = UnionFactView::new(
        &c,
        "AllOrders",
        "site",
        SITES
            .iter()
            .map(|site| {
                (
                    Value::str(site),
                    PsjView::of_base(&c, &format!("Ord_{site}")).expect("static view"),
                )
            })
            .collect(),
    )
    .expect("static union fact");
    WarehouseSpec::new(c, vec![])
        .expect("static spec")
        .with_union_fact(uf)
        .expect("no collision")
}

/// `mislabeled`: fraction (per mille) of tuples whose site tag is wrong —
/// they cannot travel through the union fact and land in the complement.
fn multi_site_state(n_per_site: usize, mislabeled_permille: u64, seed: u64) -> DbState {
    let mut rng = dwc_relalg::gen::SplitMix64::new(seed);
    let mut db = DbState::new();
    let mut okey = 0i64;
    for site in SITES {
        let mut rel = Relation::empty(dwc_relalg::AttrSet::from_names(&[
            "okey", "site", "custkey", "amount",
        ]));
        for _ in 0..n_per_site {
            let tag = if rng.chance(mislabeled_permille, 1000) {
                "mislabeled"
            } else {
                site
            };
            // {amount, custkey, okey, site}
            rel.insert(Tuple::new(vec![
                Value::int(rng.below(1000) as i64),
                Value::int(rng.below(50) as i64),
                Value::int(okey),
                Value::str(tag),
            ]))
            .expect("arity");
            okey += 1;
        }
        db.insert_relation(format!("Ord_{site}").as_str(), rel);
    }
    db
}

fn new_order(site: &str, okey: i64) -> Update {
    let mut rows = Relation::empty(dwc_relalg::AttrSet::from_names(&[
        "okey", "site", "custkey", "amount",
    ]));
    rows.insert(Tuple::new(vec![
        Value::int(500),
        Value::int(1),
        Value::int(okey),
        Value::str(site),
    ]))
    .expect("arity");
    Update::inserting(format!("Ord_{site}").as_str(), rows)
}

/// Runs E13.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[100] } else { &[100, 1_000, 5_000] };
    let updates = if quick { 6 } else { 30 };

    let mut t = Table::new(
        "E13 (Sec 5): union-integrated fact table AllOrders over 3 sites",
        &[
            "n/site",
            "mislabeled",
            "|AllOrders|",
            "complement tuples",
            "src queries (maint)",
            "maint exact",
            "queries commute",
        ],
    );

    for &n in sizes {
        for permille in [0u64, 50] {
            let spec = multi_site_spec();
            let db = multi_site_state(n, permille, 7777 + n as u64);
            let mut site = SourceSite::new(spec.catalog().clone(), db.clone())
                .expect("valid state");
            let aug = spec.augment().expect("complement exists");
            let comp_tuples = aug
                .complement()
                .materialized_size(&db)
                .expect("materializes");
            let mut integ = Integrator::initial_load(aug, &site).expect("loads");
            site.reset_stats();

            let first_new_okey = (3 * n) as i64 + 1000;
            for (i, okey) in (first_new_okey..).take(updates).enumerate() {
                let report = site
                    .apply_update(&new_order(SITES[i % SITES.len()], okey))
                    .expect("valid update");
                integ.on_report(&report).expect("maintains");
            }
            let maint_queries = site.stats().queries;
            let expected = integ
                .warehouse()
                .materialize(site.oracle_state())
                .expect("materializes");
            let exact = integ.state() == &expected;

            // Cross-site analytical queries at the warehouse.
            let queries = [
                "pi[custkey](Ord_paris) union pi[custkey](Ord_lyon) union pi[custkey](Ord_berlin)",
                "sigma[amount >= 900](Ord_berlin)",
                "pi[okey](Ord_paris) minus pi[okey](Ord_lyon)",
            ];
            let mut commute = true;
            for text in queries {
                let q = RaExpr::parse(text).expect("static query");
                let (src, wh) = integ
                    .warehouse()
                    .query_commutes(&q, site.oracle_state())
                    .expect("evaluates");
                commute &= src == wh;
            }

            let all_orders = integ
                .state()
                .relation(RelName::new("AllOrders"))
                .expect("stored")
                .len();
            t.row(vec![
                Cell::from(n),
                Cell::Float(permille as f64 / 1000.0),
                Cell::from(all_orders),
                Cell::from(comp_tuples),
                Cell::from(maint_queries),
                Cell::from(exact),
                Cell::from(commute),
            ]);
        }
    }

    t.note("paper claim (Sec 5): union fact tables still support complements when a dimension attribute determines tuple origin");
    t.note("only mislabeled tuples (origin not derivable from the selector) consume complement storage");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn union_fact_warehouse_is_independent() {
        let tables = super::run(true);
        let t = &tables[0];
        for c in t.column("src queries (maint)") {
            assert_eq!(c.as_int(), Some(0));
        }
        for c in t.column("maint exact") {
            assert_eq!(c.as_text(), Some("yes"));
        }
        for c in t.column("queries commute") {
            assert_eq!(c.as_text(), Some("yes"));
        }
        // clean data stores nothing; mislabeled data stores something
        let mislabeled = t.column("mislabeled");
        let comp = t.column("complement tuples");
        for i in 0..t.rows.len() {
            if mislabeled[i].as_f64() == Some(0.0) {
                assert_eq!(comp[i].as_int(), Some(0), "clean data should need no complement");
            } else {
                assert!(comp[i].as_int().unwrap() > 0, "mislabeled tuples must be stored");
            }
        }
    }
}
