//! E10 — Section 5: the star-schema (TPC-D-like) application.
//!
//! Fact tables extracted by PSJ queries, dimension tables, foreign keys
//! throughout. The experiment measures, per scale factor:
//!
//! * complement storage per base relation (FKs empty the fact
//!   complements; the projected `DimPart` leaves a complement on
//!   `Part`),
//! * maintenance throughput over the operational update stream for the
//!   complement-based integrator vs the source-querying baselines,
//!   with source-query counts,
//! * the OLAP workload answered at the warehouse (commuting check).

use crate::report::{Cell, Table};
use dwc_starschema::queries::workload;
use dwc_starschema::{generate, star_warehouse, ScaleConfig, UpdateStream};
use dwc_warehouse::baselines::{RecomputeMaintainer, SourceQueryMaintainer};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::WarehouseSpec;
use std::time::{Duration, Instant};

/// Runs E10.
pub fn run(quick: bool) -> Vec<Table> {
    let sfs: &[f64] = if quick { &[0.002] } else { &[0.001, 0.01, 0.05] };
    let updates: usize = if quick { 8 } else { 60 };

    let (catalog, views) = star_warehouse();
    let spec = WarehouseSpec::new(catalog.clone(), views).expect("static spec");

    // --- storage table
    let mut storage = Table::new(
        "E10a (Sec 5): complement storage per base relation",
        &["sf", "base", "|base|", "|complement|", "provably empty"],
    );
    // --- maintenance table
    let mut maint = Table::new(
        "E10b (Sec 5): maintenance over the operational update stream",
        &["sf", "strategy", "updates", "src queries", "src tuples", "total time"],
    );
    // --- query table
    let mut queries = Table::new(
        "E10c (Sec 5): OLAP workload answered at the warehouse",
        &["sf", "query", "commutes", "|answer|"],
    );

    for &sf in sfs {
        let db = generate(&ScaleConfig::scaled(sf), 2024);
        let aug = spec.clone().augment().expect("complement exists");

        // storage
        let m = aug.complement().materialize(&db).expect("materializes");
        for e in aug.complement().entries() {
            storage.row(vec![
                Cell::Float(sf),
                Cell::from(e.base.as_str()),
                Cell::from(db.relation(e.base).expect("base").len()),
                Cell::from(m.relation(e.name).expect("stored").len()),
                Cell::from(e.is_provably_empty()),
            ]);
        }

        // maintenance: three strategies over identical streams
        for strategy in ["complement", "recompute", "src-query"] {
            let mut site = SourceSite::new(catalog.clone(), db.clone()).expect("valid");
            let mut stream = UpdateStream::new(&db, 555);
            let mut wall = Duration::ZERO;

            enum M {
                C(Box<Integrator>),
                R(Box<RecomputeMaintainer>),
                S(Box<SourceQueryMaintainer>),
            }
            let mut m = match strategy {
                "complement" => M::C(Box::new(
                    Integrator::initial_load(spec.clone().augment().expect("aug"), &site)
                        .expect("load"),
                )),
                "recompute" => M::R(Box::new(
                    RecomputeMaintainer::initial_load(spec.clone(), &site).expect("load"),
                )),
                _ => M::S(Box::new(
                    SourceQueryMaintainer::initial_load(spec.clone(), &site).expect("load"),
                )),
            };
            site.reset_stats();
            for _ in 0..updates {
                let u = stream.next();
                let report = site.apply_update(&u).expect("valid");
                let start = Instant::now();
                match &mut m {
                    M::C(x) => x.on_report(&report).expect("maintained"),
                    M::R(x) => x.on_report(&site, &report).expect("maintained"),
                    M::S(x) => x.on_report(&site, &report).expect("maintained"),
                }
                wall += start.elapsed();
            }
            // correctness spot-check against the oracle
            match &m {
                M::C(x) => {
                    let expected =
                        x.warehouse().materialize(site.oracle_state()).expect("oracle");
                    assert_eq!(x.state(), &expected, "integrator diverged at sf {sf}");
                }
                M::R(x) => {
                    let expected = spec.materialize(site.oracle_state()).expect("oracle");
                    assert_eq!(x.state(), &expected);
                }
                M::S(x) => {
                    let expected = spec.materialize(site.oracle_state()).expect("oracle");
                    assert_eq!(x.state(), &expected);
                }
            }
            let s = site.stats();
            maint.row(vec![
                Cell::Float(sf),
                Cell::from(strategy),
                Cell::from(updates),
                Cell::from(s.queries),
                Cell::from(s.tuples_read),
                Cell::from(wall),
            ]);
        }

        // queries at the warehouse
        let w = aug.materialize(&db).expect("materializes");
        for q in workload() {
            let at_source = q.expr.eval(&db).expect("evaluates");
            let at_wh = aug.answer_at_warehouse(&q.expr, &w).expect("answers");
            queries.row(vec![
                Cell::Float(sf),
                Cell::from(q.name),
                Cell::from(at_source == at_wh),
                Cell::from(at_source.len()),
            ]);
        }
    }

    storage.note("paper claim (Sec 5): FKs empty the fact-table complements; star schemata widen applicability");
    maint.note("paper claim: the complement-based warehouse is maintained with zero source queries");
    queries.note("paper claim (Thm 3.1): every source query is answerable at the warehouse");
    vec![storage, maint, queries]
}

#[cfg(test)]
mod tests {
    #[test]
    fn star_schema_behaves_as_section_5_promises() {
        let tables = super::run(true);
        let storage = &tables[0];
        // Orders and Lineitem complements provably empty (FK-covered).
        for (base, provably) in storage
            .column("base")
            .iter()
            .zip(storage.column("provably empty"))
        {
            match base.as_text().unwrap() {
                "Orders" | "Lineitem" => assert_eq!(provably.as_text(), Some("yes")),
                "Part" => assert_eq!(provably.as_text(), Some("no")),
                _ => {}
            }
        }
        let maint = &tables[1];
        for (s, q) in maint.column("strategy").iter().zip(maint.column("src queries")) {
            if s.as_text() == Some("complement") {
                assert_eq!(q.as_int(), Some(0));
            } else {
                assert!(q.as_int().unwrap() > 0);
            }
        }
        let queries = &tables[2];
        for c in queries.column("commutes") {
            assert_eq!(c.as_text(), Some("yes"));
        }
    }
}
