//! E6 — Example 2.3 (+ continued): constraints shrink complements.
//!
//! `R1(A,B,C)`, `R2(A,C,D)`, `R3(A,B)` with `A` a key everywhere and
//! `π_AB(R3) ⊆ π_AB(R1)`, `π_AC(R2) ⊆ π_AC(R1)`;
//! `V = {V1 = R1 ⋈ R2, V2 = R3, V3 = π_AB(R1), V4 = π_AC(R1)}`.
//!
//! The paper walks three regimes:
//!
//! * no constraints — `V3`, `V4` are useless, `C_1 = R1 ∖ π_ABC(V1)`;
//! * keys — `R1 = V3 ⋈ V4` is lossless, so `C_1 ≡ ∅`;
//! * keys + INDs (for the sub-warehouse `V' = {V1, V3}`) — the
//!   pseudo-view `π_AC(R2)` completes the cover and `R̄1^ir` grows.
//!
//! The experiment materializes all three regimes at scale and reports
//! the stored complement sizes, plus the cover structure `C_{R1}^ind`
//! the paper lists explicitly.

use crate::report::{Cell, Table};
use dwc_core::analysis::{vk_ind, CoverSource};
use dwc_core::constrained::{complement_with, ComplementOptions};
use dwc_core::covers::covers_of;
use dwc_core::psj::{NamedView, PsjView};
use dwc_relalg::{gen, AttrSet, Catalog, InclusionDep, RelName};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_schema_with_key("R1", &["A", "B", "C"], &["A"]).expect("static");
    c.add_schema_with_key("R2", &["A", "C", "D"], &["A"]).expect("static");
    c.add_schema_with_key("R3", &["A", "B"], &["A"]).expect("static");
    c.add_inclusion_dep(InclusionDep::new("R3", "R1", AttrSet::from_names(&["A", "B"])))
        .expect("static");
    c.add_inclusion_dep(InclusionDep::new("R2", "R1", AttrSet::from_names(&["A", "C"])))
        .expect("static");
    c
}

fn views(c: &Catalog, which: Wh) -> Vec<NamedView> {
    let all = vec![
        NamedView::new("V1", PsjView::join_of(c, &["R1", "R2"]).expect("static")),
        NamedView::new("V2", PsjView::of_base(c, "R3").expect("static")),
        NamedView::new("V3", PsjView::project_of(c, "R1", &["A", "B"]).expect("static")),
        NamedView::new("V4", PsjView::project_of(c, "R1", &["A", "C"]).expect("static")),
    ];
    match which {
        Wh::Full => all,
        Wh::V1V3 => vec![all[0].clone(), all[2].clone()],
        Wh::V3Only => vec![all[2].clone()],
    }
}

#[derive(Clone, Copy)]
enum Wh {
    Full,
    V1V3,
    V3Only,
}

/// Runs E6.
pub fn run(quick: bool) -> Vec<Table> {
    let tuples = if quick { 32 } else { 512 };
    let c = catalog();

    // Cover structure table (the paper's C_{R1}^ind listing).
    let mut covers_table = Table::new(
        "E6a (Ex 2.3): cover structure C_R1^ind for V = {V1, V2, V3, V4}",
        &["cover", "members"],
    );
    let vs = views(&c, Wh::Full);
    let sources = vk_ind(&c, &vs, RelName::new("R1"));
    let r1_attrs = c.schema(RelName::new("R1")).expect("static").attrs().clone();
    let covers = covers_of(&vs, RelName::new("R1"), &r1_attrs, &sources, 20).expect("enumerates");
    for (i, cover) in covers.iter().enumerate() {
        let members: Vec<String> = cover
            .iter()
            .map(|&s| match &sources[s] {
                CoverSource::View(v) => vs[*v].name().as_str().to_owned(),
                CoverSource::Pseudo(d) => format!("pi_{}({})", d.attrs, d.from),
            })
            .collect();
        covers_table.row(vec![Cell::from(i + 1), Cell::from(members.join(" x "))]);
    }
    covers_table.note("paper lists: {V1}, {V3,V4}, {pi_AB(R3),V4}, {V3,pi_AC(R2)}, {pi_AB(R3),pi_AC(R2)}");

    // Regime sweep.
    let mut t = Table::new(
        format!("E6b (Ex 2.3 continued): stored complement tuples by constraint regime, ~{tuples} tuples/rel"),
        &["warehouse", "regime", "|C_R1|", "|C_R2|", "|C_R3|", "total", "C_R1 provably empty"],
    );

    let regimes: &[(&str, ComplementOptions)] = &[
        ("none", ComplementOptions::unconstrained()),
        ("keys", ComplementOptions::keys_only()),
        ("keys+INDs", ComplementOptions::default()),
    ];

    let cfg = gen::StateGenConfig::new(tuples, (tuples as u64 / 2).max(4));
    for (wh_name, which) in [
        ("{V1..V4}", Wh::Full),
        ("{V1, V3}", Wh::V1V3),
        ("{V3}", Wh::V3Only),
    ] {
        let vs = views(&c, which);
        for (regime, opts) in regimes {
            let comp = complement_with(&c, &vs, opts).expect("complement");
            // average over a few states
            let states = gen::random_states(&c, &cfg, 31337, 5);
            let mut sizes = [0usize; 3];
            let mut total = 0usize;
            for db in &states {
                assert_eq!(
                    comp.verify_on(&c, &vs, db).expect("evaluates"),
                    Ok(()),
                    "complement broken in regime {regime} for {wh_name}"
                );
                let m = comp.materialize(db).expect("materializes");
                for (i, base) in ["R1", "R2", "R3"].iter().enumerate() {
                    let e = comp.entry_for(RelName::new(base)).expect("entry");
                    sizes[i] += m.relation(e.name).expect("stored").len();
                }
                total += m.total_tuples();
            }
            let k = states.len();
            let provably = comp
                .entry_for(RelName::new("R1"))
                .expect("entry")
                .is_provably_empty();
            t.row(vec![
                Cell::from(wh_name),
                Cell::from(*regime),
                Cell::from(sizes[0] / k),
                Cell::from(sizes[1] / k),
                Cell::from(sizes[2] / k),
                Cell::from(total / k),
                Cell::from(provably),
            ]);
        }
    }
    t.note("paper claim: keys make C_R1 vanish for {V1..V4}");
    t.note("for {V1, V3} the IND cover {V3, pi_AC(R2)} recovers the same tuples V1 already does (the IND forces the join partner) — sizes tie, matching the paper's expressions");
    t.note("for {V3} alone the IND is the ONLY route to R1's C column: keys+INDs strictly shrinks C_R1");
    vec![covers_table, t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers_match_paper() {
        let tables = super::run(true);
        let covers = &tables[0];
        assert_eq!(covers.rows.len(), 5, "paper lists exactly 5 covers");
    }

    #[test]
    fn constraint_regimes_shrink_complements() {
        let tables = super::run(true);
        let t = &tables[1];
        // For {V1..V4}: keys regime has C_R1 provably empty.
        let wh = t.column("warehouse");
        let regime = t.column("regime");
        let provably = t.column("C_R1 provably empty");
        let totals = t.column("total");
        let mut full_none = None;
        let mut full_keys = None;
        let mut sub_keys = None;
        let mut sub_inds = None;
        let mut v3_keys = None;
        let mut v3_inds = None;
        for i in 0..t.rows.len() {
            match (wh[i].as_text().unwrap(), regime[i].as_text().unwrap()) {
                ("{V1..V4}", "none") => full_none = totals[i].as_int(),
                ("{V1..V4}", "keys") => {
                    full_keys = totals[i].as_int();
                    assert_eq!(provably[i].as_text(), Some("yes"));
                }
                ("{V1, V3}", "keys") => sub_keys = totals[i].as_int(),
                ("{V1, V3}", "keys+INDs") => sub_inds = totals[i].as_int(),
                ("{V3}", "keys") => v3_keys = totals[i].as_int(),
                ("{V3}", "keys+INDs") => v3_inds = totals[i].as_int(),
                _ => {}
            }
        }
        assert!(full_keys.unwrap() <= full_none.unwrap());
        assert!(sub_inds.unwrap() <= sub_keys.unwrap());
        // The {V3} warehouse is where the IND pseudo-view pays off alone.
        assert!(
            v3_inds.unwrap() < v3_keys.unwrap(),
            "IND should strictly shrink C_R1 for {{V3}}: {v3_inds:?} !< {v3_keys:?}"
        );
    }
}
