//! E8 — Example 4.1: incremental maintenance, delta-size sweep.
//!
//! The paper derives maintenance expressions for an insertion `s` into
//! `Sale` and replaces every base reference by its inverse, obtaining
//! expressions over warehouse views only. This experiment sweeps `|Δ|`
//! and the base size, timing:
//!
//! * `incremental` — the compiled maintenance plan (delta-sized work),
//! * `reconstruct` — `W(u(W⁻¹(w)))` evaluated literally,
//!
//! both source-free. Expected shape: incremental wins for small deltas;
//! as `|Δ|` approaches the base size the two converge (the crossover).

use crate::report::{Cell, Table};
use dwc_relalg::{RelName, Relation, Tuple, Update, Value};
use dwc_warehouse::WarehouseSpec;
use std::collections::BTreeSet;
use std::time::Instant;

fn batch_insert(delta: usize, n_emps: usize, tag: usize) -> Update {
    let mut rows = Relation::empty(dwc_relalg::AttrSet::from_names(&["clerk", "item"]));
    for i in 0..delta {
        rows.insert(Tuple::new(vec![
            Value::str(&format!("clerk{}", i % n_emps)),
            Value::str(&format!("batch{tag}-item{i}")),
        ]))
        .expect("arity");
    }
    Update::inserting("Sale", rows)
}

/// Runs E8.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 500 } else { 20_000 };
    let deltas: &[usize] = if quick {
        &[1, 50]
    } else {
        &[1, 10, 100, 1_000, 10_000, 20_000]
    };
    let n_emps = (n / 4).max(8);
    let catalog = super::fig1_catalog(false);
    let db = super::fig1_state(n, n_emps, false, 3);
    let spec =
        WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")]).expect("static spec");
    let aug = spec.augment().expect("complement exists");
    let w = aug.materialize(&db).expect("materializes");

    // Compile the plan once; it depends only on the touched set.
    let touched: BTreeSet<RelName> = [RelName::new("Sale")].into();
    let plan = aug.compile_plan(&touched).expect("compiles");

    let mut t = Table::new(
        format!("E8 (Ex 4.1): source-free maintenance, |Sale| = {n}, insertion batch sweep"),
        &["|delta|", "incremental", "incr+mirrors", "reconstruct", "speedup", "agree"],
    );

    // Mirrors: the materialized source reconstructions (what an
    // IntegratorConfig { cache_inverses: true } integrator keeps).
    let mirrors = aug.reconstruct_sources(&w).expect("reconstructs");

    for (tag, &delta) in deltas.iter().enumerate() {
        let u = batch_insert(delta, n_emps, tag).normalize(&db).expect("consistent");

        let start = Instant::now();
        let w_inc = plan.apply(&w, &u).expect("incremental");
        let t_inc = start.elapsed();

        let start = Instant::now();
        let w_mir = plan.apply_with_mirrors(&w, &u, &mirrors).expect("mirrored");
        let t_mir = start.elapsed();

        let start = Instant::now();
        let w_rec = aug.maintain_by_reconstruction(&w, &u).expect("reconstruction"); // lint:allow strategy_dispatch -- experiment measures every strategy
        let t_rec = start.elapsed();

        let agree = w_inc == w_rec && w_mir == w_rec;
        t.row(vec![
            Cell::from(delta),
            Cell::from(t_inc),
            Cell::from(t_mir),
            Cell::from(t_rec),
            Cell::Float(t_rec.as_secs_f64() / t_inc.as_secs_f64().max(1e-9)),
            Cell::from(agree),
        ]);
    }

    t.note("paper claim: maintenance expressions reference warehouse views only (all three paths are source-free)");
    t.note("shape: incremental wins at small |delta|; speedup decays toward ~1x as |delta| -> |Sale|");
    t.note("incr+mirrors trades a full source copy of storage for the reconstruction scans (Sec 6 remark)");

    // Companion: the actual Example 4.1 maintenance expressions.
    let mut exprs = Table::new(
        "E8 companion: compiled maintenance expressions for insertions into Sale",
        &["stored relation", "delta+ (expression)", "delta- (expression)"],
    );
    for (name, d) in plan.steps() {
        exprs.row(vec![
            Cell::from(name.as_str()),
            Cell::from(d.plus.to_string()),
            Cell::from(d.minus.to_string()),
        ]);
    }
    exprs.note("compare Example 4.1: Sold' = Sold u (s x (pi_clerk,age(Sold) u C1)), etc.");
    vec![t, exprs]
}

#[cfg(test)]
mod tests {
    #[test]
    fn incremental_agrees_and_wins_at_small_delta() {
        // Quick mode times sub-millisecond runs on possibly loaded
        // hardware; correctness (`agree`) must hold on every run, the
        // timing assertion gets a few attempts.
        let mut best = f64::MIN;
        for _ in 0..3 {
            let tables = super::run(true);
            let t = &tables[0];
            for c in t.column("agree") {
                assert_eq!(c.as_text(), Some("yes"));
            }
            // The smallest delta should enjoy a clear speedup.
            best = best.max(t.column("speedup")[0].as_f64().unwrap());
            if best > 1.0 {
                return;
            }
        }
        panic!("no incremental advantage at delta=1 in 3 runs; best speedup {best}");
    }

    #[test]
    fn maintenance_expressions_reference_warehouse_only() {
        let tables = super::run(true);
        let exprs = &tables[1];
        for row in &exprs.rows {
            for cell in &row[1..] {
                let text = cell.as_text().unwrap();
                // Base names may appear only as complement names (C_*),
                // reported deltas (@ins/@del) or materialized inverse
                // reconstructions (@inv/@newinv) — never bare.
                let scrubbed = text.replace("C_Emp", "").replace("C_Sale", "");
                for base in ["Emp", "Sale"] {
                    for occurrence in scrubbed.split(base).skip(1) {
                        assert!(
                            occurrence.starts_with("@ins")
                                || occurrence.starts_with("@del")
                                || occurrence.starts_with("@inv")
                                || occurrence.starts_with("@newinv"),
                            "leaks base {base}: {text}"
                        );
                    }
                }
            }
        }
    }
}
