//! E16 — the static analyzer is `O(plan)`, not `O(data)`.
//!
//! Two sweeps over the Figure 1 warehouse:
//!
//! * **data sweep** — the same spec analyzed while the source state
//!   grows 100× alongside; `analyze` time must stay flat while
//!   materialization grows, because certification never reads a tuple;
//! * **plan sweep** — a growing number of key-projection views over one
//!   relation (the E11 worst case for cover multiplicity); analyzer
//!   time tracks plan size, bounded by the cover-search source limit.

use crate::experiments::{fig1_catalog, fig1_state};
use crate::report::{Cell, Table};
use dwc_analyze::{analyze, AnalyzeOptions};
use dwc_core::psj::{NamedView, PsjView};
use dwc_relalg::Catalog;
use dwc_warehouse::WarehouseSpec;
use std::time::Instant;

fn fig1_views(c: &Catalog) -> Vec<NamedView> {
    vec![NamedView::new(
        "Sold",
        PsjView::join_of(c, &["Sale", "Emp"]).expect("static view"),
    )]
}

/// `k` key-keeping projection views over one wide relation.
fn projection_plan(width: usize, k: usize) -> (Catalog, Vec<NamedView>) {
    let mut c = Catalog::new();
    let mut attrs: Vec<String> = vec!["key".to_owned()];
    attrs.extend((0..width).map(|i| format!("a{i}")));
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    c.add_schema_with_key("R", &attr_refs, &["key"]).expect("static schema");
    let views = (0..k)
        .map(|i| {
            NamedView::new(
                format!("V{i}").as_str(),
                PsjView::project_of(&c, "R", &["key", &format!("a{}", i % width)])
                    .expect("static view"),
            )
        })
        .collect();
    (c, views)
}

/// Runs E16.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[100, 1_000] } else { &[100, 1_000, 10_000] };

    let mut data = Table::new(
        "E16a: analyzer cost vs data size (same spec, growing state)",
        &["rows", "analyze time", "materialize time", "verdict"],
    );
    let catalog = fig1_catalog(false);
    let views = fig1_views(&catalog);
    for &n in sizes {
        let db = fig1_state(n, (n / 10).max(3), false, 16);
        let start = Instant::now();
        let report = analyze(&catalog, &views, &[], &AnalyzeOptions::certify());
        let analyze_time = start.elapsed();
        std::hint::black_box(&report);

        let aug = WarehouseSpec::new(catalog.clone(), views.clone())
            .expect("static spec")
            .augment()
            .expect("complement exists");
        let start = Instant::now();
        let w = aug.materialize(&db).expect("materializes");
        let materialize_time = start.elapsed();
        std::hint::black_box(&w);

        let verdict = if report.has_errors() { "rejected" } else { "accepted" };
        data.row(vec![
            Cell::from(n),
            Cell::from(analyze_time),
            Cell::from(materialize_time),
            Cell::from(verdict),
        ]);
    }
    data.note("analyze never reads a tuple: its column is flat while materialization grows");

    let plan_sizes: &[(usize, usize)] =
        if quick { &[(3, 3), (4, 8)] } else { &[(3, 3), (4, 8), (6, 12), (8, 16)] };
    let mut plan = Table::new(
        "E16b: analyzer cost vs plan size (key-projection views, E11's worst case)",
        &["width", "#views", "analyze time", "findings"],
    );
    for &(width, k) in plan_sizes {
        let (c, views) = projection_plan(width, k);
        let start = Instant::now();
        let report = analyze(&c, &views, &[], &AnalyzeOptions::certify());
        let elapsed = start.elapsed();
        plan.row(vec![
            Cell::from(width),
            Cell::from(k),
            Cell::from(elapsed),
            Cell::from(report.len()),
        ]);
    }
    plan.note("cost tracks the plan, bounded by the cover-search source limit (W401 past it)");
    vec![data, plan]
}

#[cfg(test)]
mod tests {
    #[test]
    fn analyzer_cost_is_data_independent() {
        let tables = super::run(true);
        let data = &tables[0];
        // Certification accepts Fig 1 at every size.
        for v in data.column("verdict") {
            assert_eq!(v.to_string(), "accepted");
        }
        // The plan sweep produced findings (duplicate-view lints at least).
        let plan = &tables[1];
        assert!(plan.column("findings").last().unwrap().as_int().unwrap() > 0);
    }
}
