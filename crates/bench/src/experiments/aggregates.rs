//! E12 — Section 5's aggregate layer: summary tables over fact views.
//!
//! The paper's architecture keeps PSJ fact views complement-maintained
//! and delegates materialized aggregates to summary-table algorithms.
//! This experiment builds OLAP summary tables over the star schema's
//! `FactSales` view, streams operational updates through the full
//! source-free chain (source deltas → fact-view deltas → summary-delta
//! maintenance), and compares against per-update recomputation.
//!
//! Expected shape: the chain stays exact with zero source queries; the
//! incremental summary maintenance beats recomputation and its win grows
//! with the fact-view size.

use crate::report::{Cell, Table};
use dwc_aggregates::{AggFunc, SummarySpec, SummaryState};
use dwc_relalg::{Attr, AttrSet, RelName};
use dwc_starschema::{generate, star_warehouse, ScaleConfig, UpdateStream};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::WarehouseSpec;
use std::time::{Duration, Instant};

fn summary_specs() -> Vec<SummarySpec> {
    // FactSales header: {custkey, lockey, orderkey, partkey, price, qty, suppkey}
    let header = AttrSet::from_names(&[
        "custkey", "lockey", "orderkey", "partkey", "price", "qty", "suppkey",
    ]);
    vec![
        SummarySpec::new(
            "SalesBySupplier",
            "FactSales",
            &header,
            &["suppkey"],
            vec![
                ("n", AggFunc::Count),
                ("total_qty", AggFunc::Sum(Attr::new("qty"))),
                ("max_price", AggFunc::Max(Attr::new("price"))),
            ],
        )
        .expect("static spec"),
        SummarySpec::new(
            "SalesByPart",
            "FactSales",
            &header,
            &["partkey"],
            vec![
                ("n", AggFunc::Count),
                ("revenue", AggFunc::Sum(Attr::new("price"))),
                ("min_price", AggFunc::Min(Attr::new("price"))),
            ],
        )
        .expect("static spec"),
        SummarySpec::new(
            "GrandTotals",
            "FactSales",
            &header,
            &[],
            vec![
                ("line_items", AggFunc::Count),
                ("total_qty", AggFunc::Sum(Attr::new("qty"))),
            ],
        )
        .expect("static spec"),
    ]
}

/// Runs E12.
pub fn run(quick: bool) -> Vec<Table> {
    let sfs: &[f64] = if quick { &[0.002] } else { &[0.005, 0.02, 0.08] };
    let updates = if quick { 10 } else { 80 };

    let mut t = Table::new(
        "E12 (Sec 5 aggregate layer): summary tables over FactSales",
        &[
            "sf",
            "|FactSales|",
            "groups",
            "aux entries",
            "incr total",
            "recompute total",
            "speedup",
            "src queries",
            "exact",
        ],
    );

    for &sf in sfs {
        let (catalog, views) = star_warehouse();
        let spec = WarehouseSpec::new(catalog.clone(), views).expect("static spec");
        let db = generate(&ScaleConfig::scaled(sf), 31);
        let mut site = SourceSite::new(catalog, db.clone()).expect("valid");
        let aug = spec.augment().expect("complement exists");
        let mut integ = Integrator::initial_load(aug, &site).expect("loads");
        let mut summaries: Vec<SummaryState> = summary_specs()
            .into_iter()
            .map(|s| {
                let fact = integ.state().relation(s.source()).expect("stored");
                SummaryState::init(s, fact).expect("initializes")
            })
            .collect();
        site.reset_stats();

        let fact_size = integ
            .state()
            .relation(RelName::new("FactSales"))
            .expect("stored")
            .len();
        let groups: usize = summaries.iter().map(SummaryState::group_count).sum();
        let aux: usize = summaries.iter().map(SummaryState::auxiliary_size).sum();

        // Stream updates. The fact views are maintained by the warehouse
        // plans (untimed here — that is E8's subject); the timing isolates
        // the summary layer: delta application vs full recomputation.
        let mut stream = UpdateStream::new(&db, 17);
        let mut t_incr = Duration::ZERO;
        let mut t_recompute = Duration::ZERO;
        let mut exact = true;
        for _ in 0..updates {
            let u = stream.next();
            let report = site.apply_update(&u).expect("valid");
            let stored_deltas = integ.on_report_detailed(&report).expect("maintains");

            let start = Instant::now();
            for d in &stored_deltas {
                for s in summaries.iter_mut() {
                    if s.spec().source() == d.name {
                        s.apply_delta(&d.inserted, &d.deleted).expect("maintains");
                    }
                }
            }
            t_incr += start.elapsed();

            // Recompute path: rebuild all summaries from the (already
            // maintained) fact view.
            let start = Instant::now();
            let fact = integ.state().relation(RelName::new("FactSales")).expect("stored");
            let recomputed: Vec<_> = summary_specs()
                .into_iter()
                .map(|s| SummaryState::materialize(&s, fact).expect("materializes"))
                .collect();
            t_recompute += start.elapsed();
            for (state, r) in summaries.iter().zip(&recomputed) {
                exact &= &state.relation() == r;
            }
        }

        t.row(vec![
            Cell::Float(sf),
            Cell::from(fact_size),
            Cell::from(groups),
            Cell::from(aux),
            Cell::from(t_incr),
            Cell::from(t_recompute),
            Cell::Float(t_recompute.as_secs_f64() / t_incr.as_secs_f64().max(1e-9)),
            Cell::from(site.stats().queries),
            Cell::from(exact),
        ]);
    }

    t.note("paper architecture (Sec 5): fact views carry complements; aggregates ride on their deltas");
    t.note("the whole chain is source-free; MIN/MAX survive deletions via per-group multisets (aux entries)");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn aggregate_chain_is_exact_and_source_free() {
        let tables = super::run(true);
        let t = &tables[0];
        for c in t.column("exact") {
            assert_eq!(c.as_text(), Some("yes"));
        }
        for c in t.column("src queries") {
            assert_eq!(c.as_int(), Some(0));
        }
        for c in t.column("groups") {
            assert!(c.as_int().unwrap() > 0);
        }
    }
}
