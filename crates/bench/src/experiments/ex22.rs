//! E5 — Example 2.2: Proposition 2.2 is not minimal for proper PSJ views.
//!
//! `D = {R(A,B,C)}`, `V1 = π_AB(R)`, `V2 = π_BC(R)`, `V3 = σ_{B=b}(R)`.
//! Proposition 2.2 yields `C_R = R ∖ V3`; the improved complement `C'_R`
//! stores only the tuples whose `B`-group is ambiguous under the
//! `V1 ⋈ V2` reconstruction (minus `V3`), which is strictly smaller in
//! general. The experiment sweeps a *duplication factor*: higher
//! duplication ⇒ more ambiguous groups ⇒ the gap narrows.
//!
//! NOTE: the paper prints `C'_R = (R ⋈ π_AB((V1 ⋈ V2) ∖ R)) ∖ V3`; the
//! recomputation equation fails as printed (see
//! `dwc_core::minimality`'s module docs for the 3-tuple counterexample).
//! The repaired formula projects the ambiguity witness onto `B`. The
//! qualitative claim — strictly smaller than Prop 2.2 — survives and is
//! what this experiment measures.

use crate::report::{Cell, Table};
use dwc_core::minimality::{compare_complements, example_22_complement};
use dwc_core::psj::{NamedView, PsjView};
use dwc_core::{basic, Complement};
use dwc_relalg::{Catalog, DbState, Predicate, Relation, Tuple, Value};

fn setting() -> (Catalog, Vec<NamedView>) {
    let mut c = Catalog::new();
    c.add_schema("R", &["A", "B", "C"]).expect("static schema");
    let views = vec![
        NamedView::new("V1", PsjView::project_of(&c, "R", &["A", "B"]).expect("static")),
        NamedView::new("V2", PsjView::project_of(&c, "R", &["B", "C"]).expect("static")),
        NamedView::new(
            "V3",
            PsjView::select_of(&c, "R", Predicate::attr_eq("B", 0)).expect("static"),
        ),
    ];
    (c, views)
}

/// `duplication` controls how many (A, C) combinations share each B value.
fn state(n: usize, duplication: u64, seed: u64) -> DbState {
    let mut rng = dwc_relalg::gen::SplitMix64::new(seed);
    let b_domain = ((n as u64) / duplication).max(1);
    let mut r = Relation::empty(dwc_relalg::AttrSet::from_names(&["A", "B", "C"]));
    for _ in 0..n {
        r.insert(Tuple::new(vec![
            Value::int(rng.below(n as u64) as i64),
            Value::int(rng.below(b_domain) as i64),
            Value::int(rng.below(n as u64) as i64),
        ]))
        .expect("arity");
    }
    let mut db = DbState::new();
    db.insert_relation("R", r);
    db
}

/// Runs E5.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 128 } else { 4_096 };
    let duplications: &[u64] = if quick { &[1, 8] } else { &[1, 2, 4, 8, 16, 32] };

    let (catalog, views) = setting();
    let prop22 = basic::complement_of(&catalog, &views).expect("complement");
    let improved =
        example_22_complement(&catalog, &views[0], &views[1], &views[2]).expect("complement");

    let mut t = Table::new(
        format!("E5 (Ex 2.2): Prop 2.2 complement C_R vs improved C'_R, |R| = {n}"),
        &["duplication", "|C_R| (Prop 2.2)", "|C'_R| (improved)", "C'_R / C_R"],
    );

    let mut states = Vec::new();
    for &dup in duplications {
        let db = state(n, dup, 77 + dup);
        let size = |c: &Complement| c.materialized_size(&db).expect("materializes");
        let (a, b) = (size(&prop22), size(&improved));
        t.row(vec![
            Cell::from(dup as usize),
            Cell::from(a),
            Cell::from(b),
            Cell::Float(if a == 0 { 0.0 } else { b as f64 / a as f64 }),
        ]);
        // Both must actually be complements on this state.
        assert_eq!(
            prop22.verify_on(&catalog, &views, &db).expect("evaluates"),
            Ok(()),
            "Prop 2.2 complement failed"
        );
        assert_eq!(
            improved.verify_on(&catalog, &views, &db).expect("evaluates"),
            Ok(()),
            "improved complement failed"
        );
        states.push(db);
    }

    let order = compare_complements(&improved, &prop22, &states).expect("comparable");
    t.note(format!("C'_R vs C_R in the Def 2.1 ordering: {order:?}"));
    t.note("paper claim: C'_R strictly smaller; gap closes as B-groups become ambiguous");
    t.note("formula repaired vs paper's print (pi_B ambiguity witness) — see dwc-core::minimality docs");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn improved_is_never_larger_and_sometimes_smaller() {
        let tables = super::run(true);
        let t = &tables[0];
        let a = t.column("|C_R| (Prop 2.2)");
        let b = t.column("|C'_R| (improved)");
        let mut strictly = false;
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(y.as_int().unwrap() <= x.as_int().unwrap());
            strictly |= y.as_int().unwrap() < x.as_int().unwrap();
        }
        assert!(strictly, "no state separated the complements");
        assert!(t.notes[0].contains("Less"));
    }
}
