//! E3 — Figure 3 / Theorem 4.1: the update-independence commuting diagram.
//!
//! Drive a mixed insert/delete stream against a scaled Figure 1 instance
//! and verify at every step that the incrementally maintained warehouse
//! equals `W(u(d))`, comparing three source-free maintenance paths:
//!
//! * `incremental` — compiled maintenance expressions (Example 4.1),
//! * `reconstruct` — the literal `W ∘ u ∘ W⁻¹` pipeline,
//! * `recompute*`  — recomputation from the true sources (the oracle;
//!   *not* source-free, shown for the time comparison).
//!
//! Expected shape: all three agree on every step; `incremental` beats
//! `reconstruct` for small deltas.

use crate::report::{Cell, Table};
use dwc_relalg::{DbState, Delta, Relation, Tuple, Update, Value};
use dwc_warehouse::WarehouseSpec;
use std::time::{Duration, Instant};

fn mixed_update(db: &DbState, i: usize, n_emps: usize) -> Update {
    // Insert one sale; every third step also delete an existing sale;
    // every fifth step churn an employee.
    let mut sale_ins = Relation::empty(dwc_relalg::AttrSet::from_names(&["clerk", "item"]));
    sale_ins
        .insert(Tuple::new(vec![
            Value::str(&format!("clerk{}", i % n_emps)),
            Value::str(&format!("hot-item{i}")),
        ]))
        .expect("arity");
    let mut u = Update::new().with("Sale", Delta::insert_only(sale_ins));
    if i.is_multiple_of(3) {
        let sale = db.relation(dwc_relalg::RelName::new("Sale")).expect("state");
        if let Some(victim) = sale.iter().next() {
            let mut del = Relation::empty(sale.attrs().clone());
            del.insert(victim).expect("arity");
            u = u.with("Sale", Delta::delete_only(del));
        }
    }
    if i.is_multiple_of(5) {
        let mut emp_ins = Relation::empty(dwc_relalg::AttrSet::from_names(&["age", "clerk"]));
        emp_ins
            .insert(Tuple::new(vec![
                Value::int(30 + (i as i64 % 20)),
                Value::str(&format!("newhire{i}")),
            ]))
            .expect("arity");
        u = u.with("Emp", Delta::insert_only(emp_ins));
    }
    u
}

/// Runs E3.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 200 } else { 10_000 };
    let steps = if quick { 6 } else { 30 };
    let catalog = super::fig1_catalog(false);
    let mut db = super::fig1_state(n, (n / 4).max(8), false, 9);
    let spec = WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")])
        .expect("static spec");
    let aug = spec.augment().expect("complement exists");
    let mut w = aug.materialize(&db).expect("materializes");

    let n_emps = (n / 4).max(8);
    let mut all_agree = true;
    let mut t_inc = Duration::ZERO;
    let mut t_rec = Duration::ZERO;
    let mut t_oracle = Duration::ZERO;

    for i in 0..steps {
        let u = mixed_update(&db, i, n_emps)
            .normalize(&db)
            .expect("consistent");
        if u.is_empty() {
            continue;
        }

        let start = Instant::now();
        let w_inc = aug.maintain(&w, &u).expect("incremental maintenance");
        t_inc += start.elapsed();

        let start = Instant::now();
        let w_rec = aug.maintain_by_reconstruction(&w, &u).expect("reconstruction"); // lint:allow strategy_dispatch -- experiment measures every strategy
        t_rec += start.elapsed();

        db = u.apply(&db).expect("update applies");
        let start = Instant::now();
        let w_oracle = aug.materialize(&db).expect("materializes");
        t_oracle += start.elapsed();

        all_agree &= w_inc == w_oracle && w_rec == w_oracle;
        w = w_inc;
    }

    let per = |d: Duration| d / u32::try_from(steps).expect("fits");
    let mut t = Table::new(
        format!("E3 (Figure 3 / Thm 4.1): w' = W(u(d)) over {steps} mixed updates, |Sale| = {n}"),
        &["path", "source-free", "agrees with W(u(d))", "mean time/upd"],
    );
    t.row(vec![
        Cell::from("incremental"),
        Cell::from(true),
        Cell::from(all_agree),
        Cell::from(per(t_inc)),
    ]);
    t.row(vec![
        Cell::from("reconstruct"),
        Cell::from(true),
        Cell::from(all_agree),
        Cell::from(per(t_rec)),
    ]);
    t.row(vec![
        Cell::from("recompute*"),
        Cell::from(false),
        Cell::from(true),
        Cell::from(per(t_oracle)),
    ]);
    t.note("paper claim: the diagram commutes — maintained state = W(u(d)) at every step");
    t.note("incremental evaluates delta-sized expressions; reconstruct/recompute rebuild everything");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn diagram_commutes_in_quick_mode() {
        let tables = super::run(true);
        let t = &tables[0];
        for c in t.column("agrees with W(u(d))") {
            assert_eq!(c.as_text(), Some("yes"));
        }
        assert_eq!(t.rows.len(), 3);
    }
}
