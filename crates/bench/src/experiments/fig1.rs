//! E1 — Figure 1 / Example 1.1: the Sold warehouse at scale.
//!
//! Paper claim: `Sold = Sale ⋈ Emp` cannot be maintained from reported
//! changes alone, but adding the complement `{C1, C2}` makes the
//! warehouse self-maintainable. We scale the scenario and compare three
//! maintainers on the same insertion stream:
//!
//! * `complement` — the paper's approach (zero source queries),
//! * `recompute` — re-evaluate the view at the sources per update,
//! * `src-query` — incremental maintenance expressions evaluated at the
//!   sources (the no-complement incremental strategy).
//!
//! Expected shape: only `complement` reaches 0 source queries; its price
//! is the auxiliary storage `|C_Sale| + |C_Emp|`.

use crate::report::{Cell, Table};
use dwc_relalg::{DbState, RaExpr, Relation, Tuple, Update, Value};
use dwc_warehouse::baselines::{RecomputeMaintainer, SourceQueryMaintainer};
use dwc_warehouse::integrator::{Integrator, SourceSite};
use dwc_warehouse::WarehouseSpec;
use std::time::{Duration, Instant};

fn insertion(i: usize, clerk: usize) -> Update {
    let mut rows = Relation::empty(dwc_relalg::AttrSet::from_names(&["clerk", "item"]));
    rows.insert(Tuple::new(vec![
        Value::str(&format!("clerk{clerk}")),
        Value::str(&format!("new-item{i}")),
    ]))
    .expect("arity");
    Update::inserting("Sale", rows)
}

struct Measured {
    queries_per_upd: f64,
    tuples_per_upd: f64,
    wall_per_upd: Duration,
    aux_storage: usize,
}

/// Drives `updates` insertion reports through a maintainer; `step` gets
/// the site and the report and must do the maintenance (only that part
/// is timed).
fn measure(
    catalog: &dwc_relalg::Catalog,
    db: &DbState,
    n_emps: usize,
    updates: usize,
    aux_storage: usize,
    mut step: impl FnMut(&SourceSite, &Update),
) -> (SourceSite, Measured) {
    let mut site = SourceSite::new(catalog.clone(), db.clone()).expect("valid state");
    site.reset_stats();
    let mut wall = Duration::ZERO;
    for i in 0..updates {
        let report = site.apply_update(&insertion(i, i % n_emps)).expect("valid update");
        let start = Instant::now();
        step(&site, &report);
        wall += start.elapsed();
    }
    let s = site.stats();
    let m = Measured {
        queries_per_upd: s.queries as f64 / updates as f64,
        tuples_per_upd: s.tuples_read as f64 / updates as f64,
        wall_per_upd: wall / u32::try_from(updates).expect("fits"),
        aux_storage,
    };
    (site, m)
}

fn push_row(t: &mut Table, n: usize, strategy: &str, m: &Measured) {
    t.row(vec![
        Cell::from(n),
        Cell::from(strategy),
        Cell::Float(m.queries_per_upd),
        Cell::Float(m.tuples_per_upd),
        Cell::from(m.wall_per_upd),
        Cell::from(m.aux_storage),
    ]);
}

/// Runs E1.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[100] } else { &[100, 1_000, 10_000, 50_000] };
    let updates = if quick { 5 } else { 25 };

    let mut t = Table::new(
        "E1 (Figure 1 / Ex 1.1): maintaining Sold = Sale x Emp, per-update costs",
        &[
            "|Sale|",
            "strategy",
            "src queries/upd",
            "src tuples/upd",
            "mean time/upd",
            "aux storage",
        ],
    );

    for &n in sizes {
        let n_emps = (n / 4).max(8);
        let catalog = super::fig1_catalog(false);
        let db = super::fig1_state(n, n_emps, false, 42);
        let spec = WarehouseSpec::parse(catalog.clone(), &[("Sold", "Sale join Emp")])
            .expect("static spec");

        // complement-based integrator (loaded outside the measured loop)
        let load_site = SourceSite::new(catalog.clone(), db.clone()).expect("valid state");
        let aug = spec.clone().augment().expect("complement exists");
        let mut integ = Integrator::initial_load(aug, &load_site).expect("initial load");
        let (_, mut m) = measure(&catalog, &db, n_emps, updates, 0, |_site, report| {
            integ.on_report(report).expect("maintained");
        });
        m.aux_storage = integ.complement_storage();
        push_row(&mut t, n, "complement", &m);

        // full recompute
        let load_site = SourceSite::new(catalog.clone(), db.clone()).expect("valid state");
        let mut rec = RecomputeMaintainer::initial_load(spec.clone(), &load_site)
            .expect("initial load");
        let (_, m) = measure(&catalog, &db, n_emps, updates, 0, |site, report| {
            rec.on_report(site, report).expect("maintained");
        });
        push_row(&mut t, n, "recompute", &m);

        // incremental with source queries
        let load_site = SourceSite::new(catalog.clone(), db.clone()).expect("valid state");
        let mut inc = SourceQueryMaintainer::initial_load(spec.clone(), &load_site)
            .expect("initial load");
        let (_, m) = measure(&catalog, &db, n_emps, updates, 0, |site, report| {
            inc.on_report(site, report).expect("maintained");
        });
        push_row(&mut t, n, "src-query", &m);
    }

    t.note("paper claim: only the complement strategy needs 0 source queries per update");
    t.note("the complement pays with auxiliary storage (|C_Sale| + |C_Emp| tuples)");

    // Companion table: the worked Example 1.1 complement contents.
    let mut worked = Table::new(
        "E1 companion: Example 1.1 on the paper's 3-tuple instance",
        &["relation", "contents"],
    );
    let catalog = super::fig1_catalog(false);
    let spec = WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")]).expect("static spec");
    let mut db = DbState::new();
    db.insert_relation(
        "Sale",
        dwc_relalg::rel! { ["item", "clerk"] =>
            ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") },
    );
    db.insert_relation(
        "Emp",
        dwc_relalg::rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
    );
    let aug = spec.augment().expect("complement exists");
    let w = aug.materialize(&db).expect("materializes");
    for name in aug.stored_relations() {
        let rel = w.relation(name).expect("stored");
        let rows: Vec<String> = rel.iter().map(|t| t.to_string()).collect();
        worked.row(vec![Cell::from(name.as_str()), Cell::from(rows.join(" "))]);
    }
    worked.note("C_Emp = {(Paula, 32)} and C_Sale = {} exactly as in Example 1.1");

    // Negative control: Sold alone is not query-independent (Example 1.2).
    let q = RaExpr::parse("pi[clerk](Sale) union pi[clerk](Emp)").expect("static query");
    let mut d2 = db.clone();
    d2.insert_relation(
        "Emp",
        dwc_relalg::rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25) },
    );
    let witness =
        dwc_warehouse::independence::refute_query_independence(aug.spec(), &q, &[db, d2])
            .expect("states evaluate");
    worked.note(format!(
        "query-independence of Sold alone refuted by state pair: {witness:?}"
    ));

    vec![t, worked]
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_run_produces_expected_shape() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        let t = &tables[0];
        let strategies = t.column("strategy");
        let queries = t.column("src queries/upd");
        let mut saw_complement = false;
        for (s, q) in strategies.iter().zip(queries.iter()) {
            if s.as_text() == Some("complement") {
                saw_complement = true;
                assert_eq!(q.as_f64(), Some(0.0), "complement issued source queries");
            } else {
                assert!(q.as_f64().unwrap() > 0.0, "baseline issued no queries");
            }
        }
        assert!(saw_complement);
        // the worked example reproduces the paper's complement
        let worked = &tables[1];
        assert!(worked.notes[0].contains("Example 1.1"));
        assert!(worked.notes[1].contains("Some((0, 1))"));
    }
}
