//! E4 — Example 2.1 / Theorem 2.1: SJ views and complement sharing.
//!
//! `D = {R(X,Y), S(Y,Z), T(Z)}`, `V1 = R ⋈ S ⋈ T`. The paper computes
//! `C = {C_R, C_S, C_T}` with `C_X = X ∖ π(V1)` and observes:
//!
//! 1. `C` is strictly smaller than the trivial complement (copy `D`),
//! 2. adding `V2 = S` to the warehouse makes `C'_S` *always empty* —
//!    multi-view sharing shrinks the complement (the [14] observation),
//! 3. for SJ views the Proposition 2.2 complement is minimal
//!    (Theorem 2.1).
//!
//! The experiment scales the chain and reports complement sizes and the
//! information-content comparisons.

use crate::report::{Cell, Table};
use dwc_core::basic;
use dwc_core::minimality::compare_complements;
use dwc_core::psj::{NamedView, PsjView};
use dwc_core::{Complement, ComplementEntry};
use dwc_relalg::{Catalog, DbState, RaExpr, Relation, RelName, Tuple, Value};

fn chain_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_schema("R", &["X", "Y"]).expect("static schema");
    c.add_schema("S", &["Y", "Z"]).expect("static schema");
    c.add_schema("T", &["Z"]).expect("static schema");
    c
}

/// A chain instance where roughly `selectivity`⁻¹ of the tuples survive
/// the 3-way join.
fn chain_state(n: usize, seed: u64) -> DbState {
    let mut rng = dwc_relalg::gen::SplitMix64::new(seed);
    let domain = (n as u64).max(4);
    let mut db = DbState::new();
    let mut r = Relation::empty(dwc_relalg::AttrSet::from_names(&["X", "Y"]));
    let mut s = Relation::empty(dwc_relalg::AttrSet::from_names(&["Y", "Z"]));
    let mut t = Relation::empty(dwc_relalg::AttrSet::from_names(&["Z"]));
    for i in 0..n {
        r.insert(Tuple::new(vec![
            Value::int(i as i64),
            Value::int(rng.below(domain) as i64),
        ]))
        .expect("arity");
        s.insert(Tuple::new(vec![
            Value::int(rng.below(domain) as i64),
            Value::int(rng.below(domain) as i64),
        ]))
        .expect("arity");
        // T keeps only half the Z domain: many chains die at T.
        if rng.chance(1, 2) {
            t.insert(Tuple::new(vec![Value::int(rng.below(domain) as i64)]))
                .expect("arity");
        }
    }
    db.insert_relation("R", r);
    db.insert_relation("S", s);
    db.insert_relation("T", t);
    db
}

fn trivial_complement(catalog: &Catalog) -> Complement {
    let entries: Vec<ComplementEntry> = catalog
        .schemas()
        .map(|s| ComplementEntry {
            base: s.name(),
            name: RelName::new(&format!("Copy_{}", s.name())),
            definition: RaExpr::Base(s.name()),
        })
        .collect();
    let inverse = entries
        .iter()
        .map(|e| (e.base, RaExpr::Base(e.name)))
        .collect();
    Complement::new(entries, inverse)
}

/// Runs E4.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick { &[64] } else { &[64, 512, 4_096, 16_384] };
    let catalog = chain_catalog();
    let v1 = NamedView::new("V1", PsjView::join_of(&catalog, &["R", "S", "T"]).expect("static"));
    let v2 = NamedView::new("V2", PsjView::of_base(&catalog, "S").expect("static"));
    let single = vec![v1.clone()];
    let multi = vec![v1, v2];

    assert!(basic::theorem_21_applies(&catalog, &single));
    assert!(basic::theorem_21_applies(&catalog, &multi));

    let comp_single = basic::complement_of(&catalog, &single).expect("complement");
    let comp_multi = basic::complement_of(&catalog, &multi).expect("complement");

    let mut t = Table::new(
        "E4 (Ex 2.1 / Thm 2.1): complement sizes for chain join R x S x T",
        &["n", "warehouse", "|C_R|", "|C_S|", "|C_T|", "total", "trivial (copy D)"],
    );

    let mut states = Vec::new();
    for &n in sizes {
        let db = chain_state(n, 1234 + n as u64);
        let m1 = comp_single.materialize(&db).expect("materializes");
        let m2 = comp_multi.materialize(&db).expect("materializes");
        let size = |m: &DbState, rel: &str| -> usize {
            m.iter()
                .find(|(name, _)| name.as_str().ends_with(rel))
                .map(|(_, r)| r.len())
                .unwrap_or(0)
        };
        t.row(vec![
            Cell::from(n),
            Cell::from("{V1}"),
            Cell::from(size(&m1, "C_R")),
            Cell::from(size(&m1, "C_S")),
            Cell::from(size(&m1, "C_T")),
            Cell::from(m1.total_tuples()),
            Cell::from(db.total_tuples()),
        ]);
        t.row(vec![
            Cell::from(n),
            Cell::from("{V1, V2=S}"),
            Cell::from(size(&m2, "C_R")),
            Cell::from(size(&m2, "C_S")),
            Cell::from(size(&m2, "C_T")),
            Cell::from(m2.total_tuples()),
            Cell::from(db.total_tuples()),
        ]);
        states.push(db);
    }

    // Information-content comparisons on the generated states.
    let vs_trivial = compare_complements(&comp_single, &trivial_complement(&catalog), &states)
        .expect("comparable");
    t.note(format!(
        "C vs trivial copy-D complement (Def 2.1 ordering on sampled states): {vs_trivial:?}"
    ));
    let single_vs_multi =
        compare_complements(&comp_multi, &comp_single, &states).expect("comparable");
    t.note(format!(
        "C' (with V2) vs C (V1 only): {single_vs_multi:?} — adding V2 empties C_S"
    ));
    t.note("paper claim: C'_S is ALWAYS empty; C < trivial; both minimal for SJ views (Thm 2.1)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use dwc_core::ordering::ViewOrder;

    #[test]
    fn shapes_match_paper() {
        let tables = super::run(true);
        let t = &tables[0];
        // Row 0: single-view warehouse; row 1: multi-view.
        let cs = t.column("|C_S|");
        assert!(cs[0].as_int().unwrap() > 0, "C_S should be non-empty for {{V1}}");
        assert_eq!(cs[1].as_int(), Some(0), "C'_S must be empty for {{V1, V2}}");
        // complement strictly below the trivial copy
        assert!(t.notes[0].contains(&format!("{:?}", ViewOrder::Less)));
        // C' strictly below C
        assert!(t.notes[1].contains(&format!("{:?}", ViewOrder::Less)));
    }
}
