//! E11 — cost of the complement computation itself.
//!
//! Theorem 2.2's cover enumeration is exponential in `|V_K^ind|` in the
//! worst case. The experiment sweeps the number of projection views over
//! one keyed relation (each view keeps the key plus one extra attribute
//! — a worst case for cover multiplicity) and times `complement_with`,
//! reporting the cover count alongside.

use crate::report::{Cell, Table};
use dwc_core::analysis::vk_ind;
use dwc_core::constrained::{complement_with, ComplementOptions};
use dwc_core::covers::covers_of;
use dwc_core::psj::{NamedView, PsjView};
use dwc_relalg::{Catalog, RelName};
use std::time::Instant;

fn setting(width: usize, k: usize) -> (Catalog, Vec<NamedView>) {
    // R(key, a1..a_width); views V_i = pi_{key, a_{i mod width}}(R).
    let mut c = Catalog::new();
    let mut attrs: Vec<String> = vec!["key".to_owned()];
    attrs.extend((0..width).map(|i| format!("a{i}")));
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    c.add_schema_with_key("R", &attr_refs, &["key"]).expect("static schema");
    let views = (0..k)
        .map(|i| {
            NamedView::new(
                format!("V{i}").as_str(),
                PsjView::project_of(&c, "R", &["key", &format!("a{}", i % width)])
                    .expect("static view"),
            )
        })
        .collect();
    (c, views)
}

/// Runs E11.
pub fn run(quick: bool) -> Vec<Table> {
    let configs: &[(usize, usize)] = if quick {
        &[(3, 3), (4, 8)]
    } else {
        &[(3, 3), (4, 4), (4, 8), (5, 10), (6, 12), (6, 15), (8, 16)]
    };

    let mut t = Table::new(
        "E11: complement computation cost (cover enumeration is the exponential part)",
        &["width", "#views", "|V_K^ind|", "#covers", "compute time"],
    );

    for &(width, k) in configs {
        let (c, views) = setting(width, k);
        let sources = vk_ind(&c, &views, RelName::new("R"));
        let r_attrs = c.schema(RelName::new("R")).expect("static").attrs().clone();
        let covers = covers_of(&views, RelName::new("R"), &r_attrs, &sources, 20)
            .expect("enumerates");
        let start = Instant::now();
        let comp = complement_with(&c, &views, &ComplementOptions::default())
            .expect("complement");
        let elapsed = start.elapsed();
        std::hint::black_box(&comp);
        t.row(vec![
            Cell::from(width),
            Cell::from(k),
            Cell::from(sources.len()),
            Cell::from(covers.len()),
            Cell::from(elapsed),
        ]);
    }
    t.note("the source-count limit (default 20) guards the exponential enumeration");
    t.note("cover multiplicity grows combinatorially with redundant key-projections");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn cover_counts_grow_with_views() {
        let tables = super::run(true);
        let t = &tables[0];
        let covers = t.column("#covers");
        assert!(covers[0].as_int().unwrap() >= 1);
        assert!(
            covers[1].as_int().unwrap() > covers[0].as_int().unwrap(),
            "more redundant views should give more covers"
        );
    }
}
