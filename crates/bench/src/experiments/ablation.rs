//! E14 — ablation of the maintenance-plan optimizations.
//!
//! Example 4.1 read naively — substitute the inverse expression at every
//! base reference and evaluate — is correct but slow: the reconstruction
//! is re-derived per occurrence. E14 toggles the three plan
//! optimizations and times one insertion against the scaled Figure 1
//! warehouse, with wholesale reconstruction as the yardstick:
//!
//! * `naive`        — inline inverses, no folding, no memoization,
//! * `+materialize` — `R@inv` computed once per update,
//! * `+fold`        — stored-definition folding on top,
//! * `full`         — plus cross-step memoization (the default).
//!
//! Expected shape: naive < reconstruct < full; each knob helps.

use crate::report::{Cell, Table};
use dwc_relalg::{RelName, Relation, Tuple, Update, Value};
use dwc_warehouse::incremental::PlanOptions;
use dwc_warehouse::WarehouseSpec;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

fn insertion(n_emps: usize) -> Update {
    let mut rows = Relation::empty(dwc_relalg::AttrSet::from_names(&["clerk", "item"]));
    rows.insert(Tuple::new(vec![
        Value::str(&format!("clerk{}", n_emps / 2)),
        Value::str("ablation-item"),
    ]))
    .expect("arity");
    Update::inserting("Sale", rows)
}

/// Runs E14.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 400 } else { 10_000 };
    let reps = if quick { 2 } else { 8 };
    let n_emps = (n / 4).max(8);
    let catalog = super::fig1_catalog(false);
    let db = super::fig1_state(n, n_emps, false, 13);
    let aug = WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")])
        .expect("static spec")
        .augment()
        .expect("complement exists");
    let w = aug.materialize(&db).expect("materializes");
    let u = insertion(n_emps).normalize(&db).expect("consistent");
    let touched: BTreeSet<RelName> = u.touched().collect();
    let oracle = aug
        .materialize(&u.apply(&db).expect("applies"))
        .expect("materializes");

    let configs: [(&str, PlanOptions); 4] = [
        ("naive (inline everything)", PlanOptions::naive()),
        (
            "+materialize inverses",
            PlanOptions {
                materialize_inverses: true,
                fold_stored: false,
                memoize_eval: false,
            },
        ),
        (
            "+fold stored defs",
            PlanOptions {
                materialize_inverses: true,
                fold_stored: true,
                memoize_eval: false,
            },
        ),
        ("full (default)", PlanOptions::default()),
    ];

    let mut t = Table::new(
        format!("E14: maintenance-plan optimization ablation, |Sale| = {n}, single insertion"),
        &["configuration", "plan size", "time/upd", "vs reconstruct", "exact"],
    );

    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            aug.maintain_by_reconstruction(&w, &u).expect("reconstructs"), // lint:allow strategy_dispatch -- experiment measures every strategy
        );
    }
    let t_reconstruct = start.elapsed() / reps;

    for (label, opts) in configs {
        let plan = aug.compile_plan_with(&touched, opts).expect("compiles");
        let result = plan.apply(&w, &u).expect("maintains");
        let exact = result == oracle;
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(plan.apply(&w, &u).expect("maintains"));
        }
        let elapsed = start.elapsed() / reps;
        t.row(vec![
            Cell::from(label),
            Cell::from(plan.size()),
            Cell::from(elapsed),
            Cell::Float(t_reconstruct.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)),
            Cell::from(exact),
        ]);
    }
    t.row(vec![
        Cell::from("(reconstruct W∘u∘W⁻¹)"),
        Cell::from(0usize),
        Cell::from(t_reconstruct),
        Cell::Float(1.0),
        Cell::from(true),
    ]);

    t.note("every configuration is CORRECT; the ablation is purely about cost");
    t.note("naive < 1x: inlining re-derives the reconstruction per occurrence and loses to wholesale recomputation");
    let _ = Duration::ZERO;
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_configurations_are_exact_and_ordered() {
        let tables = super::run(true);
        let t = &tables[0];
        for c in t.column("exact") {
            assert_eq!(c.as_text(), Some("yes"));
        }
        let speedups: Vec<f64> = t
            .column("vs reconstruct")
            .iter()
            .map(|c| c.as_f64().unwrap())
            .collect();
        // naive must be the slowest configuration; full the fastest.
        let naive = speedups[0];
        let full = speedups[3];
        assert!(full > naive, "optimizations did not help: naive {naive}, full {full}");
        // plan sizes shrink monotonically from naive to folded
        let sizes: Vec<i64> = t.column("plan size").iter().map(|c| c.as_int().unwrap()).collect();
        assert!(sizes[0] > sizes[2], "folding should shrink the plan: {sizes:?}");
    }
}
