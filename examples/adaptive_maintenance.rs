//! The adaptive maintenance policy in motion.
//!
//! Builds the warehouse of `examples/specs/adaptive.dwc`, seeds it with
//! a few hundred rows, and streams insert reports through four
//! ingestors: three pinned to a fixed strategy (incremental, mirrored,
//! reconstruction) and one planning adaptively per report. All four
//! converge to the identical state — Theorem 4.1 makes the strategy
//! purely a cost decision — and the adaptive one prints what it chose,
//! why (the DWC-P101 diagnostics), and its decision-cache hit rate.
//!
//! Run with: `cargo run --example adaptive_maintenance`

use dwcomplements::relalg::{Catalog, DbState, Relation, Update, Value};
use dwcomplements::warehouse::integrator::{Integrator, IntegratorConfig};
use dwcomplements::warehouse::planner::MaintenanceStrategy;
use dwcomplements::warehouse::{
    AdaptivePolicy, Envelope, IngestConfig, IngestingIntegrator, SourceId, WarehouseSpec,
};

fn seeded_ingestor(policy: AdaptivePolicy) -> Result<IngestingIntegrator, Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.add_schema("Sale", &["item", "clerk"])?;
    catalog.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"])?;
    let aug = WarehouseSpec::parse(
        catalog,
        &[("Sold", "Sale join Emp"), ("Staffed", "pi[clerk](Emp)")],
    )?
    .augment()?;

    let clerks = ["John", "Paula", "Mary", "Vic"];
    let sales: Vec<Vec<Value>> = (0..400)
        .map(|i| vec![Value::str(&format!("sku{i}")), Value::str(clerks[i % 4])])
        .collect();
    let emps: Vec<Vec<Value>> = clerks
        .iter()
        .enumerate()
        .map(|(i, c)| vec![Value::str(c), Value::from(25 + i as i64)])
        .collect();
    let mut db = DbState::new();
    db.insert_relation("Sale", Relation::from_rows(&["item", "clerk"], sales)?);
    db.insert_relation("Emp", Relation::from_rows(&["clerk", "age"], emps)?);

    let state = aug.materialize(&db)?;
    let integ = Integrator::from_state(aug, state, IntegratorConfig { cache_inverses: true })?;
    let mut ingest = IngestingIntegrator::new(integ, IngestConfig::default())?;
    ingest.set_policy(policy);
    Ok(ingest)
}

fn envelope(seq: u64, i: usize) -> Result<Envelope, Box<dyn std::error::Error>> {
    let report = Update::inserting(
        "Sale",
        Relation::from_rows(
            &["item", "clerk"],
            vec![vec![Value::str(&format!("new{i}")), Value::str("John")]],
        )?,
    );
    Ok(Envelope { source: SourceId::new("pos-1"), epoch: 0, seq, report })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut adaptive = seeded_ingestor(AdaptivePolicy::adaptive())?;
    let mut fixed: Vec<(MaintenanceStrategy, IngestingIntegrator)> = vec![
        (MaintenanceStrategy::Incremental, seeded_ingestor(AdaptivePolicy::fixed(MaintenanceStrategy::Incremental))?),
        (MaintenanceStrategy::MirroredIncremental, seeded_ingestor(AdaptivePolicy::fixed(MaintenanceStrategy::MirroredIncremental))?),
        (MaintenanceStrategy::Reconstruction, seeded_ingestor(AdaptivePolicy::fixed(MaintenanceStrategy::Reconstruction))?),
    ];

    for (seq, i) in (0..32u64).zip(0..) {
        let e = envelope(seq, i)?;
        adaptive.offer(&e);
        for (_, ingest) in fixed.iter_mut() {
            ingest.offer(&e);
        }
    }

    println!("every strategy converges (Theorem 4.1):");
    for (strategy, ingest) in &fixed {
        let same = ingest.state() == adaptive.state();
        println!("  fixed {:<22} state == adaptive state: {same}", strategy.as_str());
        assert!(same);
    }

    let stats = adaptive.policy().stats();
    println!("\nadaptive policy counters:");
    println!("  reports routed     : {}", stats.decisions);
    println!("  plans computed     : {} (cache hits: {})", stats.plans, stats.decisions - stats.plans);
    println!(
        "  chosen incremental : {}  mirrored: {}  reconstruction: {}",
        stats.chosen_incremental, stats.chosen_mirrored, stats.chosen_reconstruction
    );
    println!("  mispredictions     : {}", stats.mispredictions);

    println!("\nplanner diagnostics (drained):");
    let log = adaptive.policy_mut().take_diagnostics();
    print!("{log}");
    Ok(())
}
