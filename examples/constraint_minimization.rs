//! Example 2.3 walkthrough: how key constraints and inclusion
//! dependencies shrink complements.
//!
//! Prints the complement definitions for the paper's R1/R2/R3 scenario
//! under three regimes (no constraints, keys only, keys + inclusion
//! dependencies) and shows the cover structure `C_{R1}^ind`.
//!
//! Run with: `cargo run --example constraint_minimization`

use dwcomplements::core::analysis::{vk_ind, CoverSource};
use dwcomplements::core::constrained::{complement_with, ComplementOptions};
use dwcomplements::core::covers::covers_of;
use dwcomplements::core::psj::{NamedView, PsjView};
use dwcomplements::relalg::{AttrSet, Catalog, InclusionDep, RelName};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // R1(A,B,C), R2(A,C,D), R3(A,B); A keys everything;
    // π_AB(R3) ⊆ π_AB(R1) and π_AC(R2) ⊆ π_AC(R1).
    let mut catalog = Catalog::new();
    catalog.add_schema_with_key("R1", &["A", "B", "C"], &["A"])?;
    catalog.add_schema_with_key("R2", &["A", "C", "D"], &["A"])?;
    catalog.add_schema_with_key("R3", &["A", "B"], &["A"])?;
    catalog.add_inclusion_dep(InclusionDep::new("R3", "R1", AttrSet::from_names(&["A", "B"])))?;
    catalog.add_inclusion_dep(InclusionDep::new("R2", "R1", AttrSet::from_names(&["A", "C"])))?;

    let views = vec![
        NamedView::new("V1", PsjView::join_of(&catalog, &["R1", "R2"])?),
        NamedView::new("V2", PsjView::of_base(&catalog, "R3")?),
        NamedView::new("V3", PsjView::project_of(&catalog, "R1", &["A", "B"])?),
        NamedView::new("V4", PsjView::project_of(&catalog, "R1", &["A", "C"])?),
    ];

    // The cover structure the paper lists for R1.
    println!("C_R1^ind (minimal covers of attr(R1) by V_K1^ind):");
    let sources = vk_ind(&catalog, &views, RelName::new("R1"));
    let r1_attrs = catalog.schema(RelName::new("R1"))?.attrs().clone();
    for cover in covers_of(&views, RelName::new("R1"), &r1_attrs, &sources, 20)? {
        let members: Vec<String> = cover
            .iter()
            .map(|&i| match &sources[i] {
                CoverSource::View(v) => views[*v].name().to_string(),
                CoverSource::Pseudo(d) => format!("pi_{}({})", d.attrs, d.from),
            })
            .collect();
        println!("  {{{}}}", members.join(", "));
    }

    for (label, opts) in [
        ("no constraints (Proposition 2.2)", ComplementOptions::unconstrained()),
        ("keys only", ComplementOptions::keys_only()),
        ("keys + inclusion dependencies (Theorem 2.2)", ComplementOptions::default()),
    ] {
        println!("\n=== {label} ===");
        let comp = complement_with(&catalog, &views, &opts)?;
        for entry in comp.entries() {
            let status = if entry.is_provably_empty() { " (provably empty)" } else { "" };
            println!("  {} = {}{status}", entry.name, entry.definition);
        }
    }

    // The paper's "continued" sub-warehouse {V1, V3}: the inverse of R1
    // routes through the pseudo-view π_AC(R2), i.e. through R2's inverse.
    let sub = vec![views[0].clone(), views[2].clone()];
    let comp = complement_with(&catalog, &sub, &ComplementOptions::default())?;
    println!("\n=== sub-warehouse {{V1, V3}}: inverse expressions ===");
    for (base, inv) in comp.inverse() {
        println!("  {base} = {inv}");
    }
    Ok(())
}
