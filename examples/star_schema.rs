//! Section 5 end to end: a TPC-D-like star-schema warehouse.
//!
//! Generates scaled operational data, augments the star-schema warehouse
//! with its complement (foreign keys make the fact-table complements
//! provably empty), streams operational updates through the integrator,
//! and answers the OLAP workload at the warehouse.
//!
//! Run with: `cargo run --release --example star_schema [scale-factor]`

use dwcomplements::starschema::queries::workload;
use dwcomplements::starschema::{generate, star_warehouse, ScaleConfig, UpdateStream};
use dwcomplements::warehouse::integrator::{Integrator, SourceSite};
use dwcomplements::warehouse::WarehouseSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sf: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.01);

    let (catalog, views) = star_warehouse();
    let spec = WarehouseSpec::new(catalog.clone(), views)?;
    let db = generate(&ScaleConfig::scaled(sf), 42);
    println!("generated scale factor {sf}: {} tuples across {} relations",
        db.total_tuples(), db.len());

    let aug = spec.augment()?;
    println!("\ncomplement inventory:");
    let m = aug.complement().materialize(&db)?;
    for entry in aug.complement().entries() {
        println!(
            "  {}: {} tuples{}",
            entry.name,
            m.relation(entry.name)?.len(),
            if entry.is_provably_empty() { " (provably empty — FK covered)" } else { "" },
        );
    }

    // Stream 100 operational updates.
    let mut site = SourceSite::new(catalog, db.clone())?;
    let mut integrator = Integrator::initial_load(aug, &site)?;
    site.reset_stats();
    let mut stream = UpdateStream::new(&db, 7);
    let started = std::time::Instant::now();
    for _ in 0..100 {
        let update = stream.next();
        let report = site.apply_update(&update)?;
        integrator.on_report(&report)?;
    }
    let elapsed = started.elapsed();
    println!(
        "\n100 operational updates in {elapsed:?} ({:.0} updates/s), source queries: {}",
        100.0 / elapsed.as_secs_f64(),
        site.stats().queries,
    );

    // Consistency spot check + the OLAP workload.
    let expected = integrator.warehouse().materialize(site.oracle_state())?;
    assert_eq!(integrator.state(), &expected, "warehouse diverged");
    println!("\nOLAP workload at the warehouse:");
    for q in workload() {
        let at_wh = integrator.answer(&q.expr)?;
        let at_src = q.expr.eval(site.oracle_state())?;
        assert_eq!(at_wh, at_src, "query {} does not commute", q.name);
        println!("  {:<18} {:>6} tuples  ({})", q.name, at_wh.len(), q.description);
    }
    println!("\nall queries commute (Theorem 3.1); maintenance issued no source queries (Theorem 4.1).");
    Ok(())
}
