//! Multi-site maintenance over lossy channels: two sequenced sources
//! report deltas through independently faulty channels; the ingesting
//! integrator deduplicates, reorders, quarantines corrupted reports,
//! and repairs what the channels lost by replaying the outbox logs —
//! never querying the sources' relational state.
//!
//! Run with: `cargo run --example chaos_maintenance`

use dwc_testkit::FaultPlan;
use dwcomplements::core::unionfact::UnionFactView;
use dwcomplements::core::PsjView;
use dwcomplements::relalg::{rel, Catalog, DbState, RelName, Update, Value};
use dwcomplements::warehouse::channel::{Envelope, SequencedSource};
use dwcomplements::warehouse::ingest::{IngestConfig, IngestOutcome, IngestingIntegrator};
use dwcomplements::warehouse::integrator::{Integrator, SourceSite};
use dwcomplements::warehouse::WarehouseSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The multi-site warehouse of `examples/multi_site.rs`: one union
    // fact table over two per-site order databases.
    let mut catalog = Catalog::new();
    catalog.add_schema_with_key("OrdParis", &["okey", "site", "amount"], &["okey"])?;
    catalog.add_schema_with_key("OrdLyon", &["okey", "site", "amount"], &["okey"])?;
    let all_orders = UnionFactView::new(
        &catalog,
        "AllOrders",
        "site",
        vec![
            (Value::str("paris"), PsjView::of_base(&catalog, "OrdParis")?),
            (Value::str("lyon"), PsjView::of_base(&catalog, "OrdLyon")?),
        ],
    )?;
    let aug = WarehouseSpec::new(catalog.clone(), vec![])?
        .with_union_fact(all_orders)?
        .augment()?;

    let mut db = DbState::new();
    db.insert_relation(
        "OrdParis",
        rel! { ["okey", "site", "amount"] => (1, "paris", 120), (2, "paris", 80) },
    );
    db.insert_relation("OrdLyon", rel! { ["okey", "site", "amount"] => (10, "lyon", 300) });

    // Each site runs its own sequencer over (a copy of) the shared
    // catalog; the integrator bootstraps from the combined state once.
    let bootstrap = SourceSite::new(catalog.clone(), db.clone())?;
    let integ = Integrator::initial_load(aug, &bootstrap)?;
    let mut ing = IngestingIntegrator::new(integ, IngestConfig::default())?;
    let mut paris = SequencedSource::new("paris", SourceSite::new(catalog.clone(), db.clone())?);
    let mut lyon = SequencedSource::new("lyon", SourceSite::new(catalog, db)?);

    // Six operational updates per site.
    let mut paris_out = Vec::new();
    let mut lyon_out = Vec::new();
    for i in 0..6i64 {
        paris_out.push(paris.apply_update(&Update::inserting(
            "OrdParis",
            rel! { ["okey", "site", "amount"] => (100 + i, "paris", 50 + 10 * i) },
        ))?);
        lyon_out.push(lyon.apply_update(&Update::inserting(
            "OrdLyon",
            rel! { ["okey", "site", "amount"] => (200 + i, "lyon", 400 + 25 * i) },
        ))?);
    }

    // Two independently broken channels: Paris loses and reorders
    // reports, Lyon repeats them and corrupts payloads in flight.
    let paris_plan = FaultPlan {
        seed: 17,
        drop_permille: 250,
        dup_permille: 0,
        corrupt_permille: 0,
        reorder_window: 2,
    };
    let lyon_plan = FaultPlan {
        seed: 29,
        drop_permille: 0,
        dup_permille: 350,
        corrupt_permille: 250,
        reorder_window: 0,
    };
    let mut deliveries: Vec<Envelope> = Vec::new();
    for d in paris_plan.apply(&paris_out) {
        deliveries.push(d.item); // drops/reordering only
    }
    for d in lyon_plan.apply(&lyon_out) {
        let mut env = d.item;
        if d.corrupted {
            // In-flight corruption: the payload arrives retargeted at a
            // relation the warehouse has never heard of.
            env.report = Update::inserting("Ghost", rel! { ["x"] => (1,) });
        }
        deliveries.push(env);
    }
    // Interleave the two streams deterministically.
    deliveries.sort_by_key(|e| (e.seq, e.source.as_str().to_owned()));

    println!("offering {} deliveries from two faulty channels:", deliveries.len());
    for env in &deliveries {
        let outcome = ing.offer(env);
        let label = match &outcome {
            IngestOutcome::Applied(n) => format!("applied ({n} report(s))"),
            IngestOutcome::Duplicate => "duplicate — skipped".into(),
            IngestOutcome::Buffered => "out of order — parked".into(),
            IngestOutcome::Quarantined(e) => format!("quarantined: {e}"),
            IngestOutcome::NeedsRecovery(e) => format!("needs recovery: {e}"),
        };
        println!("  {}#{}: {label}", env.source, env.seq);
    }

    // Source-free repair: replay each source's outbox log — reported
    // deltas, not relational state — through one composed W ∘ u ∘ W⁻¹
    // reconstruction per source.
    for src in [&paris, &lyon] {
        let recovered = ing.recover_from_log(src.id(), src.outbox())?;
        println!("recovered {recovered} report(s) from {}'s outbox log", src.id());
    }

    // The warehouse must now equal W over the sites' combined state.
    let mut truth = DbState::new();
    truth.insert_relation("OrdParis", paris.oracle_state().relation(RelName::new("OrdParis"))?.clone());
    truth.insert_relation("OrdLyon", lyon.oracle_state().relation(RelName::new("OrdLyon"))?.clone());
    let expected = ing.integrator().warehouse().materialize(&truth)?;
    assert_eq!(ing.state(), &expected, "warehouse must converge to W(u(d))");

    let s = ing.stats();
    println!("\nconverged to the exact oracle state. ingest stats:");
    println!("  delivered            : {}", s.delivered);
    println!("  applied              : {}", s.applied);
    println!("  duplicates skipped   : {}", s.duplicates);
    println!("  parked out of order  : {}", s.buffered);
    println!("  quarantined          : {}", s.quarantined);
    println!("  gaps detected        : {}", s.gaps_detected);
    println!("  recoveries           : {}", s.recoveries);
    println!(
        "  AllOrders tuples     : {}",
        ing.state().relation(RelName::new("AllOrders"))?.len()
    );
    for entry in ing.quarantine() {
        let (env, err) = (&entry.envelope, &entry.error);
        println!("quarantine entry: {}#{} — {err}", env.source, env.seq);
    }
    Ok(())
}
