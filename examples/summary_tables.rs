//! Section 5's two-layer OLAP architecture, end to end:
//!
//! 1. the star-schema fact views are complement-maintained (source-free),
//! 2. summary tables over them ride on the fact-view deltas
//!    (summary-delta maintenance, including MIN/MAX under deletions).
//!
//! Run with: `cargo run --release --example summary_tables`

use dwcomplements::aggregates::{AggFunc, AggregatingIntegrator, SummarySpec};
use dwcomplements::relalg::{Attr, AttrSet, RelName};
use dwcomplements::starschema::{generate, star_warehouse, ScaleConfig, UpdateStream};
use dwcomplements::warehouse::integrator::SourceSite;
use dwcomplements::warehouse::WarehouseSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (catalog, views) = star_warehouse();
    let spec = WarehouseSpec::new(catalog.clone(), views)?;
    let db = generate(&ScaleConfig::scaled(0.02), 5);

    // FactSales header: the sales fact with the order's dimensional keys.
    let header = AttrSet::from_names(&[
        "custkey", "lockey", "orderkey", "partkey", "price", "qty", "suppkey",
    ]);
    let by_supplier = SummarySpec::new(
        "SalesBySupplier",
        "FactSales",
        &header,
        &["suppkey"],
        vec![
            ("line_items", AggFunc::Count),
            ("total_qty", AggFunc::Sum(Attr::new("qty"))),
            ("max_price", AggFunc::Max(Attr::new("price"))),
        ],
    )?;
    let grand = SummarySpec::new(
        "GrandTotals",
        "FactSales",
        &header,
        &[],
        vec![
            ("line_items", AggFunc::Count),
            ("revenue", AggFunc::Sum(Attr::new("price"))),
        ],
    )?;

    let mut site = SourceSite::new(catalog, db.clone())?;
    let mut agg = AggregatingIntegrator::initial_load(
        spec.augment()?,
        &site,
        vec![by_supplier, grand],
    )?;
    site.reset_stats();

    println!("initial grand totals:");
    for t in agg.summary(RelName::new("GrandTotals")).expect("summary").iter() {
        println!("  (line_items, revenue) = {t}");
    }

    // 200 operational updates (new orders, cancellations, re-pricing…).
    let mut stream = UpdateStream::new(&db, 23);
    for _ in 0..200 {
        let update = stream.next();
        let report = site.apply_update(&update)?;
        agg.on_report(&report)?;
    }
    assert_eq!(agg.verify_summaries()?, Ok(()), "summaries diverged");
    println!(
        "\nafter 200 updates (source queries: {} — the whole chain is source-free):",
        site.stats().queries
    );
    for t in agg.summary(RelName::new("GrandTotals")).expect("summary").iter() {
        println!("  (line_items, revenue) = {t}");
    }
    let by_supp = agg.summary(RelName::new("SalesBySupplier")).expect("summary");
    println!("\nSalesBySupplier has {} groups; first three:", by_supp.len());
    for t in by_supp.iter().take(3) {
        println!("  (line_items, max_price, suppkey, total_qty) = {t}");
    }
    println!("\nall summaries verified against recomputation.");
    Ok(())
}
