//! Interactive query rewriting (Section 3 / Theorem 3.1).
//!
//! Takes a relational algebra query over the Figure 1 sources on the
//! command line, translates it to the warehouse vocabulary via the
//! inverse expressions, and evaluates both sides of the commuting
//! diagram.
//!
//! Run with, e.g.:
//!
//! ```text
//! cargo run --example query_rewriting -- "pi[age](sigma[item = 'PC'](Sale) join Emp)"
//! ```
//!
//! Grammar: `sigma[cond](e)`, `pi[attrs](e)`, `rho[a -> b](e)`,
//! `e1 join e2`, `e1 union e2`, `e1 minus e2`, `e1 intersect e2` over
//! the relations `Sale(item, clerk)` and `Emp(clerk, age)`.

use dwcomplements::relalg::{rel, Catalog, DbState, RaExpr};
use dwcomplements::warehouse::WarehouseSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let query_text = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "pi[clerk](Sale) union pi[clerk](Emp)".to_owned());

    let mut catalog = Catalog::new();
    catalog.add_schema("Sale", &["item", "clerk"])?;
    catalog.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"])?;
    let mut db = DbState::new();
    db.insert_relation(
        "Sale",
        rel! { ["item", "clerk"] => ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") },
    );
    db.insert_relation(
        "Emp",
        rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
    );

    let aug = WarehouseSpec::parse(catalog, &[("Sold", "Sale join Emp")])?.augment()?;
    let q = RaExpr::parse(&query_text)?;
    println!("source query   Q    = {q}");
    let translated = aug.translate_query(&q)?;
    println!("warehouse query Qbar = {translated}");

    let w = aug.materialize(&db)?;
    let at_warehouse = translated.eval(&w)?;
    let at_source = q.eval(&db)?;
    println!("\nQ(d) evaluated at the source:");
    for t in at_source.iter() {
        println!("  {t}");
    }
    println!("Qbar(W(d)) evaluated at the warehouse:");
    for t in at_warehouse.iter() {
        println!("  {t}");
    }
    assert_eq!(at_source, at_warehouse, "Theorem 3.1: Q = Qbar ∘ W");
    println!("\nidentical — the Figure 2 diagram commutes.");
    Ok(())
}
