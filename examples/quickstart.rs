//! Quickstart: the paper's Figure 1 scenario end to end.
//!
//! Builds the Sale/Emp sources, the `Sold = Sale ⋈ Emp` warehouse,
//! computes its complement, and demonstrates both independence
//! properties: a source update maintained without querying the sources,
//! and a source query answered at the warehouse.
//!
//! Run with: `cargo run --example quickstart`

use dwcomplements::relalg::{rel, Catalog, RaExpr, RelName, Update};
use dwcomplements::warehouse::integrator::{Integrator, SourceSite};
use dwcomplements::warehouse::WarehouseSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The sources: two operational databases (Figure 1).
    let mut catalog = Catalog::new();
    catalog.add_schema("Sale", &["item", "clerk"])?;
    catalog.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"])?;

    let mut db = dwcomplements::relalg::DbState::new();
    db.insert_relation(
        "Sale",
        rel! { ["item", "clerk"] => ("TV set", "Mary"), ("VCR", "Mary"), ("PC", "John") },
    );
    db.insert_relation(
        "Emp",
        rel! { ["clerk", "age"] => ("Mary", 23), ("John", 25), ("Paula", 32) },
    );

    // The warehouse definition V = {Sold} and its complement.
    let spec = WarehouseSpec::parse(catalog.clone(), &[("Sold", "Sale join Emp")])?;
    let aug = spec.augment()?;
    println!("Complement views (Example 1.1):");
    for entry in aug.complement().entries() {
        println!("  {} = {}", entry.name, entry.definition);
    }
    println!("\nInverse expressions (Equation (4)):");
    for (base, inv) in aug.inverse() {
        println!("  {base} = {inv}");
    }

    // The decoupled architecture: a source site and the integrator.
    let mut site = SourceSite::new(catalog, db)?;
    let mut integrator = Integrator::initial_load(aug, &site)?;
    site.reset_stats();

    // Example 1.1's update: insert <Computer, Paula> into Sale. The site
    // reports the delta; the integrator maintains the warehouse.
    let report = site.apply_update(&Update::inserting(
        "Sale",
        rel! { ["item", "clerk"] => ("Computer", "Paula") },
    ))?;
    integrator.on_report(&report)?;
    println!(
        "\nAfter inserting <Computer, Paula>: Sold has {} tuples, \
         source queries issued: {} (update independence)",
        integrator.state().relation(RelName::new("Sold"))?.len(),
        site.stats().queries,
    );

    // Example 1.2's query, answered at the warehouse.
    let q = RaExpr::parse("pi[clerk](Sale) union pi[clerk](Emp)")?;
    let answer = integrator.answer(&q)?;
    println!("\nQ = pi[clerk](Sale) union pi[clerk](Emp), answered at the warehouse:");
    for t in answer.iter() {
        println!("  {t}");
    }
    let oracle = site.answer(&q)?;
    assert_eq!(answer, oracle, "Theorem 3.1: the diagram commutes");
    println!("\nmatches the source answer (query independence, Theorem 3.1)");
    Ok(())
}
