//! Section 5's multi-site integration: per-site operational databases,
//! one union fact table at the warehouse, origin determined by the
//! `site` dimension attribute.
//!
//! Run with: `cargo run --example multi_site`

use dwcomplements::core::unionfact::UnionFactView;
use dwcomplements::core::PsjView;
use dwcomplements::relalg::{rel, Catalog, DbState, RaExpr, RelName, Update, Value};
use dwcomplements::warehouse::integrator::{Integrator, SourceSite};
use dwcomplements::warehouse::WarehouseSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two sites, each with its own orders database.
    let mut catalog = Catalog::new();
    catalog.add_schema_with_key("OrdParis", &["okey", "site", "amount"], &["okey"])?;
    catalog.add_schema_with_key("OrdLyon", &["okey", "site", "amount"], &["okey"])?;

    // The warehouse integrates them by union; `site` gives the origin.
    let all_orders = UnionFactView::new(
        &catalog,
        "AllOrders",
        "site",
        vec![
            (Value::str("paris"), PsjView::of_base(&catalog, "OrdParis")?),
            (Value::str("lyon"), PsjView::of_base(&catalog, "OrdLyon")?),
        ],
    )?;
    let spec = WarehouseSpec::new(catalog.clone(), vec![])?.with_union_fact(all_orders)?;
    let aug = spec.augment()?;

    println!("inverse expressions (branches recovered by selecting on `site`):");
    for (base, inv) in aug.inverse() {
        println!("  {base} = {inv}");
    }

    let mut db = DbState::new();
    db.insert_relation(
        "OrdParis",
        rel! { ["okey", "site", "amount"] => (1, "paris", 120), (2, "paris", 80) },
    );
    db.insert_relation(
        "OrdLyon",
        rel! { ["okey", "site", "amount"] => (10, "lyon", 300) },
    );

    let mut site = SourceSite::new(catalog, db)?;
    let mut integrator = Integrator::initial_load(aug, &site)?;
    site.reset_stats();

    // Each site reports its own deltas; the single fact table follows.
    let report = site.apply_update(&Update::inserting(
        "OrdLyon",
        rel! { ["okey", "site", "amount"] => (11, "lyon", 450) },
    ))?;
    integrator.on_report(&report)?;
    let report = site.apply_update(&Update::deleting(
        "OrdParis",
        rel! { ["okey", "site", "amount"] => (2, "paris", 80) },
    ))?;
    integrator.on_report(&report)?;

    println!(
        "\nAllOrders after per-site updates ({} tuples, {} source queries):",
        integrator.state().relation(RelName::new("AllOrders"))?.len(),
        site.stats().queries,
    );
    for t in integrator.state().relation(RelName::new("AllOrders"))?.iter() {
        println!("  {t}");
    }

    // A cross-site query answered at the warehouse.
    let q = RaExpr::parse("sigma[amount >= 200](OrdLyon) union sigma[amount >= 200](OrdParis)")?;
    let answer = integrator.answer(&q)?;
    let oracle = q.eval(site.oracle_state())?;
    assert_eq!(answer, oracle);
    println!("\ncross-site query answered at the warehouse ({} tuples) — commutes.", answer.len());
    Ok(())
}
