//! Example 4.1 in motion: incremental, source-free maintenance.
//!
//! Prints the compiled maintenance expressions for insertions into
//! `Sale` (compare the expressions displayed in Example 4.1 of the
//! paper), then streams a batch of mixed updates through the integrator
//! and verifies the warehouse never diverges from `W(u(d))` while
//! issuing zero source queries.
//!
//! Run with: `cargo run --example incremental_maintenance`

use dwcomplements::relalg::{gen, Delta, RelName, Update};
use dwcomplements::warehouse::integrator::{Integrator, SourceSite};
use dwcomplements::warehouse::WarehouseSpec;
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = dwcomplements::relalg::Catalog::new();
    catalog.add_schema("Sale", &["item", "clerk"])?;
    catalog.add_schema_with_key("Emp", &["clerk", "age"], &["clerk"])?;
    let spec = WarehouseSpec::parse(catalog.clone(), &[("Sold", "Sale join Emp")])?;
    let aug = spec.augment()?;

    // The maintenance expressions for "a set s is inserted into Sale".
    let touched: BTreeSet<RelName> = [RelName::new("Sale")].into();
    let plan = aug.compile_plan(&touched)?;
    println!("maintenance plan for updates touching Sale:");
    println!("  materialized reconstructions:");
    for (base, inv) in plan.inverses() {
        println!("    {base}@inv = {inv}");
    }
    println!("  per stored relation (delta+ / delta-):");
    for (name, d) in plan.steps() {
        println!("    {name}+ = {}", d.plus);
        println!("    {name}- = {}", d.minus);
    }

    // Stream updates through the decoupled architecture.
    let db = gen::random_state(&catalog, &gen::StateGenConfig::new(40, 10), 2026);
    let mut site = SourceSite::new(catalog.clone(), db)?;
    let mut integrator = Integrator::initial_load(aug, &site)?;
    site.reset_stats();

    let cfg = gen::StateGenConfig::new(40, 10);
    for step in 0..20u64 {
        let target = gen::random_state(&catalog, &cfg, 3000 + step);
        let mut update = Update::new();
        for (name, t) in target.iter() {
            let current = site.oracle_state().relation(name)?;
            update = update.with(
                name.as_str(),
                Delta::new(t.difference(current)?, current.difference(t)?)?,
            );
        }
        let report = site.apply_update(&update)?;
        integrator.on_report(&report)?;
        // Oracle check (does not count as a dashed-arrow access).
        let expected = integrator.warehouse().materialize(site.oracle_state())?;
        assert_eq!(integrator.state(), &expected, "diverged at step {step}");
    }

    let istats = integrator.stats();
    println!("\nprocessed {} delta reports ({} tuples), plans compiled: {}",
        istats.updates_processed, istats.delta_tuples, istats.plans_compiled);
    println!(
        "source queries during maintenance: {} (update independence, Theorem 4.1)",
        site.stats().queries
    );
    println!(
        "complement storage right now: {} tuples",
        integrator.complement_storage()
    );
    Ok(())
}
