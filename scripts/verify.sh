#!/usr/bin/env bash
# Tier-1 verification, fully offline.
#
# Runs the ROADMAP tier-1 gate (`cargo build --release && cargo test -q`)
# with all network access to the registry forbidden, then the full
# workspace test suite. The workspace's only verification dependency is
# the in-tree `dwc-testkit` crate, so any attempt to reach crates.io is
# a regression — this script makes that attempt a hard failure:
#
#   * `CARGO_NET_OFFLINE=true` turns any download attempt into an error;
#   * the lockfile is checked for registry entries before building.
#
# Usage: scripts/verify.sh [--quick]
#   --quick   lower property-test case counts (smoke pass)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# --- 0. the dependency closure must be entirely in-tree ----------------
if grep -q 'source = "registry' Cargo.lock; then
  echo "FAIL: Cargo.lock references a registry; the workspace must be" >&2
  echo "      buildable with zero external crates:" >&2
  grep -B2 'source = "registry' Cargo.lock >&2
  exit 1
fi
echo "ok: lockfile is registry-free ($(grep -c '^name = ' Cargo.lock) in-tree packages)"

export CARGO_NET_OFFLINE=true
if [ "$QUICK" = 1 ]; then
  export DWC_TESTKIT_CASES="${DWC_TESTKIT_CASES:-8}"
  echo "quick mode: DWC_TESTKIT_CASES=$DWC_TESTKIT_CASES"
fi

# --- 1. tier-1: release build + root test suite ------------------------
cargo build --release
cargo test -q

# --- 2. the rest of the workspace (crate unit tests, aggregates props) -
cargo test -q --workspace

# --- 3. bench targets must at least compile (they don't run here) ------
cargo build -q -p dwc-bench --benches

# --- 4. pinned chaos replays -------------------------------------------
# Two known-interesting fault schedules for the ingestion layer, pinned
# by seed so every run exercises the exact same drop/duplicate/reorder/
# corrupt interleavings (regression armor on top of the random sweep in
# step 1). The seeds pin the testkit runner's case stream, as a failure
# banner would.
for seed in 8234113119275560397 1157442765409226768; do
  echo "chaos replay: DWC_TESTKIT_SEED=$seed"
  DWC_TESTKIT_SEED="$seed" cargo test -q --test chaos_props
done

# --- 5. parallel-execution differential replay -------------------------
# The partitioned joins, fork-join evaluator, and wave-parallel
# maintenance must reproduce the serial results bit-for-bit. Step 1 ran
# the suite at the ambient seed; replay it pinned so every verify run
# also exercises one fixed set of databases and updates.
for seed in 7155805680888831834; do
  echo "parallel replay: DWC_TESTKIT_SEED=$seed"
  DWC_TESTKIT_SEED="$seed" cargo test -q --test parallel_props
done

# --- 6. the bench sweep driver runs end-to-end -------------------------
# Smoke the thread-scaling sweep (serial + 4 workers) into a scratch
# file; real numbers are recorded by `scripts/bench.sh` into
# BENCH_eval.json and never touched here.
SWEEP_OUT=$(mktemp)
# bench.sh drops the durability, server, and fault suites into sibling
# files; mktemp names carry no "eval", so those siblings are
# ${SWEEP_OUT}_recovery.json, ${SWEEP_OUT}_server.json and
# ${SWEEP_OUT}_faults.json.
trap 'rm -f "$SWEEP_OUT" "${SWEEP_OUT}_recovery.json" "${SWEEP_OUT}_server.json" "${SWEEP_OUT}_faults.json"' EXIT
scripts/bench.sh --quick --out "$SWEEP_OUT" >/dev/null
echo "ok: bench sweep produced $(grep -c '^{' "$SWEEP_OUT") results"

# --- 7. static analysis gate -------------------------------------------
# `dwc analyze` must certify the shipped good specs, reject each seeded
# defect with its documented code, and pass the workspace source lint.
# Everything here is offline and reads no relation instance.
DWC=target/release/dwc
[ -x "$DWC" ] || { echo "FAIL: $DWC missing (step 1 builds it)" >&2; exit 1; }

"$DWC" analyze examples/specs/fig1.dwc examples/specs/ex23.dwc \
  examples/specs/starschema.dwc >/dev/null \
  || { echo "FAIL: a known-good spec was rejected" >&2; exit 1; }
echo "ok: example specs certify"

for case in cyclic:DWC-C101 keyless:DWC-C201 lossy:DWC-L301 unsat:DWC-L302; do
  spec="examples/specs/${case%%:*}.dwc"
  code="${case##*:}"
  if "$DWC" analyze "$spec" >/dev/null 2>&1; then
    echo "FAIL: $spec must be rejected by the certification gate" >&2
    exit 1
  fi
  # dwc exits 1 on rejection (expected), so capture before grepping —
  # piping directly would trip pipefail even when the code is present.
  json=$("$DWC" analyze --json "$spec" || true)
  if ! grep -q "\"code\":\"$code\",\"severity\":\"error\"" <<<"$json"; then
    echo "FAIL: $spec must report $code as an error" >&2
    echo "$json" >&2
    exit 1
  fi
done
echo "ok: seeded-defect specs rejected with their documented codes"

"$DWC" analyze --self-check >/dev/null \
  || { echo "FAIL: workspace source lint (srclint) found violations" >&2
       "$DWC" analyze --self-check >&2 || true; exit 1; }
echo "ok: srclint self-check clean"

# --- 8. durability: pinned crash matrix --------------------------------
# The storage suite kills a simulated process at every IO boundary of a
# pinned-seed ingestion run (tests/crash_props.rs bakes its own seeds in,
# so no env pinning is needed) and proves recovery lands bit-identical to
# a never-crashed oracle. Release mode: the sweep recovers the warehouse
# a few hundred times. The thread-config gate must also fail closed —
# binaries refuse to start under a malformed DWC_THREADS rather than
# silently running serial.
echo "crash matrix: tests/crash_props.rs"
cargo test -q --release --test crash_props
if DWC_THREADS=0 "$DWC" analyze --self-check >/dev/null 2>&1; then
  echo "FAIL: dwc must refuse to run under DWC_THREADS=0" >&2
  exit 1
fi
echo "ok: crash matrix green, DWC_THREADS=0 refused"

# --- 9. server: concurrency differential + group-commit accounting -----
# The server suites drive ServerCore (sessions, batcher, group commit,
# epoch publication) under seeded interleavings and prove convergence to
# the serial oracle, exact fsync accounting, and acked-state survival of
# a kill at every IO boundary — including mid-batch. Step 1 already ran
# them at the ambient seed; run them pinned in release (the crash sweep
# recovers the server a few hundred times), then widen the schedule
# sweep beyond the suites' built-in DWC_SCHED_SEEDS defaults.
echo "server matrix: tests/server_props.rs + tests/group_commit_props.rs"
cargo test -q --release --test server_props --test group_commit_props
for seeds in "2026 40490 271828182845904523" "11400714819323198485 6364136223846793005"; do
  echo "schedule sweep: DWC_SCHED_SEEDS=\"$seeds\""
  DWC_SCHED_SEEDS="$seeds" cargo test -q --release --test server_props \
    pinned_scenario_converges_under_every_sweep_seed
done
echo "ok: server differential green, schedule sweep green"

# --- 10. fault injection: pinned medium-fault matrix -------------------
# The fault suite wraps the medium in FaultyFs and injects a transient
# fault at every IO boundary (the server must self-heal and converge on
# the exact oracle ack stream), a permanent fault from every boundary
# (read-only degradation, acks a strict prefix, restart-recovery
# convergence), modeled fsync stalls, and seeded random chaos — all
# offline, all deterministic (tests/fault_props.rs bakes its seed in).
# Release mode: the matrix drives the server a few hundred times.
echo "fault matrix: tests/fault_props.rs"
cargo test -q --release --test fault_props
echo "ok: fault matrix green"

# --- 11. columnar core: pinned differential replay ---------------------
# The columnar relation core (dictionary columns, cached key indexes)
# must be bit-identical to the retained naive set-semantics reference:
# canonical order, evaluation, joins under index reuse, complements and
# all four maintenance strategies. Step 1 ran the suite at the ambient
# seed; replay it pinned so this exact case stream stays green forever,
# alongside the dictionary codec fuzz legs.
echo "columnar differential: tests/columnar_props.rs (pinned seed)"
DWC_TESTKIT_SEED=20260807 cargo test -q --release --test columnar_props
DWC_TESTKIT_SEED=20260807 cargo test -q --release --test parser_fuzz dictionary_
echo "ok: columnar differential green"

# --- 12. maintenance planner: pinned differential + cost CLI -----------
# Theorem 4.1 makes strategy choice a pure cost question; the planner
# suite pins that every chooser-selectable strategy converges to the
# oracle, that the skewed-clerk misprediction fires DWC-P201 and
# flushes the decision cache, and that steady streams hit the cache.
# Then the cost analyzer itself must run over the shipped specs and
# emit the machine-readable P101 strategy-chosen payload.
echo "planner differential: tests/planner_props.rs (pinned seed)"
DWC_TESTKIT_SEED=20260807 cargo test -q --release --test planner_props
"$DWC" analyze --cost examples/specs/fig1.dwc examples/specs/adaptive.dwc >/dev/null
COST_JSON="$("$DWC" analyze --cost --json examples/specs/adaptive.dwc)"
echo "$COST_JSON" | grep -q '"code":"DWC-P101"' \
  || { echo "FAIL: analyze --cost --json missing DWC-P101" >&2; exit 1; }
echo "$COST_JSON" | grep -q '"data":{"chosen":' \
  || { echo "FAIL: analyze --cost --json missing data payload" >&2; exit 1; }
echo "ok: planner differential + cost analyzer green"

# --- 13. sharding: shard-aware crash/fault matrix ----------------------
# The sharded store partitions the base relations, views, and
# complements by key range, each shard with its own WAL/snapshot
# lineage under one root manifest. The suite kills the store at every
# IO boundary across all lineages (recovery must land on the acked
# prefix and converge bit-identically to a never-crashed unsharded
# oracle), crashes it again *during* parallel recovery, injects a
# transient fault at every boundary, scopes a permanent fault to one
# shard's files (only that key range may park; the rest keep
# committing), and covers torn/corrupt root manifests, missing shard
# lineages, layout migration both ways, and shard-count re-cuts across
# restarts. Release mode: the matrix recovers the store a few hundred
# times. Deterministic — the suite bakes its seed in.
echo "shard matrix: tests/shard_props.rs"
cargo test -q --release --test shard_props
echo "ok: shard matrix green"

# Clippy is not part of the offline gate, but when a toolchain ships it,
# run it too (still offline).
if cargo clippy --version >/dev/null 2>&1; then
  cargo clippy -q --workspace --all-targets -- -D warnings
  echo "ok: clippy clean"
else
  echo "skip: cargo clippy not installed"
fi

echo "verify: all green"
