#!/usr/bin/env bash
# Thread-scaling bench sweep, fully offline.
#
# Runs the evaluator, complement, maintenance, and star-schema bench
# targets serially (DWC_THREADS=1) and at a parallel width, collecting
# every JSON line into BENCH_eval.json. Each line carries a "threads"
# field (tagged by the bench targets via the exec layer), so the file is
# directly diffable across widths:
#
#   jq -s 'group_by(.group+"/"+.bench)' BENCH_eval.json
#
# The durability suite (snapshot write, WAL append, cold recovery) is
# IO-bound rather than thread-scaled, so it runs once serially and lands
# in BENCH_recovery.json. The server group-commit suite is IO-bound the
# same way and lands in BENCH_server.json, and the degraded-mode serving
# suite (injected faults, modeled fsync stalls) in BENCH_faults.json.
#
# Usage: scripts/bench.sh [--quick] [--threads N] [--out FILE]
#   --quick      smoke pass (fewer samples, 2ms target per sample)
#   --threads N  parallel width for the second sweep (default 4, or the
#                machine width if smaller is all that's available — the
#                exec layer caps nothing; on a 1-CPU host the N-thread
#                run measures scheduling overhead, not speedup)
#   --out FILE   result file (default BENCH_eval.json; verify.sh points
#                this at a scratch file so a smoke run never overwrites
#                recorded numbers)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
PAR_THREADS=4
OUT=BENCH_eval.json
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --threads) PAR_THREADS="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

export CARGO_NET_OFFLINE=true
if [ "$QUICK" = 1 ]; then
  export DWC_TESTKIT_BENCH_SAMPLES="${DWC_TESTKIT_BENCH_SAMPLES:-3}"
  export DWC_TESTKIT_BENCH_MS="${DWC_TESTKIT_BENCH_MS:-2}"
  echo "quick mode: samples=$DWC_TESTKIT_BENCH_SAMPLES target=${DWC_TESTKIT_BENCH_MS}ms"
fi

: > "$OUT"

cargo build -q --release -p dwc-bench --benches

BENCHES=(eval complement maintenance star)
for threads in 1 "$PAR_THREADS"; do
  echo "=== sweep: DWC_THREADS=$threads ==="
  for bench in "${BENCHES[@]}"; do
    # `cargo bench` with the testkit harness just runs the target's main;
    # JSON lines go to stdout, cargo chatter to stderr.
    DWC_THREADS="$threads" cargo bench -q -p dwc-bench --bench "$bench" \
      | grep '^{' | tee -a "$OUT"
  done
done

echo "wrote $(grep -c '^{' "$OUT") results to $OUT"

# Adaptive maintenance: the strategy comparison (fixed pins vs the
# planner, plus the clone baseline and the O(plan) planner-choose rows)
# is about strategy choice, not thread scaling, so it runs once
# serially. Rows are strategy-tagged and land in the main file next to
# the raw maintenance group they compare against.
echo "=== adaptive: strategy sweep ==="
DWC_THREADS=1 cargo bench -q -p dwc-bench --bench adaptive \
  | grep '^{' | tee -a "$OUT"
echo "wrote $(grep -c '^{' "$OUT") results to $OUT (incl. adaptive sweep)"

# Durability timings are IO-bound, not thread-scaled: one serial pass
# into a sibling file ({eval -> recovery} of whatever --out was given).
RECOVERY_OUT="$(dirname "$OUT")/$(basename "$OUT" | sed 's/eval/recovery/')"
[ "$RECOVERY_OUT" = "$OUT" ] && RECOVERY_OUT="${OUT%.json}_recovery.json"
echo "=== durability: BENCH recovery ==="
DWC_THREADS=1 cargo bench -q -p dwc-bench --bench recovery \
  | grep '^{' | tee "$RECOVERY_OUT"

# The key-range sharded sweep appends `shards`-tagged rows to the same
# file: the identical warehouse committed under 1/2/4 shard lineages,
# reopened through the parallel per-shard recovery at the parallel
# width. Each row also carries replay_critical_ns (slowest shard) and
# replay_total_ns (summed per-shard work) — their ratio is the modeled
# parallel-recovery speedup, which survives core-starved bench hosts
# where the wall-clock columns cannot show it.
echo "=== durability: sharded recovery sweep ==="
DWC_THREADS="$PAR_THREADS" DWC_BENCH_SHARDS=1,2,4 \
  cargo bench -q -p dwc-bench --bench recovery \
  | grep '^{' | tee -a "$RECOVERY_OUT"
echo "wrote $(grep -c '^{' "$RECOVERY_OUT") results to $RECOVERY_OUT (incl. shard sweep)"

# Server group-commit throughput: likewise IO-bound (one fsync per
# batch is the whole point), so one serial pass into its own sibling.
# The target emits wall-clock acks/sec rows, deterministic SimFs
# fsync-accounting rows, and "claim/..." rows carrying the batch>=16
# vs batch=1 speedup against threshold_x100=500 (the 5x headline).
SERVER_OUT="$(dirname "$OUT")/$(basename "$OUT" | sed 's/eval/server/')"
[ "$SERVER_OUT" = "$OUT" ] && SERVER_OUT="${OUT%.json}_server.json"
echo "=== server: BENCH group commit ==="
DWC_THREADS=1 cargo bench -q -p dwc-bench --bench server \
  | grep '^{' | tee "$SERVER_OUT"
echo "wrote $(grep -c '^{' "$SERVER_OUT") results to $SERVER_OUT"

# Serving under injected faults: wall-clock acks/sec at rising transient
# error rates (with "claim/complete-..." rows pinning zero envelope
# loss) plus virtual-clock fsync-stall modeling with the batch>=16
# amortization claim against threshold_x100=500. Deterministic fault
# plans, one serial pass, own sibling file.
FAULTS_OUT="$(dirname "$OUT")/$(basename "$OUT" | sed 's/eval/faults/')"
[ "$FAULTS_OUT" = "$OUT" ] && FAULTS_OUT="${OUT%.json}_faults.json"
echo "=== faults: BENCH degraded-mode serving ==="
DWC_THREADS=1 cargo bench -q -p dwc-bench --bench faults \
  | grep '^{' | tee "$FAULTS_OUT"
echo "wrote $(grep -c '^{' "$FAULTS_OUT") results to $FAULTS_OUT"
